//! Derive macros for the vendored `serde` facade (see `shims/serde`).
//!
//! The real `serde_derive` is unavailable in this offline build environment,
//! so this crate re-implements the two derives against the facade's much
//! smaller data model: `Serialize` lowers a value into `serde::Value` (a JSON
//! value tree) and `Deserialize` is a marker trait. The input item is parsed
//! directly from the `proc_macro` token stream — no `syn`/`quote` — which is
//! sufficient for the shapes used in this repository: named/tuple structs
//! (optionally with simple type parameters) and enums with unit, tuple and
//! struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed generic parameters: declaration tokens (with `Serialize` bounds
/// added to type parameters) and the bare argument list.
struct Generics {
    /// e.g. `'a, T: ::serde::Serialize`
    decl: String,
    /// e.g. `'a, T`
    args: String,
    /// Argument list without added bounds, for `Deserialize` impls.
    decl_unbounded: String,
}

impl Generics {
    fn empty() -> Self {
        Generics {
            decl: String::new(),
            args: String::new(),
            decl_unbounded: String::new(),
        }
    }
}

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        generics: Generics,
        fields: Fields,
    },
    Enum {
        name: String,
        generics: Generics,
        variants: Vec<Variant>,
    },
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances `i` past any leading `#[...]` attributes and visibility
/// modifiers (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if *i < tokens.len() && is_punct(&tokens[*i], '#') {
            *i += 1; // '#'
            if *i < tokens.len() {
                *i += 1; // the [...] group
            }
        } else if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
            *i += 1;
            if *i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[*i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(...) restriction
                    }
                }
            }
        } else {
            return;
        }
    }
}

/// Skips tokens until a top-level `,` (angle-bracket depth 0) or the end;
/// leaves `i` *on* the comma (or at the end).
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses `< ... >` starting at the `<`; returns the tokens strictly inside.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Generics {
    debug_assert!(is_punct(&tokens[*i], '<'));
    *i += 1;
    let mut depth = 1i32;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            _ => {}
        }
        inner.push(tokens[*i].clone());
        *i += 1;
    }

    // Split the parameter list on top-level commas.
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut depth = 0i32;
    for tt in inner {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                params.push(Vec::new());
                continue;
            }
            _ => {}
        }
        params.last_mut().unwrap().push(tt);
    }

    let mut decl_parts = Vec::new();
    let mut arg_parts = Vec::new();
    let mut unbounded_parts = Vec::new();
    for param in params.into_iter().filter(|p| !p.is_empty()) {
        let raw: String = param
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let is_lifetime = matches!(&param[0], TokenTree::Punct(p) if p.as_char() == '\'');
        if is_lifetime {
            // `'a` (the ident follows the quote punct).
            let name = format!(
                "'{}",
                param.get(1).map(|t| t.to_string()).unwrap_or_default()
            );
            decl_parts.push(raw.clone());
            unbounded_parts.push(raw);
            arg_parts.push(name);
        } else if matches!(&param[0], TokenTree::Ident(id) if id.to_string() == "const") {
            // `const N: usize` — keep the declaration, pass `N` through.
            let name = param.get(1).map(|t| t.to_string()).unwrap_or_default();
            decl_parts.push(raw.clone());
            unbounded_parts.push(raw);
            arg_parts.push(name);
        } else {
            // Type parameter: `T`, `T: Bound`, `T = Default`.
            let name = param[0].to_string();
            // Strip any default (`= ...`) and keep existing bounds.
            let mut bound_tokens: Vec<String> = Vec::new();
            let mut seen_colon = false;
            for tt in param.iter().skip(1) {
                if is_punct(tt, '=') {
                    break;
                }
                if is_punct(tt, ':') && !seen_colon {
                    seen_colon = true;
                    continue;
                }
                bound_tokens.push(tt.to_string());
            }
            let mut decl = name.clone();
            decl.push_str(": ");
            if seen_colon && !bound_tokens.is_empty() {
                decl.push_str(&bound_tokens.join(" "));
                decl.push_str(" + ");
            }
            decl.push_str("::serde::Serialize");
            decl_parts.push(decl);
            unbounded_parts.push(if seen_colon {
                format!("{name}: {}", bound_tokens.join(" "))
            } else {
                name.clone()
            });
            arg_parts.push(name);
        }
    }
    Generics {
        decl: decl_parts.join(", "),
        args: arg_parts.join(", "),
        decl_unbounded: unbounded_parts.join(", "),
    }
}

/// Parses the field names of a `{ ... }` body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        if let TokenTree::Ident(name) = &tokens[i] {
            fields.push(name.to_string());
            i += 1;
            // `: Type`
            if i < tokens.len() && is_punct(&tokens[i], ':') {
                i += 1;
                skip_to_top_level_comma(&tokens, &mut i);
            }
            if i < tokens.len() && is_punct(&tokens[i], ',') {
                i += 1;
            }
        } else {
            i += 1; // unexpected token; make progress
        }
    }
    fields
}

/// Counts the fields of a `( ... )` tuple body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        if let TokenTree::Ident(name) = &tokens[i] {
            let name = name.to_string();
            i += 1;
            let fields = if i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g));
                        i += 1;
                        f
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g));
                        i += 1;
                        f
                    }
                    _ => Fields::Unit,
                }
            } else {
                Fields::Unit
            };
            // Skip an optional discriminant, then the separating comma.
            skip_to_top_level_comma(&tokens, &mut i);
            if i < tokens.len() && is_punct(&tokens[i], ',') {
                i += 1;
            }
            variants.push(Variant { name, fields });
        } else {
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let is_struct = if is_ident(&tokens[i], "struct") {
        true
    } else if is_ident(&tokens[i], "enum") {
        false
    } else {
        return Err(format!(
            "expected `struct` or `enum`, found `{}`",
            tokens[i]
        ));
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    let generics = if i < tokens.len() && is_punct(&tokens[i], '<') {
        parse_generics(&tokens, &mut i)
    } else {
        Generics::empty()
    };
    // A `where` clause would need real bound plumbing; nothing in the
    // workspace uses one on a serialisable type.
    if i < tokens.len() && is_ident(&tokens[i], "where") {
        return Err("`where` clauses are not supported by the vendored serde derive".into());
    }
    if is_struct {
        let fields = if i >= tokens.len() {
            Fields::Unit
        } else {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            }
        };
        Ok(Item::Struct {
            name,
            generics,
            fields,
        })
    } else {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                generics,
                variants: parse_variants(g),
            }),
            other => Err(format!("expected enum body, found `{other}`")),
        }
    }
}

fn impl_header(generics: &Generics, trait_path: &str, name: &str) -> String {
    let decl = if generics.decl.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.decl)
    };
    let args = if generics.args.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.args)
    };
    format!("impl{decl} {trait_path} for {name}{args}")
}

fn named_fields_expr(names: &[String], accessor: impl Fn(&str) -> String) -> String {
    let mut pushes = String::new();
    for f in names {
        pushes.push_str(&format!(
            "fields.push((String::from(\"{f}\"), ::serde::Serialize::to_value({})));",
            accessor(f)
        ));
    }
    format!(
        "{{ let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); {pushes} ::serde::Value::Object(fields) }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!(\"derive(Serialize): {msg}\");")
                .parse()
                .unwrap()
        }
    };
    let code = match &item {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => named_fields_expr(names, |f| format!("&self.{f}")),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                impl_header(generics, "::serde::Serialize", name)
            )
        }
        Item::Enum {
            name,
            generics,
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(field_names) => {
                        let inner = named_fields_expr(field_names, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), {inner})]),",
                            field_names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}",
                impl_header(generics, "::serde::Serialize", name)
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!(\"derive(Deserialize): {msg}\");")
                .parse()
                .unwrap()
        }
    };
    let (name, generics) = match &item {
        Item::Struct { name, generics, .. } | Item::Enum { name, generics, .. } => (name, generics),
    };
    let decl = if generics.decl_unbounded.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}>", generics.decl_unbounded)
    };
    let args = if generics.args.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.args)
    };
    format!("impl{decl} ::serde::Deserialize<'de> for {name}{args} {{}}")
        .parse()
        .unwrap()
}
