//! Sequence helpers: the `SliceRandom` surface the workspace uses.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying in place is astronomically unlikely"
        );
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = Counter(3);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
