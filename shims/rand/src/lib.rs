//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The workspace needs seeded, reproducible random numbers, not
//! cryptographic quality: phantom generation, synthetic noise, encoder
//! initialisation and simulated latency jitter all flow through
//! `mlr_math::rng::seeded`. This shim provides the traits and distributions
//! those call sites use (`Rng::gen`, `Rng::gen_range`, `SeedableRng::
//! seed_from_u64`, `distributions::{Distribution, Standard, Uniform}`)
//! with the same shapes as rand 0.8. Generators live in sibling shims
//! (`rand_chacha`).

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard, Uniform};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=8);
            assert!((5..=8).contains(&w));
            let f = rng.gen_range(-1.0f64..2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_core_usable_through_reference() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Counter(3);
        let _ = take(&mut rng);
    }
}
