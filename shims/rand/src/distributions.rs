//! The distributions used by the workspace: `Standard` and `Uniform`.

use crate::{unit_f64, Rng};

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: `f64`/`f32` in `[0, 1)`, integers
/// over their full range, fair `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Uniform`] can sample.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one sample from `[low, high)`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

impl SampleUniform for usize {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (rng.next_u64() % (high - low) as u64) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + rng.next_u64() % (high - low)
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// Creates a uniform distribution over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new: low must be < high");
        Self { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.low, self.high)
    }
}
