//! Offline stand-in for `rayon`.
//!
//! Implements exactly the parallel-iterator surface this workspace uses —
//! `par_iter().map().collect()`, `par_chunks_mut().for_each()` (plus
//! `.enumerate()`), `(a..b).into_par_iter().map().collect()` and
//! [`scope`] — on top of `std::thread::scope`. Work is split into one
//! contiguous block per worker thread; when only one hardware thread is
//! available (or the input is tiny) everything degrades to the sequential
//! loop, so there is no spawn overhead on single-core machines.
//!
//! Set `RAYON_NUM_THREADS` to override the detected parallelism.

use std::ops::Range;
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads (cached).
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f(0), f(1), ..., f(len-1)` and returns the results in index order,
/// splitting the index space into one contiguous block per worker.
fn map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = threads.min(len);
    let block = len.div_ceil(workers);
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                s.spawn(move || {
                    let start = w * block;
                    let end = ((w + 1) * block).min(len);
                    (start..end).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        for h in handles {
            blocks.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    blocks.into_iter().flatten().collect()
}

/// Runs `f` over a set of owned work items, one contiguous block per worker.
fn for_each_owned<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let len = items.len();
    let workers = threads.min(len);
    let block = len.div_ceil(workers);
    let mut split: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while !rest.is_empty() {
        let take = block.min(rest.len());
        let tail = rest.split_off(take);
        split.push(std::mem::replace(&mut rest, tail));
    }
    std::thread::scope(|s| {
        for chunk in split {
            let f = &f;
            s.spawn(move || {
                for item in chunk {
                    f(item);
                }
            });
        }
    });
}

// ------------------------------------------------------------- shared slices

/// `par_iter` on slices (and anything that derefs to one).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over shared slice elements.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element; evaluation happens at `collect`.
    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParIterMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel slice iterator.
pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParIterMap<'a, T, F> {
    /// Evaluates the map in parallel, preserving element order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let slice = self.slice;
        let f = &self.f;
        map_indexed(slice.len(), |i| f(&slice[i]))
            .into_iter()
            .collect()
    }
}

// ------------------------------------------------------------ mutable slices

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Applies `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        let chunks: Vec<&'a mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        for_each_owned(chunks, f);
    }

    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &'a mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .collect();
        for_each_owned(chunks, f);
    }
}

// ------------------------------------------------------------------- ranges

/// Conversion into a parallel iterator (implemented for `Range<usize>`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index; evaluation happens at `collect`.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range iterator.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Evaluates the map in parallel, preserving index order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        map_indexed(len, |i| f(start + i)).into_iter().collect()
    }
}

// -------------------------------------------------------------------- scope

/// A fork-join scope: tasks spawned on it are joined before [`scope`]
/// returns. Backed by `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let data: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u64;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 9);
        assert_eq!(data[102], 10);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (3..8).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![9, 16, 25, 36, 49]);
    }

    #[test]
    fn scope_joins_spawned_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
