//! Offline stand-in for the `serde` facade.
//!
//! This workspace builds in an environment without access to crates.io, so
//! the real `serde` cannot be fetched. The repository only needs a small
//! slice of it: `#[derive(Serialize, Deserialize)]` on plain structs/enums
//! and `serde_json::to_string_pretty` for the experiment records written by
//! `mlr-bench`. This crate provides exactly that slice:
//!
//! * [`Value`] — a JSON value tree (the entire data model);
//! * [`Serialize`] — lowers a value into a [`Value`];
//! * [`Deserialize`] — a marker trait so existing `derive` lists compile;
//! * derive macros re-exported from the sibling `serde_derive` shim.
//!
//! The surface intentionally mirrors how the workspace uses serde (trait
//! bounds like `T: Serialize` and derives) rather than serde's full
//! `Serializer`/`Deserializer` architecture.

// Let the `::serde::...` paths emitted by the derive macros resolve when the
// derives are used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A JSON value: the data model every [`Serialize`] impl lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point number (non-finite values render as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders this value as a JSON object key: strings pass through, other
    /// scalars use their compact JSON rendering.
    pub fn into_key(self) -> String {
        match self {
            Value::Str(s) => s,
            Value::Bool(b) => b.to_string(),
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::F64(x) => format_f64(x),
            other => format!("{other:?}"),
        }
    }
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
pub fn format_f64(x: f64) -> String {
    if x.is_finite() {
        // Ensure the rendering parses back as a float where relevant; `{}` on
        // f64 already produces a valid JSON number (e.g. `1`, `0.25`).
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Types that can be lowered into a JSON [`Value`].
pub trait Serialize {
    /// Lowers `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for serde's `Deserialize`. The workspace derives
/// it on config/record types but never deserialises at runtime; the derive
/// emits an empty impl.
pub trait Deserialize<'de>: Sized {}

// ------------------------------------------------------------- scalar impls

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

// ----------------------------------------------------------- compound impls

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
impl_ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().into_key(), v.to_value()))
            .collect();
        // Hash iteration order is unstable; sort so records are reproducible.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().into_key(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Plain {
        a: u32,
        b: f64,
        label: String,
    }

    #[derive(Serialize)]
    struct Generic<T> {
        data: Vec<T>,
    }

    #[derive(Serialize)]
    enum Mixed {
        Unit,
        Tup(u64),
        Named { x: f64 },
    }

    #[test]
    fn derive_named_struct() {
        let v = Plain {
            a: 3,
            b: 0.5,
            label: "hi".into(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::U64(3)),
                ("b".into(), Value::F64(0.5)),
                ("label".into(), Value::Str("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_generic_struct() {
        let v = Generic {
            data: vec![1usize, 2],
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![(
                "data".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)])
            )])
        );
    }

    #[test]
    fn derive_enum_variants() {
        assert_eq!(Mixed::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            Mixed::Tup(7).to_value(),
            Value::Object(vec![("Tup".into(), Value::U64(7))])
        );
        assert_eq!(
            Mixed::Named { x: 1.0 }.to_value(),
            Value::Object(vec![(
                "Named".into(),
                Value::Object(vec![("x".into(), Value::F64(1.0))])
            )])
        );
    }

    #[test]
    fn map_keys_are_strings() {
        let mut m = HashMap::new();
        m.insert(2u64, "b");
        m.insert(1u64, "a");
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("1".into(), Value::Str("a".into())),
                ("2".into(), Value::Str("b".into())),
            ])
        );
    }
}
