//! The lock-order sanitizer behind `--features lockcheck`.
//!
//! Mechanics (see the crate docs for the contract):
//!
//! * every `Mutex`/`RwLock` carries a [`LockTag`] whose numeric id is
//!   assigned lazily on first acquisition (`new` must stay `const`);
//! * a thread-local stack records the locks the current thread holds, each
//!   with the backtrace of its acquisition;
//! * a blocking acquisition while other locks are held inserts edges
//!   `held → acquiring` into a global order graph; the first insertion of an
//!   edge stores both acquisition backtraces;
//! * inserting an edge whose reverse direction is already reachable means
//!   two code paths order the same locks differently — a potential deadlock
//!   — and panics with the stored backtraces of the earlier ordering and the
//!   captured backtraces of this one.
//!
//! The graph only ever grows with *distinct ordered pairs* of lock
//! instances, so its size is bounded by the square of the nesting-active
//! locks, not by acquisition counts.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Per-lock identity: id 0 means "not yet assigned".
#[derive(Debug)]
pub(crate) struct LockTag {
    id: AtomicU64,
}

impl LockTag {
    pub(crate) const fn new() -> Self {
        Self {
            id: AtomicU64::new(0),
        }
    }

    fn id(&self) -> u64 {
        let current = self.id.load(Ordering::Relaxed);
        if current != 0 {
            return current;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    /// Called before blocking on the lock: checks re-entrancy, records
    /// ordering edges from every held lock, and joins the held stack.
    pub(crate) fn blocking_acquire(&self) {
        acquire(self.id(), true);
    }

    /// Called after a successful `try_lock`: never blocks, so it adds no
    /// ordering edges, but the lock is now held and future blocking
    /// acquisitions under it must see it.
    pub(crate) fn try_acquired(&self) {
        acquire(self.id(), false);
    }

    /// Called when the guard drops (or a condvar wait releases the lock).
    pub(crate) fn released(&self) {
        let id = self.id();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|h| h.id == id) {
                held.remove(at);
            }
        });
    }
}

struct HeldLock {
    id: u64,
    acquired_at: Arc<Backtrace>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

/// First-sighting record of an ordering edge `from → to`.
struct EdgeInfo {
    /// Where `from` was acquired when the edge was first observed.
    held_at: Arc<Backtrace>,
    /// Where `to` was being acquired when the edge was first observed.
    acquired_at: Arc<Backtrace>,
}

#[derive(Default)]
struct OrderGraph {
    successors: HashMap<u64, Vec<u64>>,
    edges: HashMap<(u64, u64), EdgeInfo>,
}

impl OrderGraph {
    /// Depth-first path `from → … → to` through recorded edges, if any.
    fn path(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        let mut stack = vec![vec![from]];
        let mut visited = std::collections::HashSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths are non-empty");
            if last == to {
                return Some(path);
            }
            for &next in self.successors.get(&last).into_iter().flatten() {
                if visited.insert(next) {
                    let mut longer = path.clone();
                    longer.push(next);
                    stack.push(longer);
                }
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<OrderGraph> {
    static GRAPH: OnceLock<StdMutex<OrderGraph>> = OnceLock::new();
    GRAPH.get_or_init(Default::default)
}

fn acquire(id: u64, blocking: bool) {
    let acquired_at = Arc::new(Backtrace::force_capture());
    HELD.with(|held| {
        let held_stack = held.borrow();
        if let Some(prev) = held_stack.iter().find(|h| h.id == id) {
            // With std primitives underneath, re-locking what this thread
            // already holds deadlocks (mutex/write) or can deadlock behind a
            // queued writer (read-read), so it is an error either way. A
            // re-entrant try_lock merely fails, but reaching here via
            // try_acquired means it *succeeded*, which std does not permit —
            // flag it identically rather than silently corrupt the stack.
            panic!(
                "lockcheck: re-entrant acquisition of lock #{id}\n\
                 --- first acquired at ---\n{}\n\
                 --- re-acquired at ---\n{}",
                prev.acquired_at, acquired_at
            );
        }
        if blocking && !held_stack.is_empty() {
            let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
            for prev in held_stack.iter() {
                record_edge(&mut graph, prev, id, &acquired_at);
            }
        }
        drop(held_stack);
        held.borrow_mut().push(HeldLock { id, acquired_at });
    });
}

/// Inserts `held.id → acquiring` into the order graph, panicking when the
/// reverse order is already on record (a lock-order inversion).
fn record_edge(
    graph: &mut OrderGraph,
    held: &HeldLock,
    acquiring: u64,
    acquired_at: &Arc<Backtrace>,
) {
    let from = held.id;
    if from == acquiring || graph.edges.contains_key(&(from, acquiring)) {
        return;
    }
    if let Some(path) = graph.path(acquiring, from) {
        // The earlier, conflicting ordering: the first edge of the reverse
        // path, with the backtraces stored when it was first observed.
        let conflict = graph
            .edges
            .get(&(path[0], path[1]))
            .expect("path edges are recorded");
        panic!(
            "lockcheck: lock-order inversion — acquiring lock #{acquiring} while holding \
             lock #{from}, but the opposite order #{path:?} was recorded earlier; \
             the two orders deadlock if their threads interleave\n\
             === this acquisition ===\n\
             --- holding #{from}, acquired at ---\n{}\n\
             --- while acquiring #{acquiring} at ---\n{}\n\
             === earlier conflicting acquisition ===\n\
             --- holding #{}, acquired at ---\n{}\n\
             --- while acquiring #{} at ---\n{}",
            held.acquired_at, acquired_at, path[0], conflict.held_at, path[1], conflict.acquired_at
        );
    }
    graph.successors.entry(from).or_default().push(acquiring);
    graph.edges.insert(
        (from, acquiring),
        EdgeInfo {
            held_at: Arc::clone(&held.acquired_at),
            acquired_at: Arc::clone(acquired_at),
        },
    );
}

#[cfg(test)]
mod tests {
    use crate::{Mutex, RwLock};

    #[test]
    fn consistent_nesting_is_fine() {
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        for _ in 0..3 {
            let _a = outer.lock();
            let _b = inner.lock();
        }
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inverted_order_panics() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Same thread, opposite order: no deadlock *here*, but two threads
        // running these two blocks concurrently could each hold one lock and
        // wait forever for the other — exactly what the sanitizer flags.
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn transitive_inversion_panics() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = RwLock::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.write();
        }
        // a → b → c is on record; c → a closes the cycle.
        let _gc = c.read();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "re-entrant acquisition")]
    fn reentrant_lock_panics() {
        let m = Mutex::new(());
        let _g = m.lock();
        let _g2 = m.lock();
    }

    #[test]
    #[should_panic(expected = "re-entrant acquisition")]
    fn reentrant_read_panics() {
        // Two read guards on one thread deadlock with std's RwLock as soon
        // as a writer queues between them — flagged like any re-entrancy.
        let l = RwLock::new(());
        let _a = l.read();
        let _b = l.read();
    }

    #[test]
    fn released_locks_leave_the_held_stack() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        // Sequential (non-nested) acquisitions in both orders are fine.
        drop(a.lock());
        drop(b.lock());
        drop(b.lock());
        drop(a.lock());
    }

    #[test]
    fn try_lock_holds_but_adds_no_edges() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.try_lock().expect("uncontended");
            let _gb = b.lock(); // edge a → b
        }
        {
            // b held via try_lock, then blocking on a would be b → a and
            // must still trip the checker: the hold is real however it was
            // obtained. (Not exercised here — this test pins the quiet path:
            // try_lock *itself* records no edge, so taking b under a again
            // stays silent.)
            let _ga = a.lock();
            let _gb = b.try_lock().expect("uncontended");
        }
    }
}
