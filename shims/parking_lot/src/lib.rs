//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, and a panic while a
//! lock is held does not poison it for later users (the underlying std
//! poison error is unwrapped into the inner guard).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
