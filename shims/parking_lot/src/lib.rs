//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock`/`Condvar` with parking_lot's
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly, a
//! panic while a lock is held does not poison it for later users (the
//! underlying std poison error is unwrapped into the inner guard), and
//! [`Condvar`] waits on a `&mut MutexGuard` instead of consuming it.
//!
//! # The `lockcheck` sanitizer
//!
//! Because every lock in the workspace goes through this shim (the
//! `mlr-check` linter forbids `std::sync::{Mutex, RwLock}` outside `shims/`),
//! the shim doubles as the instrumentation point for a lock-order sanitizer.
//! With `--features lockcheck` every acquisition is recorded:
//!
//! * each thread keeps a stack of the locks it currently holds;
//! * blocking on lock `B` while holding lock `A` adds the directed edge
//!   `A → B` to a global acquisition-order graph (remembering both
//!   acquisition backtraces the first time the edge is seen);
//! * an edge that closes a cycle — some other code path acquired the same
//!   locks in the opposite order — means the two paths can deadlock if their
//!   threads interleave, so the sanitizer panics immediately with the
//!   backtraces of both acquisitions, even though *this* run did not
//!   deadlock;
//! * re-entrant acquisition of a lock the thread already holds (guaranteed
//!   self-deadlock with the std primitives underneath) panics likewise.
//!
//! Successful `try_lock`s never block, so they add no graph edges, but the
//! lock they take still joins the held stack: blocking on another lock while
//! it is held is a real wait-while-holding edge. The checker is conservative
//! about `RwLock` readers (a read acquisition participates in ordering like
//! a write, because a queued writer can make reader/reader cycles deadlock
//! with std's `RwLock`), and it observes *potential* inversions, not actual
//! contention — single-threaded tests catch ordering bugs that would only
//! deadlock under production interleavings.
//!
//! The feature costs a backtrace capture per acquisition, so it is meant for
//! the dedicated `static-analysis` CI job (`cargo test --features
//! lockcheck`), never for benchmarking builds. [`lockcheck_enabled`] lets
//! harnesses with allocation-budget assertions relax them under the
//! sanitizer (backtrace capture allocates).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};
use std::time::{Duration, Instant};

#[cfg(feature = "lockcheck")]
mod lockcheck;

/// Whether the lock-order sanitizer is compiled in.
///
/// Allocation-budget assertions (`mlr_bench::no_alloc_region!`) consult this
/// to relax themselves: under `lockcheck` every lock acquisition captures a
/// backtrace, which allocates, so "the hot path performs no allocator
/// traffic" is deliberately violated by the instrumentation itself.
pub const fn lockcheck_enabled() -> bool {
    cfg!(feature = "lockcheck")
}

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    tag: lockcheck::LockTag,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            tag: lockcheck::LockTag::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        self.tag.blocking_acquire();
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            #[cfg(feature = "lockcheck")]
            tag: &self.tag,
            inner: Some(guard),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        self.tag.try_acquired();
        Some(MutexGuard {
            #[cfg(feature = "lockcheck")]
            tag: &self.tag,
            inner: Some(guard),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard of a [`Mutex`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    tag: &'a lockcheck::LockTag,
    /// `None` only transiently inside [`Condvar`] waits, which hold the
    /// guard exclusively; every deref outside that window sees `Some`.
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard active")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard active")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the std guard first
        #[cfg(feature = "lockcheck")]
        self.tag.released();
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    tag: lockcheck::LockTag,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            tag: lockcheck::LockTag::new(),
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        self.tag.blocking_acquire();
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            #[cfg(feature = "lockcheck")]
            tag: &self.tag,
            inner: guard,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        self.tag.blocking_acquire();
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            #[cfg(feature = "lockcheck")]
            tag: &self.tag,
            inner: guard,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII shared-read guard of an [`RwLock`]; unlocks on drop.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    tag: &'a lockcheck::LockTag,
    inner: StdRwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.tag.released();
    }
}

/// RAII exclusive-write guard of an [`RwLock`]; unlocks on drop.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    tag: &'a lockcheck::LockTag,
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.tag.released();
    }
}

/// Whether a [`Condvar`] wait returned because its timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable in parking_lot's style: waits take the
/// [`MutexGuard`] by `&mut`, re-locking before they return, so the guard
/// binding stays valid across the wait.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guarded mutex and blocks until notified
    /// (spurious wakeups allowed — callers loop on their predicate), then
    /// re-acquires the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("mutex guard active");
        #[cfg(feature = "lockcheck")]
        guard.tag.released();
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        // The wait re-acquired the mutex while holding whatever else this
        // thread still holds — record that like any blocking acquisition.
        #[cfg(feature = "lockcheck")]
        guard.tag.blocking_acquire();
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("mutex guard active");
        #[cfg(feature = "lockcheck")]
        guard.tag.released();
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockcheck")]
        guard.tag.blocking_acquire();
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Like [`Condvar::wait`], but gives up once `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("uncontended"), 5);
    }

    // Re-entrant same-thread reads are exactly what lockcheck flags (they
    // deadlock behind a queued writer), so this test only runs unchecked;
    // the checked counterpart pinning the panic lives in `lockcheck::tests`.
    #[cfg(not(feature = "lockcheck"))]
    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_concurrent_readers_across_threads() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let got = {
            let _mine = l.read();
            std::thread::spawn(move || *l2.read())
                .join()
                .expect("reader")
        };
        assert_eq!(got, 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(waiter.join().expect("waiter finishes"));
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is locked again after the wait.
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_until_past_deadline_returns_immediately() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
