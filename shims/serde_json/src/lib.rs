//! Offline stand-in for `serde_json`, rendering the vendored serde facade's
//! [`serde::Value`] tree as JSON text. Only the serialisation direction is
//! implemented — that is all the experiment harnesses use.

use serde::{format_f64, Serialize, Value};
use std::fmt;

/// Serialisation error. Rendering a [`Value`] tree cannot actually fail, but
/// the `Result` return keeps call sites source-compatible with serde_json.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises a value as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&format_f64(*x)),
        Value::Str(s) => push_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                push_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Record {
        name: String,
        values: Vec<f64>,
        count: usize,
        nested: Inner,
    }

    #[derive(Serialize)]
    struct Inner {
        flag: bool,
    }

    #[test]
    fn compact_rendering() {
        let r = Record {
            name: "x\"y".into(),
            values: vec![1.0, 0.25],
            count: 2,
            nested: Inner { flag: true },
        };
        assert_eq!(
            to_string(&r).unwrap(),
            r#"{"name":"x\"y","values":[1,0.25],"count":2,"nested":{"flag":true}}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let r = Inner { flag: false };
        assert_eq!(to_string_pretty(&r).unwrap(), "{\n  \"flag\": false\n}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
