//! Offline stand-in for `rand_chacha`.
//!
//! The workspace uses `ChaCha8Rng` purely as a *deterministic, seedable,
//! statistically solid* generator — nothing depends on the ChaCha stream
//! itself. This shim keeps the type name (so `mlr_math::rng` compiles
//! unchanged) but implements xoshiro256++ seeded via splitmix64, which has
//! excellent statistical quality for simulation workloads and is a fraction
//! of the code.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ under the hood).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
