//! Umbrella crate for the mLR reproduction workspace.
//!
//! Exists so the repository-level integration tests (`tests/`) and examples
//! (`examples/`) have a package to hang off; the actual functionality lives
//! in the `crates/mlr-*` workspace members, re-exported here for
//! convenience:
//!
//! * [`mlr_core`] — configuration, pipeline and report (start here).
//! * [`mlr_runtime`] — the multi-job reconstruction runtime with the shared
//!   memoization store.
//! * [`mlr_memo`] — the memoization system (encoder, ANN index, stores).
//! * [`mlr_solver`] / [`mlr_lamino`] / [`mlr_fft`] / [`mlr_math`] — the
//!   numerical stack.
//! * [`mlr_sim`] / [`mlr_cluster`] / [`mlr_offload`] — the hardware cost
//!   model and the scaling/offload studies built on it.

pub use mlr_cluster;
pub use mlr_core;
pub use mlr_fft;
pub use mlr_lamino;
pub use mlr_math;
pub use mlr_memo;
pub use mlr_offload;
pub use mlr_runtime;
pub use mlr_sim;
pub use mlr_solver;
