//! Chunk partitioning of 3-D arrays.
//!
//! The paper breaks the input dataset into *chunks* — slabs along one
//! dimension — so that each FFT operation works on a piece small enough for
//! GPU memory, and so that memoization, caching and multi-GPU distribution
//! can all key on the *chunk location* (the slab index). The default chunk
//! size in the paper's evaluation is 16.

use mlr_math::{Array3, Shape3};
use serde::{Deserialize, Serialize};

/// Identifies one chunk location: which slab of the partitioned axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Index of the chunk along the partitioned axis (0-based).
    pub index: usize,
    /// First slab (axis-0 plane) covered by this chunk.
    pub start: usize,
    /// Number of slabs covered by this chunk.
    pub len: usize,
}

/// A partition of an axis of length `extent` into chunks of `chunk_size`
/// slabs (the final chunk may be shorter).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkGrid {
    extent: usize,
    chunk_size: usize,
}

impl ChunkGrid {
    /// Creates a grid over an axis of length `extent` with the given chunk
    /// size.
    ///
    /// # Panics
    /// Panics when `extent == 0` or `chunk_size == 0`.
    pub fn new(extent: usize, chunk_size: usize) -> Self {
        assert!(extent > 0, "chunked axis must be non-empty");
        assert!(chunk_size > 0, "chunk size must be positive");
        Self { extent, chunk_size }
    }

    /// Length of the partitioned axis.
    pub fn extent(&self) -> usize {
        self.extent
    }

    /// Nominal chunk size (the last chunk may be smaller).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunk locations.
    pub fn num_chunks(&self) -> usize {
        self.extent.div_ceil(self.chunk_size)
    }

    /// Returns the chunk location for chunk `index`.
    ///
    /// # Panics
    /// Panics when `index >= self.num_chunks()`.
    pub fn location(&self, index: usize) -> ChunkLocation {
        assert!(index < self.num_chunks(), "chunk index out of range");
        let start = index * self.chunk_size;
        let len = self.chunk_size.min(self.extent - start);
        ChunkLocation { index, start, len }
    }

    /// Iterates over every chunk location in order.
    pub fn iter(&self) -> impl Iterator<Item = ChunkLocation> + '_ {
        (0..self.num_chunks()).map(|i| self.location(i))
    }

    /// Splits the chunk locations round-robin across `workers` workers.
    /// Used by `mlr-cluster` to distribute chunks across GPUs/nodes.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn round_robin(&self, workers: usize) -> Vec<Vec<ChunkLocation>> {
        assert!(workers > 0, "need at least one worker");
        let mut out = vec![Vec::new(); workers];
        for loc in self.iter() {
            out[loc.index % workers].push(loc);
        }
        out
    }

    /// Splits the chunk locations into `workers` contiguous, balanced ranges.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn contiguous(&self, workers: usize) -> Vec<Vec<ChunkLocation>> {
        assert!(workers > 0, "need at least one worker");
        let n = self.num_chunks();
        let base = n / workers;
        let extra = n % workers;
        let mut out = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let count = base + usize::from(w < extra);
            let mut v = Vec::with_capacity(count);
            for i in next..next + count {
                v.push(self.location(i));
            }
            next += count;
            out.push(v);
        }
        out
    }

    /// Extracts the chunk `loc` from `volume` (slabs along axis 0).
    ///
    /// # Panics
    /// Panics when the chunk does not fit in the volume.
    pub fn extract<T: Clone + Default>(&self, volume: &Array3<T>, loc: ChunkLocation) -> Array3<T> {
        volume.slab(loc.start, loc.len)
    }

    /// Writes the chunk `loc` back into `volume`.
    ///
    /// # Panics
    /// Panics when shapes are inconsistent.
    pub fn insert<T: Clone + Default>(
        &self,
        volume: &mut Array3<T>,
        loc: ChunkLocation,
        chunk: &Array3<T>,
    ) {
        assert_eq!(chunk.shape().n0, loc.len, "chunk length mismatch");
        volume.set_slab(loc.start, chunk);
    }

    /// Shape of the chunk at `loc` for a volume whose full shape is `shape`.
    pub fn chunk_shape(&self, shape: Shape3, loc: ChunkLocation) -> Shape3 {
        Shape3::new(loc.len, shape.n1, shape.n2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_and_last_chunk() {
        let g = ChunkGrid::new(100, 16);
        assert_eq!(g.num_chunks(), 7);
        let last = g.location(6);
        assert_eq!(last.start, 96);
        assert_eq!(last.len, 4);
        let g2 = ChunkGrid::new(64, 16);
        assert_eq!(g2.num_chunks(), 4);
        assert_eq!(g2.location(3).len, 16);
    }

    #[test]
    fn locations_cover_axis_disjointly() {
        let g = ChunkGrid::new(77, 10);
        let mut covered = [false; 77];
        for loc in g.iter() {
            for (i, c) in covered.iter_mut().enumerate().skip(loc.start).take(loc.len) {
                assert!(!*c, "slab {i} covered twice");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn extract_insert_roundtrip() {
        let shape = Shape3::new(12, 3, 3);
        let data: Vec<f64> = (0..shape.len()).map(|i| i as f64).collect();
        let volume = Array3::from_vec(shape, data);
        let g = ChunkGrid::new(12, 5);
        let mut rebuilt: Array3<f64> = Array3::zeros(shape);
        for loc in g.iter() {
            let chunk = g.extract(&volume, loc);
            assert_eq!(chunk.shape(), g.chunk_shape(shape, loc));
            g.insert(&mut rebuilt, loc, &chunk);
        }
        assert_eq!(rebuilt, volume);
    }

    #[test]
    fn round_robin_distribution() {
        let g = ChunkGrid::new(64, 16); // 4 chunks
        let parts = g.round_robin(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 2); // chunks 0 and 3
        assert_eq!(parts[1].len(), 1);
        assert_eq!(parts[2].len(), 1);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, g.num_chunks());
    }

    #[test]
    fn contiguous_distribution_balanced() {
        let g = ChunkGrid::new(130, 10); // 13 chunks
        let parts = g.contiguous(4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3, 3]);
        // Contiguity: each worker's chunks are consecutive.
        for p in &parts {
            for w in p.windows(2) {
                assert_eq!(w[1].index, w[0].index + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn out_of_range_location_panics() {
        let g = ChunkGrid::new(10, 4);
        let _ = g.location(3);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = ChunkGrid::new(10, 0);
    }
}
