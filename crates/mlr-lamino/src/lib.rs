//! # mlr-lamino
//!
//! Laminography substrate for the mLR workspace: acquisition geometry, the
//! factored forward/adjoint operators the paper's ADMM-FFT solver is built
//! on, synthetic phantoms that stand in for the paper's mouse-brain and IC
//! datasets, projection simulation, and the chunk partitioning that the
//! memoization and multi-GPU scaling layers key on.
//!
//! ## The factored laminography operator
//!
//! A laminography scan tilts the rotation axis by the *laminography angle*
//! `φ` relative to the beam. By the Fourier-slice theorem the 2-D Fourier
//! transform of the projection acquired at rotation angle `θ` equals the 3-D
//! Fourier transform of the object sampled on a tilted plane. The key
//! structural fact (used by the `lam_usfft` method the paper builds on) is
//! that the **vertical** frequency of every sample on that plane depends only
//! on the detector row — not on `θ` or the detector column. The operator
//! therefore factors into
//!
//! ```text
//! L = F*_2D · F_u2D · F_u1D
//! ```
//!
//! * `F_u1D` — a 1-D unequally-spaced FFT along the vertical axis of the
//!   volume, evaluated at one frequency per detector row (`k_z = k_v·sin φ`),
//! * `F_u2D` — a 2-D unequally-spaced FFT over each horizontal volume plane,
//!   evaluated at the in-plane frequencies of every (angle, column) pair,
//! * `F*_2D` — an inverse 2-D FFT per projection that maps the sampled
//!   spectrum back to detector space.
//!
//! The adjoint is `L* = F*_u1D · F*_u2D · F_2D`. Both directions are exposed
//! whole-volume (for small exact runs) and chunk-by-chunk (the granularity at
//! which the paper applies memoization and distributes work across GPUs).

pub mod chunk;
pub mod dataset;
pub mod geometry;
pub mod operators;
pub mod phantom;

pub use chunk::{ChunkGrid, ChunkLocation};
pub use dataset::{LaminoDataset, ProjectionNoise};
pub use geometry::{DetectorSpec, LaminoGeometry};
pub use operators::{ChunkRequest, DirectExecutor, FftExecutor, FftOpKind, LaminoOperator};
pub use phantom::{brain_phantom, ic_phantom, smooth_random_phantom, PhantomKind};
