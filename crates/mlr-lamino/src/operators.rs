//! The factored laminography forward/adjoint operators.
//!
//! `L = F*_2D · F_u2D · F_u1D` maps a reconstruction volume
//! `u ∈ R^(n1, n0, n2)` to projection data `d ∈ R^(nθ, h, w)`; its adjoint
//! `L* = F*_u1D · F*_u2D · F_2D` maps residual projections back to a volume
//! gradient. Every stage is exposed *chunk by chunk* through the
//! [`FftExecutor`] seam, which is where mLR's memoization, the simulated GPU
//! timing and the multi-GPU distribution plug in without the operator (or
//! the FFT code) knowing about them — mirroring the paper's claim that mLR
//! "does not change the FFT algorithm".

use crate::chunk::{ChunkGrid, ChunkLocation};
use crate::geometry::LaminoGeometry;
use mlr_fft::fft::Direction;
use mlr_fft::fft2d::Fft2Batch;
use mlr_fft::scratch::ScratchPool;
use mlr_fft::usfft::{Usfft1d, Usfft2d};
use mlr_math::{Array3, Complex64, Shape3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Identifies one of the six FFT operations that Algorithm 1 of the paper
/// invokes (and that mLR memoizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FftOpKind {
    /// `F_u1D` — 1-D USFFT along the vertical axis.
    Fu1D,
    /// `F*_u1D` — adjoint of `F_u1D`.
    Fu1DAdj,
    /// `F_u2D` — per-row 2-D USFFT over horizontal planes.
    Fu2D,
    /// `F*_u2D` — adjoint of `F_u2D`.
    Fu2DAdj,
    /// `F_2D` — uniform 2-D FFT per projection.
    F2D,
    /// `F*_2D` — inverse uniform 2-D FFT per projection.
    F2DAdj,
}

impl FftOpKind {
    /// All operation kinds, in the order they appear in one LSP iteration of
    /// Algorithm 1 (forward pass then adjoint pass).
    pub const ALL: [FftOpKind; 6] = [
        FftOpKind::Fu1D,
        FftOpKind::Fu2D,
        FftOpKind::F2DAdj,
        FftOpKind::F2D,
        FftOpKind::Fu2DAdj,
        FftOpKind::Fu1DAdj,
    ];

    /// The four operations that remain after the paper's operation
    /// cancellation (Algorithm 2): `F_2D`/`F*_2D` are eliminated.
    pub const AFTER_CANCELLATION: [FftOpKind; 4] = [
        FftOpKind::Fu1D,
        FftOpKind::Fu2D,
        FftOpKind::Fu2DAdj,
        FftOpKind::Fu1DAdj,
    ];

    /// Short human-readable label used by reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            FftOpKind::Fu1D => "Fu1D",
            FftOpKind::Fu1DAdj => "F*u1D",
            FftOpKind::Fu2D => "Fu2D",
            FftOpKind::Fu2DAdj => "F*u2D",
            FftOpKind::F2D => "F2D",
            FftOpKind::F2DAdj => "F*2D",
        }
    }

    /// Returns `true` for the unequally-spaced operations (the expensive
    /// ones, and the only ones mLR memoizes after cancellation).
    pub fn is_unequally_spaced(&self) -> bool {
        !matches!(self, FftOpKind::F2D | FftOpKind::F2DAdj)
    }

    /// The operation kinds in dense-index order: `DENSE[k.index()] == k`.
    /// This is the canonical order for fixed-arity per-operation tables
    /// (note it differs from [`FftOpKind::ALL`], which lists the kinds in
    /// Algorithm-1 invocation order).
    pub const DENSE: [FftOpKind; 6] = [
        FftOpKind::Fu1D,
        FftOpKind::Fu1DAdj,
        FftOpKind::Fu2D,
        FftOpKind::Fu2DAdj,
        FftOpKind::F2D,
        FftOpKind::F2DAdj,
    ];

    /// Dense index of this kind in `0..FftOpKind::DENSE.len()`, the inverse
    /// of [`FftOpKind::DENSE`]. Lets hot-path per-operation statistics live
    /// in fixed arrays (a copyable snapshot) instead of hash maps.
    pub fn index(self) -> usize {
        match self {
            FftOpKind::Fu1D => 0,
            FftOpKind::Fu1DAdj => 1,
            FftOpKind::Fu2D => 2,
            FftOpKind::Fu2DAdj => 3,
            FftOpKind::F2D => 4,
            FftOpKind::F2DAdj => 5,
        }
    }
}

/// One chunk of a batched executor dispatch: the chunk location, its
/// gathered (flattened, row-major) input, and the exact-compute closure the
/// executor must call on a memoization miss. The closure is `Sync` so
/// batch-aware executors may evaluate different chunks on different threads.
pub struct ChunkRequest<'a> {
    /// Chunk index along the stage's grid (the memoization key scope).
    pub loc: usize,
    /// Flattened chunk input.
    pub input: &'a [Complex64],
    /// Exact transform for this chunk.
    pub compute: &'a (dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
}

/// The execution seam for chunked FFT operations.
///
/// The operator hands every chunk-level FFT invocation to an executor
/// together with a closure that performs the actual computation. The default
/// [`DirectExecutor`] simply calls the closure; mLR's memoization engine
/// (in `mlr-memo`) instead searches its database and only falls back to the
/// closure on a miss; the hardware simulator wraps either to account time.
///
/// Operators dispatch whole chunk grids through
/// [`FftExecutor::execute_batch_into`], which batch-aware executors (the
/// memoized engine's deterministic chunk-parallel scheduler) override; the
/// default implementation simply loops over [`FftExecutor::execute`], so
/// single-chunk executors and sim wrappers keep working unchanged.
pub trait FftExecutor: Send + Sync {
    /// Executes (or replaces) FFT operation `kind` on chunk location `loc`.
    ///
    /// `input` is the flattened chunk (row-major); `compute` performs the
    /// exact transform and must be called on a miss.
    fn execute(
        &self,
        kind: FftOpKind,
        loc: usize,
        input: &[Complex64],
        compute: &dyn Fn(&[Complex64]) -> Vec<Complex64>,
    ) -> Vec<Complex64>;

    /// Executes one whole stage application — every chunk of the grid — in a
    /// single dispatch, writing each chunk's result into its caller-provided
    /// output slice (`outputs[i]` receives chunk `i`; lengths must match the
    /// chunk results exactly).
    ///
    /// This is the zero-copy seam: the operator hands out windows of its own
    /// grid buffers, so a memoization hit costs one memcpy from the shared
    /// stored payload into the grid — no intermediate `Vec` per chunk. The
    /// default implementation runs the chunks sequentially through
    /// [`FftExecutor::execute`]; the memoized engine overrides it with the
    /// two-phase deterministic parallel schedule (parallel probe/compute,
    /// ordered commit), whose results are bit-identical for every thread
    /// count.
    ///
    /// # Panics
    /// Panics when `batch` and `outputs` disagree in arity (or a result
    /// length mismatches its output slice).
    fn execute_batch_into(
        &self,
        kind: FftOpKind,
        batch: &[ChunkRequest<'_>],
        outputs: &mut [&mut [Complex64]],
    ) {
        assert_eq!(batch.len(), outputs.len(), "batch/output arity mismatch");
        for (r, out) in batch.iter().zip(outputs.iter_mut()) {
            let result = self.execute(kind, r.loc, r.input, r.compute);
            out.copy_from_slice(&result);
        }
    }

    /// Notifies the executor that a new outer (ADMM) iteration begins.
    /// Memoizing executors use this for similarity tracking; the default
    /// implementation does nothing.
    fn begin_iteration(&self, _iteration: usize) {}

    /// Notifies the executor that the job is complete (no more invocations
    /// will follow). Memoizing executors flush and account any buffered
    /// coalesced keys here; the default implementation does nothing.
    fn finish(&self) {}
}

/// Executor that always performs the exact computation.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectExecutor;

impl FftExecutor for DirectExecutor {
    fn execute(
        &self,
        _kind: FftOpKind,
        _loc: usize,
        input: &[Complex64],
        compute: &dyn Fn(&[Complex64]) -> Vec<Complex64>,
    ) -> Vec<Complex64> {
        compute(input)
    }
}

/// Splits `data` into consecutive mutable windows of the given sizes — the
/// per-chunk output slices a batch dispatch writes into. The windows
/// partition a single grid (or staging) buffer, so chunk results land in
/// place with no per-chunk `Vec`.
fn split_windows(
    mut data: &mut [Complex64],
    sizes: impl Iterator<Item = usize>,
) -> Vec<&mut [Complex64]> {
    let mut out = Vec::new();
    for size in sizes {
        let (head, tail) = data.split_at_mut(size);
        out.push(head);
        data = tail;
    }
    out
}

/// Iterator over consecutive immutable windows of the given sizes — the
/// read-side counterpart of [`split_windows`], used to hand each chunk its
/// slice of a shared gather arena.
struct WindowIter<'a, I> {
    data: &'a [Complex64],
    offset: usize,
    sizes: I,
}

impl<'a, I: Iterator<Item = usize>> WindowIter<'a, I> {
    fn new(data: &'a [Complex64], sizes: I) -> Self {
        Self {
            data,
            offset: 0,
            sizes,
        }
    }
}

impl<'a, I: Iterator<Item = usize>> Iterator for WindowIter<'a, I> {
    type Item = &'a [Complex64];
    fn next(&mut self) -> Option<&'a [Complex64]> {
        let size = self.sizes.next()?;
        let window = &self.data[self.offset..self.offset + size];
        self.offset += size;
        Some(window)
    }
}

/// Assembles the per-chunk [`ChunkRequest`]s of one stage application from
/// parallel slices of locations, input windows and compute closures.
fn make_batch<'a, C>(
    locs: &[ChunkLocation],
    inputs: impl Iterator<Item = &'a [Complex64]>,
    computes: &'a [C],
) -> Vec<ChunkRequest<'a>>
where
    C: Fn(&[Complex64]) -> Vec<Complex64> + Sync,
{
    locs.iter()
        .zip(inputs.zip(computes))
        .map(|(loc, (input, compute))| ChunkRequest {
            loc: loc.index,
            input,
            compute: compute as &(dyn Fn(&[Complex64]) -> Vec<Complex64> + Sync),
        })
        .collect()
}

/// The laminography operator for a fixed geometry.
///
/// Construction precomputes the USFFT plans (vertical transform and one
/// in-plane transform per detector row) and the uniform 2-D FFT plan, so
/// repeated applications — every CG step of every ADMM iteration — reuse
/// them.
pub struct LaminoOperator {
    geometry: LaminoGeometry,
    usfft_vertical: Usfft1d,
    usfft_rows: Vec<Usfft2d>,
    fft2_detector: Fft2Batch,
    chunk_size: usize,
    /// Pooled gather/scatter staging buffers, reused across the batch
    /// dispatches of an operator application (and across applications): the
    /// `F_u2D`/`F*_u2D` stages gather their chunk inputs into one leased
    /// arena and stage their outputs in another instead of allocating per
    /// chunk. The slab-aligned stages (`F_u1D`, `F_2D`) need no staging at
    /// all — they borrow the operand and write the result grids directly.
    arena: ScratchPool,
    /// Pooled per-plane column buffers for the chunk compute kernels.
    column_pool: ScratchPool,
}

impl LaminoOperator {
    /// Builds the operator for `geometry` with the given chunk size (the
    /// paper's default is 16 slabs per chunk).
    ///
    /// # Panics
    /// Panics when `chunk_size == 0`.
    pub fn new(geometry: LaminoGeometry, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let usfft_vertical = Usfft1d::with_params(geometry.n0, geometry.vertical_freqs(), 2, 6);
        let usfft_rows: Vec<Usfft2d> = (0..geometry.detector.rows)
            .into_par_iter()
            .map(|row| {
                Usfft2d::with_params(
                    geometry.n1,
                    geometry.n2,
                    geometry.inplane_freqs_for_row(row),
                    2,
                    6,
                )
            })
            .collect();
        let fft2_detector = Fft2Batch::new(geometry.detector.rows, geometry.detector.cols);
        Self {
            geometry,
            usfft_vertical,
            usfft_rows,
            fft2_detector,
            chunk_size,
            arena: ScratchPool::new(),
            column_pool: ScratchPool::new(),
        }
    }

    /// The geometry this operator was built for.
    pub fn geometry(&self) -> &LaminoGeometry {
        &self.geometry
    }

    /// Chunk size used for the chunked stages.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunk grid of the `F_u1D` stage (slabs along volume axis `n1`).
    pub fn fu1d_grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.geometry.n1, self.chunk_size)
    }

    /// Chunk grid of the `F_u2D` stage (slabs along the detector-row axis).
    pub fn fu2d_grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.geometry.detector.rows, self.chunk_size)
    }

    /// Chunk grid of the `F_2D` stage (slabs along the angle axis).
    pub fn f2d_grid(&self) -> ChunkGrid {
        ChunkGrid::new(self.geometry.n_angles(), self.chunk_size)
    }

    // ----------------------------------------------------------------- Fu1D

    /// Applies `F_u1D` to the whole volume: `u[n1, n0, n2] → ũ1[n1, h, n2]`.
    ///
    /// Chunks of this stage are slabs along axis 0, which are contiguous in
    /// row-major storage: the batch borrows its inputs straight out of `u`
    /// and writes its results straight into windows of the output grid —
    /// zero gather/scatter copies, zero per-chunk buffers.
    pub fn fu1d(&self, u: &Array3<Complex64>, exec: &dyn FftExecutor) -> Array3<Complex64> {
        let shape = u.shape();
        assert_eq!(
            shape,
            self.geometry.volume_shape(),
            "Fu1D input shape mismatch"
        );
        let out_shape = self.geometry.u1_shape();
        let mut out = Array3::zeros(out_shape);
        let locs: Vec<ChunkLocation> = self.fu1d_grid().iter().collect();
        let in_plane = shape.n1 * shape.n2;
        let out_plane = out_shape.n1 * out_shape.n2;
        let computes: Vec<_> = locs
            .iter()
            .map(|loc| {
                let len = loc.len;
                move |input: &[Complex64]| self.fu1d_chunk_compute(input, len)
            })
            .collect();
        let batch = make_batch(
            &locs,
            locs.iter()
                .map(|loc| &u.as_slice()[loc.start * in_plane..(loc.start + loc.len) * in_plane]),
            &computes,
        );
        let mut outputs = split_windows(out.as_mut_slice(), locs.iter().map(|l| l.len * out_plane));
        exec.execute_batch_into(FftOpKind::Fu1D, &batch, &mut outputs);
        out
    }

    /// Exact computation of `F_u1D` on one chunk (a slab of `len` planes of
    /// the volume along `n1`). Exposed so benches can time the raw kernel.
    pub fn fu1d_chunk_compute(&self, input: &[Complex64], len: usize) -> Vec<Complex64> {
        let n0 = self.geometry.n0;
        let n2 = self.geometry.n2;
        let h = self.geometry.detector.rows;
        assert_eq!(input.len(), len * n0 * n2, "Fu1D chunk length mismatch");
        let mut out = vec![Complex64::ZERO; len * h * n2];
        out.par_chunks_mut(h * n2)
            .enumerate()
            .for_each(|(i1, out_plane)| {
                let in_plane = &input[i1 * n0 * n2..(i1 + 1) * n0 * n2];
                let mut column = self.column_pool.lease(n0);
                for i2 in 0..n2 {
                    for j in 0..n0 {
                        column[j] = in_plane[j * n2 + i2];
                    }
                    let transformed = self.usfft_vertical.forward(&column);
                    for (row, &v) in transformed.iter().enumerate() {
                        out_plane[row * n2 + i2] = v;
                    }
                }
            });
        out
    }

    /// Applies `F*_u1D`: `ũ1[n1, h, n2] → u[n1, n0, n2]`.
    pub fn fu1d_adjoint(
        &self,
        u1: &Array3<Complex64>,
        exec: &dyn FftExecutor,
    ) -> Array3<Complex64> {
        let shape = u1.shape();
        assert_eq!(
            shape,
            self.geometry.u1_shape(),
            "F*u1D input shape mismatch"
        );
        let out_shape = self.geometry.volume_shape();
        let mut out = Array3::zeros(out_shape);
        let locs: Vec<ChunkLocation> = self.fu1d_grid().iter().collect();
        let in_plane = shape.n1 * shape.n2;
        let out_plane = out_shape.n1 * out_shape.n2;
        let computes: Vec<_> = locs
            .iter()
            .map(|loc| {
                let len = loc.len;
                move |input: &[Complex64]| self.fu1d_adjoint_chunk_compute(input, len)
            })
            .collect();
        let batch = make_batch(
            &locs,
            locs.iter()
                .map(|loc| &u1.as_slice()[loc.start * in_plane..(loc.start + loc.len) * in_plane]),
            &computes,
        );
        let mut outputs = split_windows(out.as_mut_slice(), locs.iter().map(|l| l.len * out_plane));
        exec.execute_batch_into(FftOpKind::Fu1DAdj, &batch, &mut outputs);
        out
    }

    /// Exact computation of `F*_u1D` on one chunk.
    pub fn fu1d_adjoint_chunk_compute(&self, input: &[Complex64], len: usize) -> Vec<Complex64> {
        let n0 = self.geometry.n0;
        let n2 = self.geometry.n2;
        let h = self.geometry.detector.rows;
        assert_eq!(input.len(), len * h * n2, "F*u1D chunk length mismatch");
        let mut out = vec![Complex64::ZERO; len * n0 * n2];
        out.par_chunks_mut(n0 * n2)
            .enumerate()
            .for_each(|(i1, out_plane)| {
                let in_plane = &input[i1 * h * n2..(i1 + 1) * h * n2];
                let mut column = self.column_pool.lease(h);
                for i2 in 0..n2 {
                    for row in 0..h {
                        column[row] = in_plane[row * n2 + i2];
                    }
                    let transformed = self.usfft_vertical.adjoint(&column);
                    for (j, &v) in transformed.iter().enumerate() {
                        out_plane[j * n2 + i2] = v;
                    }
                }
            });
        out
    }

    // ----------------------------------------------------------------- Fu2D

    /// Applies `F_u2D`: `ũ1[n1, h, n2] → d̂[nθ, h, w]` (the sampled spectrum
    /// of every projection).
    pub fn fu2d(&self, u1: &Array3<Complex64>, exec: &dyn FftExecutor) -> Array3<Complex64> {
        assert_eq!(
            u1.shape(),
            self.geometry.u1_shape(),
            "Fu2D input shape mismatch"
        );
        let n1 = self.geometry.n1;
        let n2 = self.geometry.n2;
        let n_theta = self.geometry.n_angles();
        let h = self.geometry.detector.rows;
        let w = self.geometry.detector.cols;
        let mut out = Array3::zeros(Shape3::new(n_theta, h, w));
        let locs: Vec<ChunkLocation> = self.fu2d_grid().iter().collect();
        // One leased gather arena holds every chunk's input (reused across
        // dispatches and applications); one leased staging arena receives
        // the per-row outputs before the scatter into `out`.
        let mut gather = self.arena.lease(h * n1 * n2);
        let mut offset = 0;
        for loc in &locs {
            let size = loc.len * n1 * n2;
            self.gather_rows_into(u1, loc.start, loc.len, &mut gather[offset..offset + size]);
            offset += size;
        }
        let computes: Vec<_> = locs
            .iter()
            .map(|loc| {
                let (start, len) = (loc.start, loc.len);
                move |input: &[Complex64]| self.fu2d_chunk_compute(input, start, len)
            })
            .collect();
        let batch = make_batch(
            &locs,
            WindowIter::new(&gather[..], locs.iter().map(|l| l.len * n1 * n2)),
            &computes,
        );
        let mut staging = self.arena.lease(h * n_theta * w);
        {
            let mut outputs = split_windows(&mut staging, locs.iter().map(|l| l.len * n_theta * w));
            exec.execute_batch_into(FftOpKind::Fu2D, &batch, &mut outputs);
        }
        let mut offset = 0;
        for loc in &locs {
            // staging layout per chunk: [rows_in_chunk][nθ * w]
            for r in 0..loc.len {
                let row = loc.start + r;
                let row_data = &staging[offset + r * n_theta * w..offset + (r + 1) * n_theta * w];
                for t in 0..n_theta {
                    for c in 0..w {
                        out[(t, row, c)] = row_data[t * w + c];
                    }
                }
            }
            offset += loc.len * n_theta * w;
        }
        out
    }

    /// Exact computation of `F_u2D` on one chunk of detector rows.
    ///
    /// `input` holds, per row in the chunk, the `n1 × n2` horizontal plane of
    /// `ũ1`; the output holds, per row, the `nθ × w` sampled spectrum.
    pub fn fu2d_chunk_compute(
        &self,
        input: &[Complex64],
        row_start: usize,
        len: usize,
    ) -> Vec<Complex64> {
        let n1 = self.geometry.n1;
        let n2 = self.geometry.n2;
        let n_theta = self.geometry.n_angles();
        let w = self.geometry.detector.cols;
        assert_eq!(input.len(), len * n1 * n2, "Fu2D chunk length mismatch");
        let mut out = vec![Complex64::ZERO; len * n_theta * w];
        out.par_chunks_mut(n_theta * w)
            .enumerate()
            .for_each(|(r, out_row)| {
                let row = row_start + r;
                let plane = &input[r * n1 * n2..(r + 1) * n1 * n2];
                let values = self.usfft_rows[row].forward(plane);
                out_row.copy_from_slice(&values);
            });
        out
    }

    /// Applies `F*_u2D`: `d̂[nθ, h, w] → ũ1[n1, h, n2]`.
    pub fn fu2d_adjoint(
        &self,
        dhat: &Array3<Complex64>,
        exec: &dyn FftExecutor,
    ) -> Array3<Complex64> {
        assert_eq!(
            dhat.shape(),
            self.geometry.data_shape(),
            "F*u2D input shape mismatch"
        );
        let n1 = self.geometry.n1;
        let n2 = self.geometry.n2;
        let n_theta = self.geometry.n_angles();
        let h = self.geometry.detector.rows;
        let w = self.geometry.detector.cols;
        let mut out = Array3::zeros(self.geometry.u1_shape());
        let locs: Vec<ChunkLocation> = self.fu2d_grid().iter().collect();
        // Leased gather arena: per row, the nθ × w spectrum samples.
        let mut gather = self.arena.lease(h * n_theta * w);
        let mut offset = 0;
        for loc in &locs {
            for r in 0..loc.len {
                let row = loc.start + r;
                for t in 0..n_theta {
                    for c in 0..w {
                        gather[offset + r * n_theta * w + t * w + c] = dhat[(t, row, c)];
                    }
                }
            }
            offset += loc.len * n_theta * w;
        }
        let computes: Vec<_> = locs
            .iter()
            .map(|loc| {
                let (start, len) = (loc.start, loc.len);
                move |input: &[Complex64]| self.fu2d_adjoint_chunk_compute(input, start, len)
            })
            .collect();
        let batch = make_batch(
            &locs,
            WindowIter::new(&gather[..], locs.iter().map(|l| l.len * n_theta * w)),
            &computes,
        );
        let mut staging = self.arena.lease(h * n1 * n2);
        {
            let mut outputs = split_windows(&mut staging, locs.iter().map(|l| l.len * n1 * n2));
            exec.execute_batch_into(FftOpKind::Fu2DAdj, &batch, &mut outputs);
        }
        let mut offset = 0;
        for loc in &locs {
            // staging layout per chunk: [rows_in_chunk][n1 * n2]
            for r in 0..loc.len {
                let row = loc.start + r;
                let plane = &staging[offset + r * n1 * n2..offset + (r + 1) * n1 * n2];
                for i1 in 0..n1 {
                    for i2 in 0..n2 {
                        out[(i1, row, i2)] = plane[i1 * n2 + i2];
                    }
                }
            }
            offset += loc.len * n1 * n2;
        }
        out
    }

    /// Exact computation of `F*_u2D` on one chunk of detector rows.
    pub fn fu2d_adjoint_chunk_compute(
        &self,
        input: &[Complex64],
        row_start: usize,
        len: usize,
    ) -> Vec<Complex64> {
        let n1 = self.geometry.n1;
        let n2 = self.geometry.n2;
        let n_theta = self.geometry.n_angles();
        let w = self.geometry.detector.cols;
        assert_eq!(
            input.len(),
            len * n_theta * w,
            "F*u2D chunk length mismatch"
        );
        let mut out = vec![Complex64::ZERO; len * n1 * n2];
        out.par_chunks_mut(n1 * n2)
            .enumerate()
            .for_each(|(r, out_plane)| {
                let row = row_start + r;
                let samples = &input[r * n_theta * w..(r + 1) * n_theta * w];
                let plane = self.usfft_rows[row].adjoint(samples);
                out_plane.copy_from_slice(&plane);
            });
        out
    }

    // ------------------------------------------------------------------ F2D

    /// Applies the uniform per-projection 2-D FFT `F_2D`:
    /// `d[nθ, h, w] → d̂[nθ, h, w]` (chunked along the angle axis).
    pub fn f2d(&self, d: &Array3<Complex64>, exec: &dyn FftExecutor) -> Array3<Complex64> {
        self.f2d_impl(d, exec, FftOpKind::F2D)
    }

    /// Applies the inverse per-projection 2-D FFT `F*_2D`.
    pub fn f2d_inverse(
        &self,
        dhat: &Array3<Complex64>,
        exec: &dyn FftExecutor,
    ) -> Array3<Complex64> {
        self.f2d_impl(dhat, exec, FftOpKind::F2DAdj)
    }

    fn f2d_impl(
        &self,
        d: &Array3<Complex64>,
        exec: &dyn FftExecutor,
        kind: FftOpKind,
    ) -> Array3<Complex64> {
        assert_eq!(
            d.shape(),
            self.geometry.data_shape(),
            "F2D input shape mismatch"
        );
        let mut out = Array3::zeros(d.shape());
        let locs: Vec<ChunkLocation> = self.f2d_grid().iter().collect();
        let plane = d.shape().n1 * d.shape().n2;
        let computes: Vec<_> = locs
            .iter()
            .map(|loc| {
                let len = loc.len;
                move |input: &[Complex64]| self.f2d_chunk_compute(input, len, kind)
            })
            .collect();
        let batch = make_batch(
            &locs,
            locs.iter()
                .map(|loc| &d.as_slice()[loc.start * plane..(loc.start + loc.len) * plane]),
            &computes,
        );
        let mut outputs = split_windows(out.as_mut_slice(), locs.iter().map(|l| l.len * plane));
        exec.execute_batch_into(kind, &batch, &mut outputs);
        out
    }

    /// Exact computation of `F_2D`/`F*_2D` on one chunk of projections.
    pub fn f2d_chunk_compute(
        &self,
        input: &[Complex64],
        len: usize,
        kind: FftOpKind,
    ) -> Vec<Complex64> {
        let h = self.geometry.detector.rows;
        let w = self.geometry.detector.cols;
        assert_eq!(input.len(), len * h * w, "F2D chunk length mismatch");
        let dir = match kind {
            FftOpKind::F2D => Direction::Forward,
            FftOpKind::F2DAdj => Direction::Inverse,
            other => panic!("f2d_chunk_compute called with {other:?}"),
        };
        let mut out = input.to_vec();
        out.par_chunks_mut(h * w)
            .for_each(|plane| self.fft2_detector.process_plane(plane, dir));
        out
    }

    // ------------------------------------------------------------ composite

    /// Full forward operator `d = L u` on a real volume, using the direct
    /// executor (no memoization).
    pub fn forward(&self, u: &Array3<f64>) -> Array3<f64> {
        self.forward_with(u, &DirectExecutor)
    }

    /// Full forward operator with an explicit executor.
    pub fn forward_with(&self, u: &Array3<f64>, exec: &dyn FftExecutor) -> Array3<f64> {
        let u_c = mlr_fft::fft2d::to_complex(u);
        let u1 = self.fu1d(&u_c, exec);
        let dhat = self.fu2d(&u1, exec);
        let d = self.f2d_inverse(&dhat, exec);
        mlr_fft::fft2d::to_real(&d)
    }

    /// Full adjoint operator `u = L* d` on real projection data, using the
    /// direct executor.
    pub fn adjoint(&self, d: &Array3<f64>) -> Array3<f64> {
        self.adjoint_with(d, &DirectExecutor)
    }

    /// Full adjoint operator with an explicit executor.
    pub fn adjoint_with(&self, d: &Array3<f64>, exec: &dyn FftExecutor) -> Array3<f64> {
        let d_c = mlr_fft::fft2d::to_complex(d);
        let mut dhat = self.f2d(&d_c, exec);
        // Adjoint of the normalised inverse FFT is the forward FFT divided by
        // the plane size.
        let scale = 1.0 / (self.geometry.detector.rows * self.geometry.detector.cols) as f64;
        dhat.map_inplace(|z| *z = z.scale(scale));
        let u1 = self.fu2d_adjoint(&dhat, exec);
        let u = self.fu1d_adjoint(&u1, exec);
        mlr_fft::fft2d::to_real(&u)
    }

    /// Gathers a slab of detector rows `[start, start+len)` from
    /// `ũ1[n1, h, n2]` into the caller's arena window, producing the per-row
    /// planes consumed by `F_u2D`. Every element of `out` is overwritten.
    fn gather_rows_into(
        &self,
        u1: &Array3<Complex64>,
        start: usize,
        len: usize,
        out: &mut [Complex64],
    ) {
        let n1 = self.geometry.n1;
        let n2 = self.geometry.n2;
        assert_eq!(out.len(), len * n1 * n2, "gather window size mismatch");
        for r in 0..len {
            let row = start + r;
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    out[r * n1 * n2 + i1 * n2 + i2] = u1[(i1, row, i2)];
                }
            }
        }
    }

    /// Size in complex elements of the chunk fed to `kind` at any location
    /// with the nominal chunk size (the last chunk may be smaller). Used by
    /// the memoization sizing logic and the memory accounting in `mlr-sim`.
    pub fn chunk_elems(&self, kind: FftOpKind) -> usize {
        let g = &self.geometry;
        let cs = self.chunk_size;
        match kind {
            FftOpKind::Fu1D => cs.min(g.n1) * g.n0 * g.n2,
            FftOpKind::Fu1DAdj => cs.min(g.n1) * g.detector.rows * g.n2,
            FftOpKind::Fu2D => cs.min(g.detector.rows) * g.n1 * g.n2,
            FftOpKind::Fu2DAdj => cs.min(g.detector.rows) * g.n_angles() * g.detector.cols,
            FftOpKind::F2D | FftOpKind::F2DAdj => {
                cs.min(g.n_angles()) * g.detector.rows * g.detector.cols
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::brain_phantom;
    use mlr_math::norms::max_abs_diff_c;
    use mlr_math::rng::seeded;
    use rand::Rng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small_operator() -> LaminoOperator {
        LaminoOperator::new(LaminoGeometry::cube(8, 6, 30.0), 4)
    }

    fn random_complex_volume(shape: Shape3, seed: u64) -> Array3<Complex64> {
        let mut rng = seeded(seed);
        let data = (0..shape.len())
            .map(|_| Complex64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        Array3::from_vec(shape, data)
    }

    fn random_real_volume(shape: Shape3, seed: u64) -> Array3<f64> {
        let mut rng = seeded(seed);
        let data = (0..shape.len()).map(|_| rng.gen::<f64>() - 0.5).collect();
        Array3::from_vec(shape, data)
    }

    #[test]
    fn shapes_of_factored_stages() {
        let op = small_operator();
        let exec = DirectExecutor;
        let u = random_complex_volume(op.geometry().volume_shape(), 1);
        let u1 = op.fu1d(&u, &exec);
        assert_eq!(u1.shape(), op.geometry().u1_shape());
        let dhat = op.fu2d(&u1, &exec);
        assert_eq!(dhat.shape(), op.geometry().data_shape());
        let d = op.f2d_inverse(&dhat, &exec);
        assert_eq!(d.shape(), op.geometry().data_shape());
    }

    #[test]
    fn fu1d_adjointness() {
        let op = small_operator();
        let exec = DirectExecutor;
        let x = random_complex_volume(op.geometry().volume_shape(), 2);
        let y = random_complex_volume(op.geometry().u1_shape(), 3);
        let fx = op.fu1d(&x, &exec);
        let fty = op.fu1d_adjoint(&y, &exec);
        let lhs = fx.inner(&y);
        let rhs = x.inner(&fty);
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "{lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn fu2d_adjointness() {
        let op = small_operator();
        let exec = DirectExecutor;
        let x = random_complex_volume(op.geometry().u1_shape(), 4);
        let y = random_complex_volume(op.geometry().data_shape(), 5);
        let fx = op.fu2d(&x, &exec);
        let fty = op.fu2d_adjoint(&y, &exec);
        let lhs = fx.inner(&y);
        let rhs = x.inner(&fty);
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "{lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn full_operator_adjointness_real() {
        // <L u, d> == <u, L* d> on real vector spaces.
        let op = small_operator();
        let u = random_real_volume(op.geometry().volume_shape(), 6);
        let d = random_real_volume(op.geometry().data_shape(), 7);
        let lu = op.forward(&u);
        let ltd = op.adjoint(&d);
        let lhs = lu.dot(&d);
        let rhs = u.dot(&ltd);
        assert!(
            (lhs - rhs).abs() < 1e-7 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn f2d_roundtrip_identity() {
        let op = small_operator();
        let exec = DirectExecutor;
        let d = random_complex_volume(op.geometry().data_shape(), 8);
        let dhat = op.f2d(&d, &exec);
        let back = op.f2d_inverse(&dhat, &exec);
        assert!(max_abs_diff_c(back.as_slice(), d.as_slice()) < 1e-9);
    }

    #[test]
    fn forward_linear() {
        let op = small_operator();
        let shape = op.geometry().volume_shape();
        let a = random_real_volume(shape, 9);
        let b = random_real_volume(shape, 10);
        let mut sum = a.clone();
        sum.axpby(1.0, &b, 1.0);
        let la = op.forward(&a);
        let lb = op.forward(&b);
        let lsum = op.forward(&sum);
        let mut expected = la.clone();
        expected.axpby(1.0, &lb, 1.0);
        let diff: f64 = lsum
            .as_slice()
            .iter()
            .zip(expected.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9, "nonlinearity {diff}");
    }

    #[test]
    fn executor_sees_every_chunk() {
        struct Counting {
            count: AtomicUsize,
        }
        impl FftExecutor for Counting {
            fn execute(
                &self,
                _kind: FftOpKind,
                _loc: usize,
                input: &[Complex64],
                compute: &dyn Fn(&[Complex64]) -> Vec<Complex64>,
            ) -> Vec<Complex64> {
                self.count.fetch_add(1, Ordering::Relaxed);
                compute(input)
            }
        }
        let op = small_operator();
        let exec = Counting {
            count: AtomicUsize::new(0),
        };
        let u = random_real_volume(op.geometry().volume_shape(), 11);
        let _ = op.forward_with(&u, &exec);
        // Three stages, each with ceil(8/4)=2 chunks for Fu1D/Fu2D and
        // ceil(6/4)=2 chunks for F*2D.
        assert_eq!(exec.count.load(Ordering::Relaxed), 2 + 2 + 2);
    }

    #[test]
    fn projection_of_flat_phantom_is_nontrivial() {
        let geometry = LaminoGeometry::cube(16, 8, 35.0);
        let op = LaminoOperator::new(geometry, 8);
        let u = brain_phantom(16, 1);
        let d = op.forward(&u);
        let energy: f64 = d.as_slice().iter().map(|x| x * x).sum();
        assert!(energy > 0.0);
        assert!(d.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn chunk_elems_match_actual_chunks() {
        let op = small_operator();
        assert_eq!(op.chunk_elems(FftOpKind::Fu1D), 4 * 8 * 8);
        assert_eq!(op.chunk_elems(FftOpKind::Fu2D), 4 * 8 * 8);
        assert_eq!(op.chunk_elems(FftOpKind::Fu2DAdj), 4 * 6 * 8);
        assert_eq!(op.chunk_elems(FftOpKind::F2D), 4 * 8 * 8);
    }

    #[test]
    fn op_kind_labels_and_sets() {
        assert_eq!(FftOpKind::ALL.len(), 6);
        assert_eq!(FftOpKind::AFTER_CANCELLATION.len(), 4);
        assert!(FftOpKind::Fu2D.is_unequally_spaced());
        assert!(!FftOpKind::F2D.is_unequally_spaced());
        assert_eq!(FftOpKind::Fu2DAdj.label(), "F*u2D");
    }

    #[test]
    fn dense_order_is_the_inverse_of_index() {
        // Fixed-arity stat tables rely on this bijection; every ALL member
        // must appear, so a new kind cannot silently miss the dense order.
        for (i, kind) in FftOpKind::DENSE.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind:?}");
        }
        for kind in FftOpKind::ALL {
            assert_eq!(FftOpKind::DENSE[kind.index()], kind);
        }
    }
}
