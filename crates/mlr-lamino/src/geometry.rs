//! Laminography acquisition geometry.
//!
//! The geometry owns everything the operators need to know about the scan:
//! volume dimensions, detector dimensions, the laminography tilt angle `φ`
//! and the list of rotation angles `θ_j`. It converts those into the
//! non-uniform frequency coordinates consumed by the USFFT stages.

use mlr_math::Shape3;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Detector dimensions: `h` rows × `w` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// Number of detector rows (vertical).
    pub rows: usize,
    /// Number of detector columns (horizontal).
    pub cols: usize,
}

impl DetectorSpec {
    /// Creates a detector spec.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// A square detector.
    pub const fn square(n: usize) -> Self {
        Self { rows: n, cols: n }
    }
}

/// Full laminography scan geometry.
///
/// Axis conventions for the reconstruction volume `u` follow the paper:
/// `u ∈ R^(n1, n0, n2)` where axis 1 (`n0`) is the vertical axis the sample
/// rotates around (before tilting) and axes 0/2 (`n1`, `n2`) span the
/// horizontal plane. Projection data is `d ∈ R^(nθ, h, w)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaminoGeometry {
    /// Horizontal extent along volume axis 0 (`n1`).
    pub n1: usize,
    /// Vertical extent (`n0`).
    pub n0: usize,
    /// Horizontal extent along volume axis 2 (`n2`).
    pub n2: usize,
    /// Laminography tilt angle `φ` in radians. `φ = π/2` degenerates to
    /// classical parallel-beam CT; flat samples use smaller tilts
    /// (20°–40° is typical at synchrotron laminography instruments).
    pub tilt: f64,
    /// Rotation angles `θ_j` in radians.
    pub angles: Vec<f64>,
    /// Detector dimensions.
    pub detector: DetectorSpec,
}

impl LaminoGeometry {
    /// Creates a geometry with uniformly spaced rotation angles over
    /// `[0, π)`, a cubic volume of side `n` and an `n × n` detector.
    ///
    /// # Panics
    /// Panics when `n == 0` or `n_angles == 0`.
    pub fn cube(n: usize, n_angles: usize, tilt_degrees: f64) -> Self {
        assert!(n > 0, "volume size must be positive");
        assert!(n_angles > 0, "need at least one rotation angle");
        let angles = (0..n_angles)
            .map(|j| PI * j as f64 / n_angles as f64)
            .collect();
        Self {
            n1: n,
            n0: n,
            n2: n,
            tilt: tilt_degrees.to_radians(),
            angles,
            detector: DetectorSpec::square(n),
        }
    }

    /// Shape of the reconstruction volume `(n1, n0, n2)`.
    pub fn volume_shape(&self) -> Shape3 {
        Shape3::new(self.n1, self.n0, self.n2)
    }

    /// Shape of the projection data `(nθ, h, w)`.
    pub fn data_shape(&self) -> Shape3 {
        Shape3::new(self.angles.len(), self.detector.rows, self.detector.cols)
    }

    /// Shape of the intermediate array `ũ1 = F_u1D u`, which is
    /// `(n1, h, n2)` in the paper's notation.
    pub fn u1_shape(&self) -> Shape3 {
        Shape3::new(self.n1, self.detector.rows, self.n2)
    }

    /// Number of rotation angles `nθ`.
    pub fn n_angles(&self) -> usize {
        self.angles.len()
    }

    /// Centered detector-row frequency (cycles per detector pixel) of row `i`.
    #[inline]
    pub fn row_freq(&self, i: usize) -> f64 {
        let h = self.detector.rows;
        (i as f64 - (h / 2) as f64) / h as f64
    }

    /// Centered detector-column frequency (cycles per detector pixel) of
    /// column `i`.
    #[inline]
    pub fn col_freq(&self, i: usize) -> f64 {
        let w = self.detector.cols;
        (i as f64 - (w / 2) as f64) / w as f64
    }

    /// The vertical (axis-`n0`) frequency sampled by detector row `i`:
    /// `k_z = k_v · sin φ`. This list — one frequency per detector row —
    /// parameterises `F_u1D` and is independent of the rotation angle, which
    /// is what makes the three-stage factorisation possible.
    pub fn vertical_freqs(&self) -> Vec<f64> {
        (0..self.detector.rows)
            .map(|i| self.row_freq(i) * self.tilt.sin())
            .collect()
    }

    /// The in-plane frequency pair `(k_x, k_y)` sampled by rotation angle
    /// `θ`, detector row frequency `k_v` and detector column frequency `k_u`.
    ///
    /// Derived from the tilted Fourier-slice plane spanned by the detector
    /// axes
    /// `e_u(θ) = (-sin θ, cos θ, 0)` and
    /// `e_v(θ) = (-cos θ cos φ, -sin θ cos φ, sin φ)`.
    #[inline]
    pub fn inplane_freq(&self, theta: f64, k_v: f64, k_u: f64) -> (f64, f64) {
        let (s, c) = theta.sin_cos();
        let cos_tilt = self.tilt.cos();
        let kx = -k_v * c * cos_tilt - k_u * s;
        let ky = -k_v * s * cos_tilt + k_u * c;
        (kx, ky)
    }

    /// All in-plane frequency pairs sampled at detector row `row`, flattened
    /// over `(angle, column)` in row-major `(nθ, w)` order. This list — one
    /// per detector row — parameterises the per-row `F_u2D` transform.
    pub fn inplane_freqs_for_row(&self, row: usize) -> Vec<(f64, f64)> {
        let k_v = self.row_freq(row);
        let w = self.detector.cols;
        let mut out = Vec::with_capacity(self.angles.len() * w);
        for &theta in &self.angles {
            for col in 0..w {
                let k_u = self.col_freq(col);
                out.push(self.inplane_freq(theta, k_v, k_u));
            }
        }
        out
    }

    /// Total number of non-uniform in-plane frequency samples
    /// (`h · nθ · w`), i.e. the work `F_u2D` performs per application.
    pub fn total_inplane_samples(&self) -> usize {
        self.detector.rows * self.angles.len() * self.detector.cols
    }

    /// Memory footprint of the projection data in bytes, assuming `f64`.
    pub fn data_bytes(&self) -> usize {
        self.data_shape().len() * std::mem::size_of::<f64>()
    }

    /// Memory footprint of the volume in bytes, assuming `f64`.
    pub fn volume_bytes(&self) -> usize {
        self.volume_shape().len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::approx_eq;

    #[test]
    fn cube_geometry_shapes() {
        let g = LaminoGeometry::cube(16, 12, 30.0);
        assert_eq!(g.volume_shape(), Shape3::new(16, 16, 16));
        assert_eq!(g.data_shape(), Shape3::new(12, 16, 16));
        assert_eq!(g.u1_shape(), Shape3::new(16, 16, 16));
        assert_eq!(g.n_angles(), 12);
        assert!(approx_eq(g.tilt, 30.0f64.to_radians(), 1e-12));
    }

    #[test]
    fn angles_cover_half_turn() {
        let g = LaminoGeometry::cube(8, 4, 45.0);
        assert!(approx_eq(g.angles[0], 0.0, 1e-12));
        assert!(approx_eq(g.angles[1], PI / 4.0, 1e-12));
        assert!(g.angles.iter().all(|&a| a < PI));
    }

    #[test]
    fn row_and_col_freqs_centered() {
        let g = LaminoGeometry::cube(8, 4, 30.0);
        assert!(approx_eq(g.row_freq(4), 0.0, 1e-12));
        assert!(approx_eq(g.row_freq(0), -0.5, 1e-12));
        assert!(g.col_freq(7) > 0.0);
        assert!(g.col_freq(7) < 0.5);
    }

    #[test]
    fn vertical_freqs_scale_with_tilt() {
        let g30 = LaminoGeometry::cube(8, 4, 30.0);
        let g90 = LaminoGeometry::cube(8, 4, 90.0);
        let f30 = g30.vertical_freqs();
        let f90 = g90.vertical_freqs();
        assert_eq!(f30.len(), 8);
        for i in 0..8 {
            assert!(approx_eq(f30[i], f90[i] * 0.5, 1e-12), "row {i}");
        }
        // All vertical frequencies stay within the principal band.
        assert!(f90.iter().all(|&f| (-0.5..0.5).contains(&f)));
    }

    #[test]
    fn ct_limit_inplane_freqs() {
        // At tilt 90° the in-plane frequency no longer depends on the row.
        let g = LaminoGeometry::cube(8, 6, 90.0);
        let (kx_a, ky_a) = g.inplane_freq(0.7, 0.25, 0.1);
        let (kx_b, ky_b) = g.inplane_freq(0.7, -0.4, 0.1);
        assert!(approx_eq(kx_a, kx_b, 1e-12));
        assert!(approx_eq(ky_a, ky_b, 1e-12));
    }

    #[test]
    fn inplane_freqs_for_row_layout() {
        let g = LaminoGeometry::cube(8, 3, 35.0);
        let freqs = g.inplane_freqs_for_row(2);
        assert_eq!(freqs.len(), 3 * 8);
        // First entry corresponds to angle 0, column 0.
        let expected = g.inplane_freq(g.angles[0], g.row_freq(2), g.col_freq(0));
        assert!(approx_eq(freqs[0].0, expected.0, 1e-12));
        assert!(approx_eq(freqs[0].1, expected.1, 1e-12));
    }

    #[test]
    fn sample_counts_and_bytes() {
        let g = LaminoGeometry::cube(8, 5, 20.0);
        assert_eq!(g.total_inplane_samples(), 8 * 5 * 8);
        assert_eq!(g.volume_bytes(), 8 * 8 * 8 * 8);
        assert_eq!(g.data_bytes(), 5 * 8 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "at least one rotation angle")]
    fn zero_angles_panics() {
        let _ = LaminoGeometry::cube(8, 0, 30.0);
    }

    #[test]
    fn rotation_by_pi_negates_inplane_freqs() {
        // θ and θ+π sample mirrored in-plane frequencies (k_u -> -k_u term
        // flips, k_v term flips as well): the plane is the same up to
        // reflection, which is why half-turn coverage suffices.
        let g = LaminoGeometry::cube(8, 4, 30.0);
        let (kx, ky) = g.inplane_freq(0.3, 0.2, 0.1);
        let (kx2, ky2) = g.inplane_freq(0.3 + PI, 0.2, 0.1);
        assert!(approx_eq(kx, -kx2, 1e-12));
        assert!(approx_eq(ky, -ky2, 1e-12));
    }
}
