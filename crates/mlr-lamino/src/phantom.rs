//! Synthetic phantoms.
//!
//! The paper evaluates on a downsampled mouse-brain dataset and motivates the
//! system with integrated-circuit and printed-circuit-board inspection. Those
//! datasets are not redistributable, so the harnesses use synthetic phantoms
//! with the same gross characteristics:
//!
//! * [`brain_phantom`] — a flat slab of smooth, low-contrast ellipsoidal
//!   "tissue" features (laminography's classic biological use case),
//! * [`ic_phantom`] — a thin layered structure of high-contrast rectangular
//!   traces and vias (the IC/PCB use case from the introduction),
//! * [`smooth_random_phantom`] — band-limited random volumes used by property
//!   tests and micro-benchmarks.
//!
//! All phantoms are *flat*: the interesting structure is concentrated in a
//! thin horizontal slab, which is exactly the sample class laminography (as
//! opposed to tomography) is designed for.

use mlr_math::rng::{seeded, standard_normal};
use mlr_math::{Array3, Shape3};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which phantom family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhantomKind {
    /// Smooth ellipsoidal soft-tissue-like features in a flat slab.
    Brain,
    /// Rectangular high-contrast traces and vias in thin layers.
    Ic,
    /// Band-limited random volume.
    SmoothRandom,
}

impl PhantomKind {
    /// Generates a phantom of this kind with cubic dimension `n`.
    pub fn generate(self, n: usize, seed: u64) -> Array3<f64> {
        match self {
            PhantomKind::Brain => brain_phantom(n, seed),
            PhantomKind::Ic => ic_phantom(n, seed),
            PhantomKind::SmoothRandom => smooth_random_phantom(n, seed),
        }
    }
}

/// Fraction of the vertical extent occupied by the flat sample slab.
const SLAB_FRACTION: f64 = 0.4;

/// Generates a flat "soft tissue" phantom: an elliptical slab containing
/// `~n/4` smooth ellipsoidal blobs of varying contrast. Values lie in
/// `[0, 1]`.
///
/// The volume layout matches the paper's convention `u[n1, n0, n2]` with the
/// vertical axis in the middle.
pub fn brain_phantom(n: usize, seed: u64) -> Array3<f64> {
    assert!(n >= 4, "phantom needs at least 4 voxels per side");
    let shape = Shape3::cube(n);
    let mut vol = Array3::zeros(shape);
    let mut rng = seeded(seed);

    let slab_half = (n as f64 * SLAB_FRACTION / 2.0).max(1.0);
    let center = n as f64 / 2.0;

    // Background slab: a wide flat ellipsoid with low uniform attenuation.
    fill_ellipsoid(
        &mut vol,
        [center, center, center],
        [0.45 * n as f64, slab_half, 0.45 * n as f64],
        0.2,
    );

    // Internal blobs.
    let blobs = (n / 4).max(3);
    for _ in 0..blobs {
        let cx = center + (rng.gen::<f64>() - 0.5) * 0.6 * n as f64;
        let cz = center + (rng.gen::<f64>() - 0.5) * 0.6 * n as f64;
        let cy = center + (rng.gen::<f64>() - 0.5) * slab_half * 1.2;
        let rx = (0.03 + 0.12 * rng.gen::<f64>()) * n as f64;
        let rz = (0.03 + 0.12 * rng.gen::<f64>()) * n as f64;
        let ry = (0.2 + 0.6 * rng.gen::<f64>()) * slab_half * 0.5;
        let value = 0.15 + 0.55 * rng.gen::<f64>();
        add_ellipsoid(&mut vol, [cx, cy, cz], [rx, ry.max(0.6), rz], value);
    }

    clamp01(&mut vol);
    vol
}

/// Generates an "integrated circuit" phantom: 2–4 thin horizontal layers,
/// each carrying axis-aligned high-contrast traces plus a few bright vias
/// connecting layers. Values lie in `[0, 1]`.
pub fn ic_phantom(n: usize, seed: u64) -> Array3<f64> {
    assert!(n >= 8, "IC phantom needs at least 8 voxels per side");
    let shape = Shape3::cube(n);
    let mut vol = Array3::zeros(shape);
    let mut rng = seeded(seed ^ 0xD1E5_EC7C);

    let slab_lo = (n as f64 * (0.5 - SLAB_FRACTION / 2.0)) as usize;
    let slab_hi = (n as f64 * (0.5 + SLAB_FRACTION / 2.0)) as usize;

    // Substrate: uniform low attenuation through the slab.
    for i in 0..n {
        for y in slab_lo..slab_hi {
            for k in 0..n {
                vol[(i, y, k)] = 0.1;
            }
        }
    }

    // Metal layers with traces.
    let n_layers = 2 + (seed as usize % 3);
    let layer_gap = (slab_hi - slab_lo).max(2) / (n_layers + 1);
    for layer in 0..n_layers {
        let y = slab_lo + (layer + 1) * layer_gap;
        let y_hi = (y + (layer_gap / 3).max(1)).min(slab_hi);
        let n_traces = (n / 6).max(2);
        for _ in 0..n_traces {
            let along_x = rng.gen::<bool>();
            let pos = rng.gen_range(0..n);
            let width = rng.gen_range(1..=(n / 16).max(1));
            let lo = pos.min(n - 1);
            let hi = (lo + width).min(n);
            for yy in y..y_hi {
                if along_x {
                    for i in 0..n {
                        for k in lo..hi {
                            vol[(i, yy, k)] = 0.9;
                        }
                    }
                } else {
                    for i in lo..hi {
                        for k in 0..n {
                            vol[(i, yy, k)] = 0.9;
                        }
                    }
                }
            }
        }
    }

    // Vias: small bright columns crossing the slab.
    let n_vias = (n / 8).max(2);
    for _ in 0..n_vias {
        let i = rng.gen_range(1..n - 1);
        let k = rng.gen_range(1..n - 1);
        for y in slab_lo..slab_hi {
            vol[(i, y, k)] = 1.0;
            if i + 1 < n {
                vol[(i + 1, y, k)] = 1.0;
            }
        }
    }

    vol
}

/// Generates a band-limited random phantom: white noise smoothed by a
/// separable box filter of width `n/8`, then normalised to `[0, 1]`.
pub fn smooth_random_phantom(n: usize, seed: u64) -> Array3<f64> {
    assert!(n >= 4, "phantom needs at least 4 voxels per side");
    let shape = Shape3::cube(n);
    let mut rng = seeded(seed ^ 0x5EED_0000);
    let mut data = vec![0.0f64; shape.len()];
    for v in &mut data {
        *v = standard_normal(&mut rng);
    }
    let mut vol = Array3::from_vec(shape, data);
    let radius = (n / 8).max(1);
    for axis in 0..3 {
        vol = box_blur_axis(&vol, axis, radius);
    }
    // Normalise to [0, 1].
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in vol.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    vol.map_inplace(|v| *v = (*v - lo) / span);
    vol
}

/// Adds `value` inside the ellipsoid centered at `c` with semi-axes `r`
/// (volume-index coordinates, axes ordered `(n1, n0, n2)`).
fn add_ellipsoid(vol: &mut Array3<f64>, c: [f64; 3], r: [f64; 3], value: f64) {
    paint_ellipsoid(vol, c, r, value, false);
}

/// Sets `value` inside the ellipsoid (overwrites instead of accumulating).
fn fill_ellipsoid(vol: &mut Array3<f64>, c: [f64; 3], r: [f64; 3], value: f64) {
    paint_ellipsoid(vol, c, r, value, true);
}

fn paint_ellipsoid(vol: &mut Array3<f64>, c: [f64; 3], r: [f64; 3], value: f64, overwrite: bool) {
    let shape = vol.shape();
    let (n1, n0, n2) = shape.dims();
    for i in 0..n1 {
        let dx = (i as f64 - c[0]) / r[0].max(1e-9);
        for j in 0..n0 {
            let dy = (j as f64 - c[1]) / r[1].max(1e-9);
            for k in 0..n2 {
                let dz = (k as f64 - c[2]) / r[2].max(1e-9);
                if dx * dx + dy * dy + dz * dz <= 1.0 {
                    if overwrite {
                        vol[(i, j, k)] = value;
                    } else {
                        vol[(i, j, k)] += value;
                    }
                }
            }
        }
    }
}

fn clamp01(vol: &mut Array3<f64>) {
    vol.map_inplace(|v| *v = v.clamp(0.0, 1.0));
}

/// Simple box blur along one axis (0, 1 or 2) with the given radius; used to
/// band-limit the random phantom.
fn box_blur_axis(vol: &Array3<f64>, axis: usize, radius: usize) -> Array3<f64> {
    let shape = vol.shape();
    let (n1, n0, n2) = shape.dims();
    let mut out = Array3::zeros(shape);
    let get = |i: isize, j: isize, k: isize| -> f64 {
        let ci = i.clamp(0, n1 as isize - 1) as usize;
        let cj = j.clamp(0, n0 as isize - 1) as usize;
        let ck = k.clamp(0, n2 as isize - 1) as usize;
        vol[(ci, cj, ck)]
    };
    let r = radius as isize;
    let norm = 1.0 / (2 * r + 1) as f64;
    for i in 0..n1 as isize {
        for j in 0..n0 as isize {
            for k in 0..n2 as isize {
                let mut acc = 0.0;
                for d in -r..=r {
                    acc += match axis {
                        0 => get(i + d, j, k),
                        1 => get(i, j + d, k),
                        _ => get(i, j, k + d),
                    };
                }
                out[(i as usize, j as usize, k as usize)] = acc * norm;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brain_phantom_is_flat_and_bounded() {
        let n = 32;
        let vol = brain_phantom(n, 7);
        assert_eq!(vol.shape(), Shape3::cube(n));
        assert!(vol.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Mass is concentrated in the central vertical slab.
        let mut slab_mass = 0.0;
        let mut outside_mass = 0.0;
        let lo = (n as f64 * 0.25) as usize;
        let hi = (n as f64 * 0.75) as usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let v = vol[(i, j, k)];
                    if (lo..hi).contains(&j) {
                        slab_mass += v;
                    } else {
                        outside_mass += v;
                    }
                }
            }
        }
        assert!(
            slab_mass > 10.0 * outside_mass.max(1e-9),
            "phantom is not flat"
        );
    }

    #[test]
    fn brain_phantom_deterministic_per_seed() {
        let a = brain_phantom(16, 42);
        let b = brain_phantom(16, 42);
        let c = brain_phantom(16, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ic_phantom_has_high_contrast_structure() {
        let vol = ic_phantom(32, 3);
        let max = vol.as_slice().iter().cloned().fold(0.0, f64::max);
        let nonzero = vol.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(max >= 0.9);
        assert!(nonzero > 0);
        // Top and bottom of the volume are empty (flat sample).
        for i in 0..32 {
            for k in 0..32 {
                assert_eq!(vol[(i, 0, k)], 0.0);
                assert_eq!(vol[(i, 31, k)], 0.0);
            }
        }
    }

    #[test]
    fn smooth_random_phantom_normalised_and_smooth() {
        let n = 16;
        let vol = smooth_random_phantom(n, 5);
        let lo = vol.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vol
            .as_slice()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(lo >= 0.0 && hi <= 1.0 + 1e-12);
        assert!(hi - lo > 0.5, "should use most of the dynamic range");
        // Smoothness: neighbouring voxels differ much less than the range.
        let mut max_step: f64 = 0.0;
        for i in 0..n - 1 {
            for j in 0..n {
                for k in 0..n {
                    max_step = max_step.max((vol[(i + 1, j, k)] - vol[(i, j, k)]).abs());
                }
            }
        }
        assert!(max_step < 0.5, "max neighbour step {max_step}");
    }

    #[test]
    fn phantom_kind_dispatch() {
        for kind in [
            PhantomKind::Brain,
            PhantomKind::Ic,
            PhantomKind::SmoothRandom,
        ] {
            let v = kind.generate(16, 9);
            assert_eq!(v.shape(), Shape3::cube(16));
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_phantom_panics() {
        let _ = brain_phantom(2, 1);
    }
}
