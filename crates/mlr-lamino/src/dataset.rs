//! Dataset simulation: phantom → projections.
//!
//! The paper's inputs are measured projection stacks (`d ∈ R^(nθ, h, w)`).
//! Here a dataset is produced by applying the forward operator to a phantom
//! and optionally adding detector noise, which exercises exactly the same
//! reconstruction code path while being generatable at any scale.

use crate::geometry::LaminoGeometry;
use crate::operators::LaminoOperator;
use crate::phantom::PhantomKind;
use mlr_math::rng::{seeded, standard_normal};
use mlr_math::Array3;
use serde::{Deserialize, Serialize};

/// Noise model applied to simulated projections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProjectionNoise {
    /// Noise-free projections.
    None,
    /// Additive white Gaussian noise with the given standard deviation,
    /// expressed as a fraction of the projections' RMS value.
    Gaussian {
        /// Relative noise level (e.g. 0.01 = 1 % of signal RMS).
        relative_sigma: f64,
    },
}

/// A synthetic laminography dataset: geometry, ground-truth phantom and the
/// (possibly noisy) projections produced by the forward operator.
#[derive(Debug, Clone)]
pub struct LaminoDataset {
    /// Acquisition geometry.
    pub geometry: LaminoGeometry,
    /// Ground-truth volume the projections were generated from.
    pub ground_truth: Array3<f64>,
    /// Simulated projection data `d`.
    pub projections: Array3<f64>,
    /// The phantom family used.
    pub phantom: PhantomKind,
    /// Noise model applied.
    pub noise: ProjectionNoise,
}

impl LaminoDataset {
    /// Simulates a dataset: generates the phantom, applies the forward
    /// operator and adds noise.
    pub fn simulate(
        geometry: LaminoGeometry,
        phantom: PhantomKind,
        noise: ProjectionNoise,
        seed: u64,
    ) -> Self {
        let n = geometry.n0.max(geometry.n1).max(geometry.n2);
        let ground_truth = phantom.generate(n, seed);
        assert_eq!(
            ground_truth.shape(),
            geometry.volume_shape(),
            "dataset simulation currently requires a cubic geometry"
        );
        let operator = LaminoOperator::new(geometry.clone(), geometry.n1.clamp(1, 16));
        let mut projections = operator.forward(&ground_truth);
        if let ProjectionNoise::Gaussian { relative_sigma } = noise {
            let rms = (projections.as_slice().iter().map(|x| x * x).sum::<f64>()
                / projections.len() as f64)
                .sqrt();
            let sigma = relative_sigma * rms;
            let mut rng = seeded(seed ^ 0x0A15E);
            for v in projections.as_mut_slice() {
                *v += sigma * standard_normal(&mut rng);
            }
        }
        Self {
            geometry,
            ground_truth,
            projections,
            phantom,
            noise,
        }
    }

    /// Convenience constructor for a cubic brain-phantom dataset.
    pub fn brain_cube(n: usize, n_angles: usize, tilt_degrees: f64, seed: u64) -> Self {
        Self::simulate(
            LaminoGeometry::cube(n, n_angles, tilt_degrees),
            PhantomKind::Brain,
            ProjectionNoise::None,
            seed,
        )
    }

    /// Input-data size in bytes (the `11.4 GB` style number the paper quotes
    /// for its inputs, here at the simulated scale).
    pub fn input_bytes(&self) -> usize {
        self.geometry.data_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_produces_consistent_shapes() {
        let ds = LaminoDataset::brain_cube(16, 8, 30.0, 3);
        assert_eq!(ds.ground_truth.shape(), ds.geometry.volume_shape());
        assert_eq!(ds.projections.shape(), ds.geometry.data_shape());
        assert!(ds.projections.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(ds.input_bytes(), 8 * 16 * 16 * 8);
    }

    #[test]
    fn noise_changes_projections() {
        let g = LaminoGeometry::cube(16, 6, 30.0);
        let clean =
            LaminoDataset::simulate(g.clone(), PhantomKind::Brain, ProjectionNoise::None, 4);
        let noisy = LaminoDataset::simulate(
            g,
            PhantomKind::Brain,
            ProjectionNoise::Gaussian {
                relative_sigma: 0.05,
            },
            4,
        );
        assert_eq!(clean.ground_truth, noisy.ground_truth);
        let diff: f64 = clean
            .projections
            .as_slice()
            .iter()
            .zip(noisy.projections.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = LaminoDataset::brain_cube(16, 6, 30.0, 11);
        let b = LaminoDataset::brain_cube(16, 6, 30.0, 11);
        assert_eq!(a.projections, b.projections);
    }
}
