//! The end-to-end mLR pipeline.

use crate::config::MlrConfig;
use crate::report::{MlrReport, PaperScaleProjection};
use mlr_lamino::{LaminoDataset, LaminoGeometry, LaminoOperator};
use mlr_memo::{
    CapacityBudget, ConcurrencyGovernor, EncoderConfig, EvictionPolicyKind, JobId, MemoDbConfig,
    MemoStore, MemoizedExecutor, ShardedMemoDb,
};
use mlr_sim::workload::{AdmmWorkload, ProblemSize};
use mlr_sim::CostModel;
use mlr_solver::{AdmmResult, AdmmSolver, CancelToken};
use mlr_telemetry::Telemetry;
use std::sync::Arc;

/// The end-to-end pipeline: dataset simulation, exact reconstruction,
/// memoized reconstruction, comparison and paper-scale projection.
pub struct MlrPipeline {
    config: MlrConfig,
    dataset: LaminoDataset,
    operator: LaminoOperator,
}

impl MlrPipeline {
    /// Builds the pipeline: simulates the dataset and constructs the
    /// laminography operator.
    pub fn new(config: MlrConfig) -> Self {
        let p = &config.problem;
        let geometry = LaminoGeometry::cube(p.n, p.n_angles, p.tilt_degrees);
        let dataset = LaminoDataset::simulate(geometry.clone(), p.phantom, p.noise, p.seed);
        let operator = LaminoOperator::new(geometry, config.chunk_size);
        Self {
            config,
            dataset,
            operator,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MlrConfig {
        &self.config
    }

    /// The simulated dataset (phantom + projections).
    pub fn dataset(&self) -> &LaminoDataset {
        &self.dataset
    }

    /// The laminography operator.
    pub fn operator(&self) -> &LaminoOperator {
        &self.operator
    }

    /// The encoder configuration used for the memoization key encoder,
    /// scaled down for small problems so tests stay fast. Public so shared
    /// stores (e.g. the runtime's `ShardedMemoDb`) can be built with the
    /// exact key space this pipeline would use on its own.
    pub fn encoder_config(&self) -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 4,
            conv2_filters: 8,
            embedding_dim: 32,
            learning_rate: 1e-3,
        }
    }

    /// Builds a sharded memo store compatible with this pipeline (same τ,
    /// same encoder configuration and seed, and the capacity budget /
    /// eviction policy carried in `config.memo`), suitable for sharing
    /// across several pipelines/jobs.
    pub fn build_shared_store(&self, shards: usize) -> Arc<ShardedMemoDb> {
        self.build_shared_store_with(shards, self.config.memo.budget, self.config.memo.eviction)
    }

    /// Builds a sharded memo store with an explicit capacity budget and
    /// eviction policy, overriding whatever the pipeline configuration
    /// carries — the entry point the budget-sweep harnesses use.
    pub fn build_shared_store_with(
        &self,
        shards: usize,
        budget: CapacityBudget,
        eviction: EvictionPolicyKind,
    ) -> Arc<ShardedMemoDb> {
        let db_config = MemoDbConfig {
            tau: self.config.memo.tau,
            budget,
            eviction,
            ..Default::default()
        };
        Arc::new(ShardedMemoDb::with_shards(
            db_config,
            self.encoder_config(),
            self.config.problem.seed,
            shards,
        ))
    }

    /// Runs the exact (non-memoized) ADMM-FFT reconstruction.
    pub fn run_exact(&self) -> AdmmResult {
        let solver = AdmmSolver::new(self.config.admm);
        solver.run(&self.operator, &self.dataset.projections)
    }

    /// Runs the memoized (mLR) reconstruction; returns the result and the
    /// executor holding all memoization statistics. Chunk-level parallelism
    /// follows `config.intra_job_threads` (no governor: a standalone run
    /// owns the whole machine).
    pub fn run_memoized(&self) -> (AdmmResult, MemoizedExecutor) {
        let executor = MemoizedExecutor::new(
            self.config.memo,
            self.encoder_config(),
            self.config.problem.seed,
        )
        .with_parallelism(self.config.intra_job_threads, None);
        let solver = AdmmSolver::new(self.config.admm);
        let result = solver.run_with(&self.operator, &self.dataset.projections, &executor);
        (result, executor)
    }

    /// [`MlrPipeline::run_memoized`] with the executor's
    /// schedule-perturbation checker armed: parallel-phase workers stagger
    /// their block start/completion orderings deterministically from `seed`.
    /// The result must be bit-identical to the unperturbed run for every
    /// seed — the determinism harness sweeps seeds × thread counts over
    /// this entry point.
    pub fn run_memoized_perturbed(&self, seed: u64) -> (AdmmResult, MemoizedExecutor) {
        let executor = MemoizedExecutor::new(
            self.config.memo,
            self.encoder_config(),
            self.config.problem.seed,
        )
        .with_parallelism(self.config.intra_job_threads, None)
        .with_schedule_perturbation(seed);
        let solver = AdmmSolver::new(self.config.admm);
        let result = solver.run_with(&self.operator, &self.dataset.projections, &executor);
        (result, executor)
    }

    /// [`MlrPipeline::run_memoized_with_store`] with the executor's
    /// schedule-perturbation checker armed: adversarial block orderings over
    /// an injected store. The determinism harness drives this with a
    /// fault-armed `DistributedMemoDb` to pin that forced fault-misses stay
    /// bit-identical across thread counts and completion orders too.
    pub fn run_memoized_perturbed_with_store(
        &self,
        store: Arc<dyn MemoStore>,
        job: JobId,
        seed: u64,
    ) -> (AdmmResult, MemoizedExecutor) {
        let executor = MemoizedExecutor::with_store(self.config.memo, store, job)
            .with_parallelism(self.config.intra_job_threads, None)
            .with_schedule_perturbation(seed);
        let solver = AdmmSolver::new(self.config.admm);
        let result = solver.run_with(&self.operator, &self.dataset.projections, &executor);
        (result, executor)
    }

    /// Runs the memoized reconstruction against an injected (typically
    /// shared) memo store on behalf of job `job`. With a store shared
    /// between pipelines, FFT results memoized by one reconstruction are
    /// reused by the others — the multi-tenant mode the runtime builds on.
    pub fn run_memoized_with_store(
        &self,
        store: Arc<dyn MemoStore>,
        job: JobId,
    ) -> (AdmmResult, MemoizedExecutor) {
        self.run_memoized_governed(store, job, None)
    }

    /// Runs the memoized reconstruction over a shared store *and* a shared
    /// concurrency governor: the multi-tenant entry point the runtime's
    /// workers use, where every chunk thread beyond the job's first must be
    /// leased from the governor so concurrent jobs never oversubscribe the
    /// machine. The governor only shapes wall time — the reconstruction is
    /// bit-identical whatever it grants.
    pub fn run_memoized_governed(
        &self,
        store: Arc<dyn MemoStore>,
        job: JobId,
        governor: Option<Arc<ConcurrencyGovernor>>,
    ) -> (AdmmResult, MemoizedExecutor) {
        self.run_memoized_serving(store, job, governor, &CancelToken::new())
    }

    /// The serving-front-end entry point: a governed multi-tenant run that is
    /// additionally *cancellable* — the ADMM driver polls `cancel` at every
    /// iteration boundary, so a cancelled (or deadline-expired) job stops
    /// early, flushes the coalescer through the executor's `finish` hook, and
    /// keeps the memo entries it already published available to every other
    /// tenant of the shared store. A token that never fires leaves the run
    /// bit-identical to [`MlrPipeline::run_memoized_governed`].
    pub fn run_memoized_serving(
        &self,
        store: Arc<dyn MemoStore>,
        job: JobId,
        governor: Option<Arc<ConcurrencyGovernor>>,
        cancel: &CancelToken,
    ) -> (AdmmResult, MemoizedExecutor) {
        self.run_memoized_observed(store, job, governor, cancel, Telemetry::disabled())
    }

    /// [`MlrPipeline::run_memoized_serving`] with a telemetry recorder
    /// attached to the executor: per-iteration and per-operator lifecycle
    /// spans, chunk counters, and hit-path stage histograms flow into
    /// `telemetry`'s shared registry. Passing [`Telemetry::disabled`] makes
    /// this identical (including allocation behaviour) to the plain serving
    /// entry point; telemetry records only wall-clock dimensions, so the
    /// reconstruction stays bit-identical either way.
    pub fn run_memoized_observed(
        &self,
        store: Arc<dyn MemoStore>,
        job: JobId,
        governor: Option<Arc<ConcurrencyGovernor>>,
        cancel: &CancelToken,
        telemetry: Telemetry,
    ) -> (AdmmResult, MemoizedExecutor) {
        let executor = MemoizedExecutor::with_store(self.config.memo, store, job)
            .with_parallelism(self.config.intra_job_threads, governor)
            .with_telemetry(telemetry);
        let solver = AdmmSolver::new(self.config.admm);
        let result =
            solver.run_with_cancel(&self.operator, &self.dataset.projections, &executor, cancel);
        (result, executor)
    }

    /// Runs both pipelines and assembles the comparison report.
    pub fn run_comparison(&self) -> MlrReport {
        let exact = self.run_exact();
        let (memo, executor) = self.run_memoized();

        let accuracy =
            mlr_solver::accuracy_vs_reference(&exact.reconstruction, &memo.reconstruction);
        let stats = executor.stats();
        let total = stats.total();
        let exact_compute_seconds: f64 =
            exact.history.records().iter().map(|r| r.lsp_seconds).sum();
        let memo_compute_seconds: f64 = memo.history.records().iter().map(|r| r.lsp_seconds).sum();

        MlrReport {
            accuracy,
            avoided_fraction: total.avoided_fraction(),
            case_distribution: stats.case_distribution(),
            exact_compute_seconds,
            memo_compute_seconds,
            exact_loss: exact.history.loss_series(),
            memo_loss: memo.history.loss_series(),
            memo_stats: stats,
            cache_hit_rate: executor.cache_stats().hit_rate(),
            db_bytes: executor.db_value_bytes(),
        }
    }

    /// Projects the measured memoization behaviour onto one of the paper's
    /// problem sizes using the analytic cost model: the original ADMM-FFT
    /// runs Algorithm 1 with no memoization; mLR runs Algorithm 2 with the
    /// measured case distribution deciding how many USFFT stages are replaced
    /// by database or cache retrievals.
    pub fn project_to_paper_scale(
        &self,
        n: usize,
        case_distribution: (f64, f64, f64),
    ) -> PaperScaleProjection {
        let size = ProblemSize::cube(n, 16);
        let workload = AdmmWorkload::new(size);
        let cost = CostModel::polaris(1);
        let (_f_fail, f_db, f_cache) = case_distribution;
        let hit = (f_db + f_cache).clamp(0.0, 1.0);

        // Original: Algorithm 1 LSP, nothing memoized.
        let original_iter = workload.iteration_time(&cost, false);

        // mLR: Algorithm 2 LSP where a `hit` fraction of every USFFT stage is
        // replaced by retrieval (network transfer of the value for DB hits,
        // DRAM copy for cache hits) plus key encoding for every invocation.
        let xfer = cost.pcie_time(workload.stage_transfer_bytes());
        let stage_times = [
            workload.fu1d_time(&cost),
            workload.fu2d_time(&cost),
            workload.fu2d_time(&cost),
            workload.fu1d_time(&cost),
        ];
        let value_bytes = 16.0 * size.voxels() as f64;
        let db_retrieval = cost.network_bulk_time(value_bytes)
            + cost.ann_query_time(1_000_000, 60, size.num_chunks(), 8);
        let cache_retrieval = cost.dram_copy_time(value_bytes);
        let encode = cost.cnn_encode_time(size.voxels() as usize);
        let hit_retrieval = if hit > 0.0 {
            (f_db * db_retrieval + f_cache * cache_retrieval) / hit
        } else {
            0.0
        };
        let lsp_inner: f64 = stage_times
            .iter()
            .map(|&compute| {
                let exact_path = compute.max(xfer);
                (1.0 - hit) * exact_path + hit * hit_retrieval + encode
            })
            .sum::<f64>()
            + cost.gpu_elementwise_time(size.data_elems() as usize)
            + workload.cg_update_time(&cost);
        let mlr_iter = lsp_inner * workload.n_inner as f64
            + workload.rsp_time(&cost)
            + workload.lambda_update_time(&cost)
            + workload.penalty_update_time(&cost);

        PaperScaleProjection {
            n,
            original_seconds: original_iter,
            mlr_seconds: mlr_iter,
            normalized_time: mlr_iter / original_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlrConfig;

    fn tiny_pipeline(tau: f64) -> MlrPipeline {
        MlrPipeline::new(MlrConfig::quick(12, 8).with_tau(tau).with_iterations(6))
    }

    #[test]
    fn comparison_report_is_consistent() {
        let p = tiny_pipeline(0.92);
        let report = p.run_comparison();
        // Memoization must not destroy the reconstruction.
        assert!(report.accuracy > 0.8, "accuracy {}", report.accuracy);
        assert!(report.accuracy <= 1.0 + 1e-12);
        // Something was memoized across 6 iterations of a converging solver.
        assert!(report.avoided_fraction > 0.0, "nothing was reused");
        let (f, d, c) = report.case_distribution;
        assert!((f + d + c - 1.0).abs() < 1e-9);
        assert!(report.db_bytes > 0);
        // Loss curves recorded for both runs.
        assert_eq!(report.exact_loss.len(), 6);
        assert_eq!(report.memo_loss.len(), 6);
    }

    #[test]
    fn disabling_memoization_gives_identical_reconstruction() {
        let p = MlrPipeline::new(
            MlrConfig::quick(12, 8)
                .with_iterations(4)
                .with_memoization(false),
        );
        let exact = p.run_exact();
        let (memo, executor) = p.run_memoized();
        let err = mlr_math::norms::relative_error(&exact.reconstruction, &memo.reconstruction);
        assert!(
            err < 1e-12,
            "disabled memoization must be bit-equivalent, err {err}"
        );
        assert_eq!(executor.stats().total().db_hits, 0);
    }

    #[test]
    fn injected_sharded_store_matches_private_database() {
        // The runtime's determinism contract: one job over a shared sharded
        // store reconstructs bit-identically to the classic private-database
        // path.
        let p = tiny_pipeline(0.92);
        let (private, _) = p.run_memoized();
        let store = p.build_shared_store(8);
        let (shared, executor) = p.run_memoized_with_store(store, 7);
        let err = mlr_math::norms::relative_error(&private.reconstruction, &shared.reconstruction);
        assert!(
            err < 1e-12,
            "sharded store changed the reconstruction: {err}"
        );
        assert_eq!(executor.job(), 7);
        assert!(executor.store().stats().queries > 0);
    }

    #[test]
    fn paper_scale_projection_shows_improvement() {
        let p = tiny_pipeline(0.92);
        // Use the paper's reported case distribution directly.
        let proj_1k = p.project_to_paper_scale(1024, (0.53, 0.19, 0.28));
        let proj_2k = p.project_to_paper_scale(2048, (0.53, 0.19, 0.28));
        assert!(proj_1k.normalized_time < 1.0);
        assert!(proj_1k.improvement_percent() > 10.0);
        assert!(proj_2k.normalized_time < 1.0);
        // No memoization hits → little to no improvement from memoization
        // (only cancellation/fusion remains).
        let proj_none = p.project_to_paper_scale(1024, (1.0, 0.0, 0.0));
        assert!(proj_none.normalized_time > proj_1k.normalized_time);
    }
}
