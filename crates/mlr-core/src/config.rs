//! Pipeline configuration.

use mlr_lamino::{PhantomKind, ProjectionNoise};
use mlr_memo::{CacheKind, CapacityBudget, EvictionPolicyKind, MemoConfig};
use mlr_solver::{AdmmConfig, LspVariant};
use serde::{Deserialize, Serialize};

/// Experiment scale selector used by the harness binaries: `Tiny` and
/// `Small` run the real numerics; `Paper` additionally projects performance
/// onto the paper's 1K³–2K³ problems with the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// 16³–24³ problems, seconds to run; used by tests.
    Tiny,
    /// 32³–48³ problems, the default for the harnesses.
    Small,
    /// Cost-model projection at the paper's sizes.
    Paper,
}

impl Scale {
    /// Parses `tiny` / `small` / `paper` (case-insensitive); defaults to
    /// `Small` for unknown strings.
    pub fn parse(s: &str) -> Self {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "paper" => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// The cubic volume size the real numerics run at for this scale.
    pub fn volume_size(&self) -> usize {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 32,
            Scale::Paper => 32,
        }
    }
}

/// The synthetic acquisition this pipeline reconstructs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Cubic volume dimension.
    pub n: usize,
    /// Number of projection angles.
    pub n_angles: usize,
    /// Laminography tilt angle in degrees.
    pub tilt_degrees: f64,
    /// Phantom family.
    pub phantom: PhantomKind,
    /// Detector noise.
    pub noise: ProjectionNoise,
    /// RNG seed for the phantom and noise.
    pub seed: u64,
}

impl ProblemSpec {
    /// A cubic brain-phantom problem.
    pub fn brain(n: usize, n_angles: usize) -> Self {
        Self {
            n,
            n_angles,
            tilt_degrees: 35.0,
            phantom: PhantomKind::Brain,
            noise: ProjectionNoise::None,
            seed: 7,
        }
    }

    /// A cubic IC-phantom problem (the high-contrast inspection use case).
    pub fn ic(n: usize, n_angles: usize) -> Self {
        Self {
            n,
            n_angles,
            tilt_degrees: 30.0,
            phantom: PhantomKind::Ic,
            noise: ProjectionNoise::None,
            seed: 11,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlrConfig {
    /// The problem being reconstructed.
    pub problem: ProblemSpec,
    /// ADMM solver parameters.
    pub admm: AdmmConfig,
    /// Memoization parameters.
    pub memo: MemoConfig,
    /// Chunk size (slabs per chunk) for the FFT stages.
    pub chunk_size: usize,
    /// Chunk-level threads used *inside* this job's FFT stages (1 =
    /// sequential, the default). The memoized executor's two-phase schedule
    /// keeps the reconstruction bit-identical for every value; through the
    /// runtime, threads beyond the first are leased from the global
    /// concurrency governor so jobs × threads never oversubscribe the pool.
    pub intra_job_threads: usize,
}

impl MlrConfig {
    /// A quick configuration: brain phantom of size `n`, `n_angles`
    /// projections, 10 ADMM iterations, memoization on with τ = 0.92.
    pub fn quick(n: usize, n_angles: usize) -> Self {
        Self {
            problem: ProblemSpec::brain(n, n_angles),
            admm: AdmmConfig {
                outer_iterations: 10,
                n_inner: 3,
                alpha: 1e-4,
                rho: 0.5,
                initial_step: 0.05,
                variant: LspVariant::Cancelled,
                nonnegativity: true,
                adaptive_rho: true,
            },
            memo: MemoConfig {
                tau: 0.92,
                ..Default::default()
            },
            chunk_size: 8,
            intra_job_threads: 1,
        }
    }

    /// Same as [`Self::quick`] but with the paper's default threshold
    /// replaced by `tau`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.memo.tau = tau;
        self
    }

    /// Switches the memoization cache organisation.
    pub fn with_cache(mut self, kind: CacheKind) -> Self {
        self.memo.cache_kind = kind;
        self
    }

    /// Sets the number of outer ADMM iterations.
    pub fn with_iterations(mut self, outer: usize) -> Self {
        self.admm.outer_iterations = outer;
        self
    }

    /// Enables or disables memoization entirely.
    pub fn with_memoization(mut self, enabled: bool) -> Self {
        self.memo.enabled = enabled;
        self
    }

    /// Sets the chunk-level thread count for this job's FFT stages
    /// (clamped to ≥ 1). Determinism contract: the reconstruction is
    /// bit-identical for every value.
    pub fn with_intra_job_threads(mut self, threads: usize) -> Self {
        self.intra_job_threads = threads.max(1);
        self
    }

    /// Caps the memoization store with `budget`, enforced by `eviction`.
    /// The budget flows into the private database of `run_memoized`, into
    /// stores built by `MlrPipeline::build_shared_store`, and into runtimes
    /// configured with `RuntimeConfig::matching`.
    pub fn with_memo_budget(
        mut self,
        budget: CapacityBudget,
        eviction: EvictionPolicyKind,
    ) -> Self {
        self.memo.budget = budget;
        self.memo.eviction = eviction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Scale::Tiny);
        assert_eq!(Scale::parse("PAPER"), Scale::Paper);
        assert_eq!(Scale::parse("anything"), Scale::Small);
        assert_eq!(Scale::Tiny.volume_size(), 16);
    }

    #[test]
    fn quick_config_builders() {
        let c = MlrConfig::quick(16, 8)
            .with_tau(0.9)
            .with_iterations(5)
            .with_memoization(false);
        assert_eq!(c.problem.n, 16);
        assert_eq!(c.memo.tau, 0.9);
        assert_eq!(c.admm.outer_iterations, 5);
        assert!(!c.memo.enabled);
        let ic = ProblemSpec::ic(32, 16);
        assert_eq!(ic.phantom, PhantomKind::Ic);
    }

    #[test]
    fn memo_budget_builder_flows_into_memo_config() {
        let c = MlrConfig::quick(16, 8)
            .with_memo_budget(CapacityBudget::bytes(1 << 20), EvictionPolicyKind::Lru);
        assert_eq!(c.memo.budget.max_bytes, Some(1 << 20));
        assert_eq!(c.memo.eviction, EvictionPolicyKind::Lru);
        assert!(c.memo.budget.is_bounded());
    }

    #[test]
    fn intra_job_threads_builder_clamps_to_one() {
        let c = MlrConfig::quick(16, 8);
        assert_eq!(c.intra_job_threads, 1);
        assert_eq!(c.with_intra_job_threads(4).intra_job_threads, 4);
        assert_eq!(c.with_intra_job_threads(0).intra_job_threads, 1);
    }
}
