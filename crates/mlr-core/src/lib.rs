//! # mlr-core
//!
//! The public face of the mLR reproduction: one configuration type, one
//! pipeline type, one report type.
//!
//! ```no_run
//! use mlr_core::{MlrConfig, MlrPipeline};
//!
//! // A small brain-phantom problem with memoization at τ = 0.92.
//! let config = MlrConfig::quick(24, 12);
//! let pipeline = MlrPipeline::new(config);
//! let report = pipeline.run_comparison();
//! println!("accuracy vs exact ADMM-FFT: {:.3}", report.accuracy);
//! println!("FFT work avoided: {:.1} %", 100.0 * report.avoided_fraction);
//! ```
//!
//! The pipeline runs the *numerics* for real (phantom → projections → exact
//! and memoized ADMM-TV reconstructions) and, on request, projects the
//! measured behaviour onto paper-scale problems (1K³–2K³) using the hardware
//! cost model in `mlr-sim`.

pub mod config;
pub mod pipeline;
pub mod report;

pub use config::{MlrConfig, ProblemSpec, Scale};
pub use pipeline::MlrPipeline;
pub use report::{MlrReport, PaperScaleProjection};
// Re-exported so serving layers over the pipeline (e.g. `mlr-runtime`) can
// drive cooperative cancellation without depending on the solver crate.
pub use mlr_solver::{CancelToken, StopCause};
