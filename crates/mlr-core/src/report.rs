//! Experiment reports.

use mlr_memo::MemoStats;
use serde::{Deserialize, Serialize};

/// Projection of the measured behaviour onto one of the paper's problem
/// sizes using the hardware cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperScaleProjection {
    /// Cubic problem dimension (1024, 1536, 2048).
    pub n: usize,
    /// Simulated seconds per run for the original ADMM-FFT.
    pub original_seconds: f64,
    /// Simulated seconds per run for mLR (memoization + cancellation/fusion).
    pub mlr_seconds: f64,
    /// `mlr_seconds / original_seconds` (Figure 8's normalized time).
    pub normalized_time: f64,
}

impl PaperScaleProjection {
    /// Performance improvement as a percentage (the paper reports 34.6–65.4 %).
    pub fn improvement_percent(&self) -> f64 {
        100.0 * (1.0 - self.normalized_time)
    }
}

/// Result of running the exact and memoized pipelines on the same problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlrReport {
    /// Reconstruction accuracy of the memoized run against the exact run
    /// (paper Eq. 5).
    pub accuracy: f64,
    /// Fraction of memoizable FFT invocations whose computation was avoided.
    pub avoided_fraction: f64,
    /// Distribution of the three memoization cases (failed, db hit, cache
    /// hit) over all memoizable invocations.
    pub case_distribution: (f64, f64, f64),
    /// Wall-clock seconds of the exact run's FFT computations.
    pub exact_compute_seconds: f64,
    /// Wall-clock seconds of the memoized run's FFT computations.
    pub memo_compute_seconds: f64,
    /// Loss curve of the exact run.
    pub exact_loss: Vec<(usize, f64)>,
    /// Loss curve of the memoized run.
    pub memo_loss: Vec<(usize, f64)>,
    /// Full memoization statistics of the memoized run.
    pub memo_stats: MemoStats,
    /// Hit rate of the compute-node memoization cache.
    pub cache_hit_rate: f64,
    /// Final size of the memoization value database in bytes.
    pub db_bytes: u64,
}

impl MlrReport {
    /// Fraction of FFT compute wall-clock saved by memoization in the actual
    /// (laptop-scale) runs.
    pub fn compute_saving(&self) -> f64 {
        if self.exact_compute_seconds <= 0.0 {
            return 0.0;
        }
        (1.0 - self.memo_compute_seconds / self.exact_compute_seconds).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_improvement() {
        let p = PaperScaleProjection {
            n: 1024,
            original_seconds: 68.0,
            mlr_seconds: 44.5,
            normalized_time: 44.5 / 68.0,
        };
        assert!((p.improvement_percent() - 34.6).abs() < 1.0);
    }

    #[test]
    fn compute_saving_guards_zero() {
        let r = MlrReport {
            accuracy: 1.0,
            avoided_fraction: 0.0,
            case_distribution: (0.0, 0.0, 0.0),
            exact_compute_seconds: 0.0,
            memo_compute_seconds: 0.0,
            exact_loss: vec![],
            memo_loss: vec![],
            memo_stats: MemoStats::new(),
            cache_hit_rate: 0.0,
            db_bytes: 0,
        };
        assert_eq!(r.compute_saving(), 0.0);
    }
}
