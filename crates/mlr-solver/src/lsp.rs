//! The laminography subproblem (LSP).
//!
//! The LSP refines the reconstruction `u` against the objective
//!
//! ```text
//! f(u) = ½‖L u − d‖₂² + ρ/2 ‖∇u − g‖₂²,       g = ψ − λ/ρ
//! ```
//!
//! with a small number of CG-style iterations driven by the gradient
//!
//! ```text
//! G = L*(L u − d) + ρ ∇ᵀ(∇u − g).
//! ```
//!
//! Two equivalent formulations of the data-term gradient are provided:
//!
//! * [`LspVariant::Original`] (the paper's Algorithm 1): the forward pass
//!   ends with `F*_2D` back to detector space and the adjoint pass starts
//!   with `F_2D` — six FFT stages per inner iteration.
//! * [`LspVariant::Cancelled`] (Algorithm 2): the measured data is mapped to
//!   the frequency domain once (`d̂ = F_2D d`), the `F*_2D`/`F_2D` pair
//!   cancels, and the frequency-domain subtraction `d̂' − d̂` is fused with
//!   the neighbouring USFFT stage — four FFT stages per inner iteration.
//!
//! Both produce identical gradients (up to floating-point rounding); the unit
//! tests check this, which is the correctness claim behind the paper's
//! operation cancellation.

use crate::tv::{divergence, gradient, VectorField};
use mlr_fft::fft2d::{to_complex, to_real};
use mlr_lamino::{FftExecutor, LaminoOperator};
use mlr_math::{Array3, Complex64};
use serde::{Deserialize, Serialize};

/// Which LSP formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LspVariant {
    /// Algorithm 1: six FFT stages per inner iteration.
    Original,
    /// Algorithm 2: operation cancellation + fusion, four FFT stages.
    Cancelled,
}

/// Precomputed frequency-domain data for the cancelled variant
/// (`d̂ = F_2D d`, computed once per ADMM run).
pub struct FrequencyData {
    dhat: Array3<Complex64>,
    plane_scale: f64,
}

impl FrequencyData {
    /// Maps the measured projections to the frequency domain (Algorithm 2
    /// line 2).
    pub fn new(op: &LaminoOperator, d: &Array3<f64>, exec: &dyn FftExecutor) -> Self {
        let d_c = to_complex(d);
        let dhat = op.f2d(&d_c, exec);
        let g = op.geometry();
        let plane_scale = 1.0 / (g.detector.rows * g.detector.cols) as f64;
        Self { dhat, plane_scale }
    }

    /// The stored `d̂`.
    pub fn dhat(&self) -> &Array3<Complex64> {
        &self.dhat
    }

    /// The `1/(h·w)` scale of the detector plane.
    pub fn plane_scale(&self) -> f64 {
        self.plane_scale
    }
}

/// Per-projection Hermitian projection: replaces each plane `X` by
/// `(X + conj(X mirrored))/2`, where the mirror is taken modulo the DFT grid.
///
/// Taking the real part of an inverse 2-D FFT in detector space (what
/// Algorithm 1 does implicitly when it stores `d'` as real data) is exactly
/// this projection in the frequency domain. Applying it inside the fused
/// subtraction kernel is what makes the operation cancellation of
/// Algorithm 2 *exactly* equivalent to Algorithm 1 rather than only
/// approximately so.
pub fn hermitian_project(planes: &mut Array3<Complex64>) {
    let shape = planes.shape();
    let (n_theta, h, w) = shape.dims();
    for t in 0..n_theta {
        for m in 0..h {
            let mm = (h - m) % h;
            for n in 0..w {
                let nn = (w - n) % w;
                if (m, n) > (mm, nn) {
                    continue; // handled when visiting the mirror index
                }
                let a = planes[(t, m, n)];
                let b = planes[(t, mm, nn)];
                let sym = (a + b.conj()).scale(0.5);
                planes[(t, m, n)] = sym;
                planes[(t, mm, nn)] = sym.conj();
            }
        }
    }
}

/// Result of one LSP gradient evaluation.
pub struct LspGradient {
    /// The gradient `G`.
    pub grad: Array3<f64>,
    /// The data-fidelity part of the objective, `½‖Lu − d‖²`.
    pub data_loss: f64,
}

/// Evaluates the LSP gradient under Algorithm 1 (original formulation).
pub fn lsp_gradient_original(
    op: &LaminoOperator,
    u: &Array3<f64>,
    d: &Array3<f64>,
    g_field: &VectorField,
    rho: f64,
    exec: &dyn FftExecutor,
) -> LspGradient {
    // Forward pass: d' = F*_2D F_u2D F_u1D u.
    let u_c = to_complex(u);
    let u1 = op.fu1d(&u_c, exec);
    let dhat_prime = op.fu2d(&u1, exec);
    let d_prime = to_real(&op.f2d_inverse(&dhat_prime, exec));

    // Residual in detector space.
    let mut resid = d_prime.clone();
    resid.axpby(1.0, d, -1.0);
    let data_loss = 0.5 * resid.dot(&resid);

    // Adjoint pass: G_data = F*_u1D F*_u2D ((1/hw)·F_2D resid).
    let geometry = op.geometry();
    let scale = 1.0 / (geometry.detector.rows * geometry.detector.cols) as f64;
    let mut rhat = op.f2d(&to_complex(&resid), exec);
    rhat.map_inplace(|z| *z = z.scale(scale));
    let back = op.fu2d_adjoint(&rhat, exec);
    let g_data = to_real(&op.fu1d_adjoint(&back, exec));

    LspGradient {
        grad: add_regulariser(g_data, u, g_field, rho),
        data_loss,
    }
}

/// Evaluates the LSP gradient under Algorithm 2 (cancellation + fusion).
pub fn lsp_gradient_cancelled(
    op: &LaminoOperator,
    u: &Array3<f64>,
    freq: &FrequencyData,
    g_field: &VectorField,
    rho: f64,
    exec: &dyn FftExecutor,
) -> LspGradient {
    // Forward pass stays in the frequency domain: d̂' = F_u2D F_u1D u.
    let u_c = to_complex(u);
    let u1 = op.fu1d(&u_c, exec);
    let dhat_prime = op.fu2d(&u1, exec);

    // Fused subtraction (on the GPU in the paper): r̂ = H(d̂' − d̂), where H is
    // the per-plane Hermitian projection — the frequency-domain equivalent of
    // Algorithm 1 storing the projection residual as real detector data.
    let mut rhat = dhat_prime;
    for (a, b) in rhat.as_mut_slice().iter_mut().zip(freq.dhat().as_slice()) {
        *a -= *b;
    }
    hermitian_project(&mut rhat);

    // ½‖Lu − d‖² via Parseval, no extra FFT needed.
    let plane_scale = freq.plane_scale();
    let data_loss = 0.5 * plane_scale * rhat.as_slice().iter().map(|z| z.norm_sqr()).sum::<f64>();

    rhat.map_inplace(|z| *z = z.scale(plane_scale));

    // Adjoint pass: G_data = F*_u1D F*_u2D r̂ — no uniform FFT stages.
    let back = op.fu2d_adjoint(&rhat, exec);
    let g_data = to_real(&op.fu1d_adjoint(&back, exec));

    LspGradient {
        grad: add_regulariser(g_data, u, g_field, rho),
        data_loss,
    }
}

/// Adds the augmented-Lagrangian regularisation term `ρ ∇ᵀ(∇u − g)` to the
/// data gradient.
fn add_regulariser(
    mut g_data: Array3<f64>,
    u: &Array3<f64>,
    g_field: &VectorField,
    rho: f64,
) -> Array3<f64> {
    let mut diff = gradient(u);
    diff.axpby(1.0, g_field, -1.0);
    let reg = divergence(&diff);
    g_data.axpby(1.0, &reg, rho);
    g_data
}

/// CG-style update state: the paper's `u ← CG(u, G, G_prev)` consumes the
/// current and previous gradients; this implementation uses the
/// Barzilai–Borwein step (a quasi-CG scheme that needs exactly that state).
#[derive(Debug, Clone, Default)]
pub struct CgState {
    prev_u: Option<Array3<f64>>,
    prev_grad: Option<Array3<f64>>,
}

impl CgState {
    /// Creates an empty state (first step uses `initial_step`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one update `u ← u − α G`, with `α` from the Barzilai–Borwein
    /// formula when a previous iterate exists and `initial_step` otherwise.
    /// Returns the step size used.
    pub fn update(&mut self, u: &mut Array3<f64>, grad: &Array3<f64>, initial_step: f64) -> f64 {
        let alpha = match (&self.prev_u, &self.prev_grad) {
            (Some(pu), Some(pg)) => {
                // BB1: α = <Δu, Δu> / <Δu, ΔG>.
                let mut du = u.clone();
                du.axpby(1.0, pu, -1.0);
                let mut dg = grad.clone();
                dg.axpby(1.0, pg, -1.0);
                let denom = du.dot(&dg);
                let numer = du.dot(&du);
                if denom > 1e-30 && numer > 0.0 {
                    // Keep the BB step within a moderate band around the
                    // configured step: when a memoized gradient repeats the
                    // previous one, ΔG ≈ 0 and the raw BB ratio blows up.
                    (numer / denom).clamp(0.05 * initial_step, 20.0 * initial_step)
                } else {
                    initial_step
                }
            }
            _ => initial_step,
        };
        self.prev_u = Some(u.clone());
        self.prev_grad = Some(grad.clone());
        u.axpby(1.0, grad, -alpha);
        alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_lamino::{DirectExecutor, LaminoGeometry};
    use mlr_math::norms::max_abs_diff;
    use mlr_math::rng::seeded;
    use mlr_math::Shape3;
    use rand::Rng;

    fn small_setup() -> (LaminoOperator, Array3<f64>, Array3<f64>) {
        let geometry = LaminoGeometry::cube(8, 6, 32.0);
        let op = LaminoOperator::new(geometry, 4);
        let mut rng = seeded(3);
        let vol_shape = op.geometry().volume_shape();
        let data_shape = op.geometry().data_shape();
        let u = Array3::from_vec(
            vol_shape,
            (0..vol_shape.len())
                .map(|_| rng.gen::<f64>() - 0.5)
                .collect(),
        );
        let d = Array3::from_vec(
            data_shape,
            (0..data_shape.len())
                .map(|_| rng.gen::<f64>() - 0.5)
                .collect(),
        );
        (op, u, d)
    }

    #[test]
    fn original_and_cancelled_gradients_agree() {
        let (op, u, d) = small_setup();
        let exec = DirectExecutor;
        let g_field = VectorField::zeros(u.shape());
        let rho = 0.5;

        let orig = lsp_gradient_original(&op, &u, &d, &g_field, rho, &exec);
        let freq = FrequencyData::new(&op, &d, &exec);
        let canc = lsp_gradient_cancelled(&op, &u, &freq, &g_field, rho, &exec);

        let scale = orig
            .grad
            .as_slice()
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max);
        let diff = max_abs_diff(orig.grad.as_slice(), canc.grad.as_slice());
        assert!(diff < 1e-8 * scale.max(1.0), "gradient mismatch {diff}");
        assert!((orig.data_loss - canc.data_loss).abs() < 1e-8 * orig.data_loss.max(1.0));
    }

    #[test]
    fn gradient_is_zero_at_exact_solution_without_regulariser() {
        // If d = L u_true and we evaluate at u_true with rho = 0, the data
        // gradient vanishes.
        let (op, u_true, _) = small_setup();
        let exec = DirectExecutor;
        let d = op.forward(&u_true);
        let g_field = VectorField::zeros(u_true.shape());
        let g = lsp_gradient_original(&op, &u_true, &d, &g_field, 0.0, &exec);
        let max = g
            .grad
            .as_slice()
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max);
        let scale = u_true
            .as_slice()
            .iter()
            .map(|x| x.abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-6 * scale.max(1.0), "gradient at solution {max}");
        assert!(g.data_loss < 1e-10);
    }

    #[test]
    fn gradient_descends_the_objective() {
        let (op, u, d) = small_setup();
        let exec = DirectExecutor;
        let g_field = VectorField::zeros(u.shape());
        let rho = 0.1;
        let g = lsp_gradient_original(&op, &u, &d, &g_field, rho, &exec);
        // Take a small step along -G and check the objective decreases.
        let step = 1e-3;
        let mut u2 = u.clone();
        u2.axpby(1.0, &g.grad, -step);
        let g2 = lsp_gradient_original(&op, &u2, &d, &g_field, rho, &exec);
        assert!(
            g2.data_loss <= g.data_loss + 1e-12,
            "{} -> {}",
            g.data_loss,
            g2.data_loss
        );
    }

    #[test]
    fn cg_state_bb_step_changes_after_first_update() {
        let shape = Shape3::cube(4);
        let mut u = Array3::filled(shape, 1.0);
        let grad = Array3::filled(shape, 0.5);
        let mut cg = CgState::new();
        let a0 = cg.update(&mut u, &grad, 0.1);
        assert!((a0 - 0.1).abs() < 1e-12);
        // Second step with the same gradient: denominator <du, dg> == 0 so it
        // falls back to the initial step; with a different gradient BB kicks
        // in and produces a positive step.
        let grad2 = Array3::filled(shape, 0.25);
        let a1 = cg.update(&mut u, &grad2, 0.1);
        assert!(a1 > 0.0);
    }

    #[test]
    fn frequency_data_loss_matches_detector_space() {
        let (op, u, d) = small_setup();
        let exec = DirectExecutor;
        let freq = FrequencyData::new(&op, &d, &exec);
        // Compute ||Lu - d||^2 / 2 both ways: in detector space and via the
        // Hermitian-projected frequency-domain residual (Parseval).
        let lu = op.forward(&u);
        let mut r = lu.clone();
        r.axpby(1.0, &d, -1.0);
        let direct = 0.5 * r.dot(&r);

        let u1 = op.fu1d(&to_complex(&u), &exec);
        let dhat_prime = op.fu2d(&u1, &exec);
        let mut rhat = dhat_prime;
        for (a, b) in rhat.as_mut_slice().iter_mut().zip(freq.dhat().as_slice()) {
            *a -= *b;
        }
        hermitian_project(&mut rhat);
        let via_freq =
            0.5 * freq.plane_scale() * rhat.as_slice().iter().map(|z| z.norm_sqr()).sum::<f64>();
        assert!(
            (direct - via_freq).abs() < 1e-8 * direct.max(1.0),
            "{direct} vs {via_freq}"
        );
    }

    #[test]
    fn hermitian_projection_matches_real_part_roundtrip() {
        // H in the frequency domain == taking Re() in detector space.
        let (op, u, _) = small_setup();
        let exec = DirectExecutor;
        let u1 = op.fu1d(&to_complex(&u), &exec);
        let dhat_prime = op.fu2d(&u1, &exec);
        // Path A: project then inverse FFT.
        let mut projected = dhat_prime.clone();
        hermitian_project(&mut projected);
        let a = op.f2d_inverse(&projected, &exec);
        // Path B: inverse FFT, drop the imaginary part, transform back and
        // forth once more to compare in the same space.
        let b = to_real(&op.f2d_inverse(&dhat_prime, &exec));
        let max_diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x.re - y).abs().max(x.im.abs()))
            .fold(0.0, f64::max);
        assert!(max_diff < 1e-9, "projection mismatch {max_diff}");
    }
}
