//! Total-variation machinery.
//!
//! The TV term of the reconstruction objective needs three pieces: the
//! forward-difference gradient `∇u` (a 3-component vector field), its
//! adjoint (the negative divergence, used when differentiating the augmented
//! Lagrangian), and the isotropic shrinkage operator that solves the RSP in
//! closed form.

use mlr_math::{Array3, Shape3};

/// A 3-component vector field over a volume (the gradient of `u`, the
/// auxiliary variable `ψ`, the multiplier `λ` all have this shape).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorField {
    /// Component along volume axis 0 (`n1`).
    pub x: Array3<f64>,
    /// Component along volume axis 1 (`n0`, vertical).
    pub y: Array3<f64>,
    /// Component along volume axis 2 (`n2`).
    pub z: Array3<f64>,
}

impl VectorField {
    /// A zero field over `shape`.
    pub fn zeros(shape: Shape3) -> Self {
        Self {
            x: Array3::zeros(shape),
            y: Array3::zeros(shape),
            z: Array3::zeros(shape),
        }
    }

    /// The underlying volume shape.
    pub fn shape(&self) -> Shape3 {
        self.x.shape()
    }

    /// Element-wise linear combination `self ← a·self + b·other`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn axpby(&mut self, a: f64, other: &VectorField, b: f64) {
        self.x.axpby(a, &other.x, b);
        self.y.axpby(a, &other.y, b);
        self.z.axpby(a, &other.z, b);
    }

    /// Sum of squared entries over all three components.
    pub fn norm_sqr(&self) -> f64 {
        self.x.dot(&self.x) + self.y.dot(&self.y) + self.z.dot(&self.z)
    }

    /// Inner product with another field.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn dot(&self, other: &VectorField) -> f64 {
        self.x.dot(&other.x) + self.y.dot(&other.y) + self.z.dot(&other.z)
    }

    /// Total bytes of the field (used by memory accounting).
    pub fn bytes(&self) -> u64 {
        (3 * self.x.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Forward-difference gradient with Neumann (replicate) boundary: the
/// difference at the last index along an axis is zero.
pub fn gradient(u: &Array3<f64>) -> VectorField {
    let shape = u.shape();
    let (n1, n0, n2) = shape.dims();
    let mut g = VectorField::zeros(shape);
    for i in 0..n1 {
        for j in 0..n0 {
            for k in 0..n2 {
                let c = u[(i, j, k)];
                if i + 1 < n1 {
                    g.x[(i, j, k)] = u[(i + 1, j, k)] - c;
                }
                if j + 1 < n0 {
                    g.y[(i, j, k)] = u[(i, j + 1, k)] - c;
                }
                if k + 1 < n2 {
                    g.z[(i, j, k)] = u[(i, j, k + 1)] - c;
                }
            }
        }
    }
    g
}

/// Divergence of a vector field with the boundary conditions adjoint to
/// [`gradient`], so that `⟨∇u, p⟩ = −⟨u, div p⟩` holds exactly.
pub fn divergence(p: &VectorField) -> Array3<f64> {
    let shape = p.shape();
    let (n1, n0, n2) = shape.dims();
    let mut out = Array3::zeros(shape);
    for i in 0..n1 {
        for j in 0..n0 {
            for k in 0..n2 {
                let mut acc = 0.0;
                // d/dx backward difference of p.x
                if i + 1 < n1 {
                    acc += p.x[(i, j, k)];
                }
                if i > 0 {
                    acc -= p.x[(i - 1, j, k)];
                }
                if j + 1 < n0 {
                    acc += p.y[(i, j, k)];
                }
                if j > 0 {
                    acc -= p.y[(i, j - 1, k)];
                }
                if k + 1 < n2 {
                    acc += p.z[(i, j, k)];
                }
                if k > 0 {
                    acc -= p.z[(i, j, k - 1)];
                }
                out[(i, j, k)] = acc;
            }
        }
    }
    // The adjoint identity <grad u, p> = <u, grad^T p> with grad^T = -div
    // means the divergence above must carry a negative sign relative to the
    // accumulated forward differences; flip it here so callers can use the
    // conventional identity directly.
    out.map_inplace(|v| *v = -*v);
    out
}

/// Isotropic TV norm `Σ √(gx² + gy² + gz²)`.
pub fn tv_norm(u: &Array3<f64>) -> f64 {
    let g = gradient(u);
    let n = u.len();
    let mut total = 0.0;
    for idx in 0..n {
        let gx = g.x.as_slice()[idx];
        let gy = g.y.as_slice()[idx];
        let gz = g.z.as_slice()[idx];
        total += (gx * gx + gy * gy + gz * gz).sqrt();
    }
    total
}

/// Isotropic soft-thresholding (the RSP proximal step): shrinks the magnitude
/// of each gradient vector by `threshold`, preserving direction.
pub fn shrink(field: &VectorField, threshold: f64) -> VectorField {
    let shape = field.shape();
    let mut out = VectorField::zeros(shape);
    let n = field.x.len();
    for idx in 0..n {
        let gx = field.x.as_slice()[idx];
        let gy = field.y.as_slice()[idx];
        let gz = field.z.as_slice()[idx];
        let mag = (gx * gx + gy * gy + gz * gz).sqrt();
        if mag > threshold {
            let scale = (mag - threshold) / mag;
            out.x.as_mut_slice()[idx] = gx * scale;
            out.y.as_mut_slice()[idx] = gy * scale;
            out.z.as_mut_slice()[idx] = gz * scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_volume(n: usize, seed: u64) -> Array3<f64> {
        let mut rng = seeded(seed);
        let shape = Shape3::cube(n);
        Array3::from_vec(
            shape,
            (0..shape.len()).map(|_| rng.gen::<f64>() - 0.5).collect(),
        )
    }

    fn random_field(n: usize, seed: u64) -> VectorField {
        VectorField {
            x: random_volume(n, seed),
            y: random_volume(n, seed + 1),
            z: random_volume(n, seed + 2),
        }
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let u = Array3::filled(Shape3::cube(6), 3.7);
        let g = gradient(&u);
        assert_eq!(g.norm_sqr(), 0.0);
        assert_eq!(tv_norm(&u), 0.0);
    }

    #[test]
    fn gradient_of_linear_ramp() {
        let n = 5;
        let shape = Shape3::cube(n);
        let mut u = Array3::zeros(shape);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    u[(i, j, k)] = 2.0 * i as f64;
                }
            }
        }
        let g = gradient(&u);
        // Interior x-differences are 2, boundary plane is 0, other axes are 0.
        assert_eq!(g.x[(0, 0, 0)], 2.0);
        assert_eq!(g.x[(n - 2, 1, 1)], 2.0);
        assert_eq!(g.x[(n - 1, 1, 1)], 0.0);
        assert_eq!(g.y[(1, 1, 1)], 0.0);
        assert_eq!(g.z[(1, 1, 1)], 0.0);
    }

    #[test]
    fn gradient_divergence_adjointness() {
        // <grad u, p> == <u, -div p> ... with our sign convention
        // divergence() already returns -div so the identity reads
        // <grad u, p> == <u, divergence(p)> ... verify numerically.
        let n = 6;
        let u = random_volume(n, 1);
        let p = random_field(n, 10);
        let gu = gradient(&u);
        let lhs = gu.dot(&p);
        let div_p = divergence(&p);
        let rhs = u.dot(&div_p);
        assert!(
            (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn shrink_thresholds_small_vectors_to_zero() {
        let shape = Shape3::cube(3);
        let mut f = VectorField::zeros(shape);
        f.x[(0, 0, 0)] = 0.1;
        f.y[(1, 1, 1)] = 3.0;
        f.z[(1, 1, 1)] = 4.0; // magnitude 5 at (1,1,1)
        let s = shrink(&f, 1.0);
        assert_eq!(s.x[(0, 0, 0)], 0.0);
        // Magnitude shrinks from 5 to 4, direction preserved (3,4)/5.
        assert!((s.y[(1, 1, 1)] - 3.0 * 0.8).abs() < 1e-12);
        assert!((s.z[(1, 1, 1)] - 4.0 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn shrink_is_identity_at_zero_threshold() {
        let f = random_field(4, 20);
        let s = shrink(&f, 0.0);
        assert!((s.norm_sqr() - f.norm_sqr()).abs() < 1e-10);
    }

    #[test]
    fn tv_norm_positive_for_nonconstant() {
        let u = random_volume(5, 30);
        assert!(tv_norm(&u) > 0.0);
    }

    #[test]
    fn vector_field_ops() {
        let shape = Shape3::cube(3);
        let mut a = VectorField::zeros(shape);
        let b = VectorField {
            x: Array3::filled(shape, 1.0),
            y: Array3::filled(shape, 2.0),
            z: Array3::filled(shape, 3.0),
        };
        a.axpby(1.0, &b, 2.0);
        assert_eq!(a.x[(0, 0, 0)], 2.0);
        assert_eq!(a.z[(2, 2, 2)], 6.0);
        assert_eq!(a.bytes(), (3 * 27 * 8) as u64);
        assert!(a.dot(&b) > 0.0);
    }
}
