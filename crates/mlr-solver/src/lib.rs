//! # mlr-solver
//!
//! The ADMM-FFT laminography solver the paper accelerates.
//!
//! Laminography reconstruction with total-variation regularisation solves
//!
//! ```text
//! min_u  ½‖L u − d‖₂² + α‖u‖_TV
//! ```
//!
//! by ADMM: the **laminography subproblem** (LSP) refines `u` with a few
//! CG-style iterations against the FFT-factored operator `L`; the
//! **regularisation subproblem** (RSP) updates the auxiliary variable `ψ`
//! with a shrinkage step; the Lagrange multiplier `λ` and the penalty `ρ` are
//! then updated. The crate provides:
//!
//! * [`tv`] — forward-difference gradient, its adjoint (negative divergence),
//!   the isotropic TV norm and the shrinkage (proximal) operator.
//! * [`lsp`] — the LSP gradient under both the **original** formulation
//!   (Algorithm 1: `F*_2D`/`F_2D` appear in every pass) and the
//!   **cancelled + fused** formulation (Algorithm 2: the data is mapped to
//!   the frequency domain once and the uniform FFT pair disappears), plus the
//!   CG-style update that consumes those gradients.
//! * [`admm`] — the outer ADMM driver with loss tracking, phase timing and
//!   pluggable `FftExecutor` (this is where mLR's memoization engine slots
//!   in).
//! * [`metrics`] — the paper's reconstruction-quality metrics (Eq. 4/5) and
//!   convergence histories.

pub mod admm;
pub mod cancel;
pub mod lsp;
pub mod metrics;
pub mod tv;

pub use admm::{AdmmConfig, AdmmResult, AdmmSolver};
pub use cancel::{CancelToken, StopCause};
pub use lsp::{FrequencyData, LspVariant};
pub use metrics::{accuracy_vs_reference, ConvergenceHistory};
pub use tv::{divergence, gradient, shrink, tv_norm, VectorField};
