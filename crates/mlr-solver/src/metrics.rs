//! Reconstruction-quality metrics and convergence histories.
//!
//! * `E = ‖R_comp − R_LB‖_F / ‖R_comp‖_F` (paper Eq. 4) compares the
//!   memoized reconstruction against the exact one; `Accuracy = 1 − E`
//!   (Eq. 5) is what Table 1 sweeps over τ.
//! * [`ConvergenceHistory`] records the per-iteration objective value and
//!   phase timings that Figures 2 and 17 plot.

use mlr_math::norms;
use mlr_math::Array3;
use serde::{Deserialize, Serialize};

/// The paper's accuracy metric: `1 − ‖reference − candidate‖_F / ‖reference‖_F`.
pub fn accuracy_vs_reference(reference: &Array3<f64>, candidate: &Array3<f64>) -> f64 {
    norms::accuracy(reference, candidate)
}

/// Per-iteration record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Outer ADMM iteration index.
    pub iteration: usize,
    /// Objective value `½‖Lu − d‖² + α·TV(u)`.
    pub loss: f64,
    /// Data-fidelity part of the loss.
    pub data_loss: f64,
    /// Wall-clock seconds of the LSP phase.
    pub lsp_seconds: f64,
    /// Wall-clock seconds of the RSP phase.
    pub rsp_seconds: f64,
    /// Wall-clock seconds of the λ update phase.
    pub lambda_seconds: f64,
    /// Wall-clock seconds of the penalty update phase.
    pub penalty_seconds: f64,
}

impl IterationRecord {
    /// Total wall-clock of the iteration.
    pub fn total_seconds(&self) -> f64 {
        self.lsp_seconds + self.rsp_seconds + self.lambda_seconds + self.penalty_seconds
    }
}

/// Convergence history of one ADMM run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    records: Vec<IterationRecord>,
}

impl ConvergenceHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one iteration record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// The loss series `(iteration, loss)` — the curve of Figure 17.
    pub fn loss_series(&self) -> Vec<(usize, f64)> {
        self.records.iter().map(|r| (r.iteration, r.loss)).collect()
    }

    /// Final loss (`None` for an empty history).
    pub fn final_loss(&self) -> Option<f64> {
        self.records.last().map(|r| r.loss)
    }

    /// Total wall-clock seconds across all iterations.
    pub fn total_seconds(&self) -> f64 {
        self.records
            .iter()
            .map(IterationRecord::total_seconds)
            .sum()
    }

    /// Fraction of the total time spent in the LSP phase (the paper reports
    /// more than 67 %).
    pub fn lsp_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total <= 0.0 {
            return 0.0;
        }
        self.records.iter().map(|r| r.lsp_seconds).sum::<f64>() / total
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no iterations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::{Array3, Shape3};

    fn record(it: usize, loss: f64, lsp: f64) -> IterationRecord {
        IterationRecord {
            iteration: it,
            loss,
            data_loss: loss * 0.8,
            lsp_seconds: lsp,
            rsp_seconds: 0.1,
            lambda_seconds: 0.05,
            penalty_seconds: 0.05,
        }
    }

    #[test]
    fn accuracy_of_identical_volumes_is_one() {
        let a = Array3::filled(Shape3::cube(4), 1.5);
        assert_eq!(accuracy_vs_reference(&a, &a.clone()), 1.0);
    }

    #[test]
    fn history_series_and_fractions() {
        let mut h = ConvergenceHistory::new();
        h.push(record(0, 10.0, 1.0));
        h.push(record(1, 5.0, 1.0));
        h.push(record(2, 2.0, 1.0));
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.final_loss(), Some(2.0));
        assert_eq!(h.loss_series()[1], (1, 5.0));
        let lsp_frac = h.lsp_fraction();
        assert!((lsp_frac - 1.0 / 1.2).abs() < 1e-12);
        assert!((h.total_seconds() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn empty_history() {
        let h = ConvergenceHistory::new();
        assert_eq!(h.final_loss(), None);
        assert_eq!(h.lsp_fraction(), 0.0);
        assert!(h.is_empty());
    }
}
