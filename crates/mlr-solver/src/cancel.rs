//! Cooperative cancellation for the ADMM driver.
//!
//! A [`CancelToken`] is shared between a submitter (who may request
//! cancellation at any time) and the solver (which polls it at iteration
//! boundaries — the only points where stopping leaves every ADMM variable in
//! a consistent state). The token optionally carries a deadline: a run that
//! is still going when the deadline passes stops with
//! [`StopCause::DeadlineExpired`] at the next boundary.
//!
//! Stopping is *cooperative and clean*: the solver breaks out of the outer
//! loop, still calls the executor's `finish` hook (so a memoizing executor
//! flushes its coalescer and its entries stay published for other tenants),
//! and reports the cause in `AdmmResult::stopped`. A token that is never
//! cancelled and carries no deadline changes nothing — the iteration
//! sequence, and therefore the reconstruction, is bit-identical to a run
//! without a token.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a solver run stopped before completing its configured iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The submitter requested cancellation.
    Cancelled,
    /// The token's deadline passed while the run was in flight.
    DeadlineExpired,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Fixed at construction; `None` means no deadline.
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle checked by the solver at iteration
/// boundaries. Cancellation wins over deadline expiry when both apply.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never stops the run on its own (cancel it explicitly).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally stops the run once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation: the run stops at the next iteration boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The deadline this token carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// What the solver polls at each iteration boundary.
    pub fn should_stop(&self) -> Option<StopCause> {
        if self.is_cancelled() {
            return Some(StopCause::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(StopCause::DeadlineExpired), // mlr-check: allow(wall-clock) — serving deadline: wall-clock expiry is the contract
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_never_stops() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.should_stop(), None);
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let seen_by_solver = t.clone();
        t.cancel();
        assert_eq!(seen_by_solver.should_stop(), Some(StopCause::Cancelled));
    }

    #[test]
    fn past_deadline_expires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.should_stop(), Some(StopCause::DeadlineExpired));
    }

    #[test]
    fn cancellation_wins_over_expiry() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.should_stop(), Some(StopCause::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.should_stop(), None);
    }
}
