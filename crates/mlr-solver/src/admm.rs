//! The outer ADMM driver.
//!
//! One ADMM iteration runs the four phases of §5.1 of the paper:
//!
//! 1. **LSP** — `N_inner` CG-style refinements of `u` against the data term
//!    and the augmented TV coupling (this is where all the FFT work, and all
//!    of mLR's memoization, happens);
//! 2. **RSP** — closed-form shrinkage update of the auxiliary variable `ψ`;
//! 3. **λ update** — dual ascent on the constraint `∇u = ψ`;
//! 4. **penalty update** — residual balancing of `ρ`.
//!
//! The driver takes any `FftExecutor`, so the same code path produces the
//! exact baseline (direct executor), the memoized run (mLR's engine) and the
//! instrumented runs behind the evaluation figures.

use crate::cancel::{CancelToken, StopCause};
use crate::lsp::{
    lsp_gradient_cancelled, lsp_gradient_original, CgState, FrequencyData, LspVariant,
};
use crate::metrics::{ConvergenceHistory, IterationRecord};
use crate::tv::{gradient, shrink, tv_norm, VectorField};
use mlr_lamino::{DirectExecutor, FftExecutor, LaminoOperator};
use mlr_math::Array3;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// ADMM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmmConfig {
    /// Number of outer ADMM iterations.
    pub outer_iterations: usize,
    /// Number of inner CG iterations per LSP solve (`N_inner`, paper: 4).
    pub n_inner: usize,
    /// TV regularisation weight `α`.
    pub alpha: f64,
    /// Initial augmented-Lagrangian penalty `ρ`.
    pub rho: f64,
    /// Initial gradient-descent step for the first CG update.
    pub initial_step: f64,
    /// Which LSP formulation to run.
    pub variant: LspVariant,
    /// Enforce a non-negative reconstruction after every LSP phase
    /// (attenuation coefficients are physically non-negative).
    pub nonnegativity: bool,
    /// Adapt `ρ` by primal/dual residual balancing.
    pub adaptive_rho: bool,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        Self {
            outer_iterations: 20,
            n_inner: 4,
            alpha: 1e-3,
            rho: 0.5,
            initial_step: 0.05,
            variant: LspVariant::Cancelled,
            nonnegativity: true,
            adaptive_rho: true,
        }
    }
}

/// Result of one ADMM run.
pub struct AdmmResult {
    /// The reconstructed volume.
    pub reconstruction: Array3<f64>,
    /// Per-iteration loss and timing records.
    pub history: ConvergenceHistory,
    /// Final penalty value.
    pub final_rho: f64,
    /// `Some` when the run stopped early at an iteration boundary because
    /// its [`CancelToken`] was cancelled or its deadline expired; `None` for
    /// a run that completed every configured iteration.
    pub stopped: Option<StopCause>,
}

/// The ADMM-FFT solver.
pub struct AdmmSolver {
    config: AdmmConfig,
}

impl AdmmSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: AdmmConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmmConfig {
        &self.config
    }

    /// Runs ADMM-FFT with the direct (exact) executor.
    pub fn run(&self, op: &LaminoOperator, d: &Array3<f64>) -> AdmmResult {
        self.run_with(op, d, &DirectExecutor)
    }

    /// Runs ADMM-FFT with an explicit executor (e.g. mLR's memoized engine).
    pub fn run_with(
        &self,
        op: &LaminoOperator,
        d: &Array3<f64>,
        exec: &dyn FftExecutor,
    ) -> AdmmResult {
        self.run_with_cancel(op, d, exec, &CancelToken::new())
    }

    /// Runs ADMM-FFT with an explicit executor under a [`CancelToken`]: the
    /// token is polled at every outer-iteration boundary, and a run that is
    /// cancelled (or whose deadline passes) stops cleanly there — the
    /// executor's `finish` hook still runs, so a memoizing executor flushes
    /// its coalescer and its published entries keep serving other tenants.
    /// With a token that never fires, the run is bit-identical to
    /// [`AdmmSolver::run_with`].
    pub fn run_with_cancel(
        &self,
        op: &LaminoOperator,
        d: &Array3<f64>,
        exec: &dyn FftExecutor,
        cancel: &CancelToken,
    ) -> AdmmResult {
        let cfg = &self.config;
        let vol_shape = op.geometry().volume_shape();
        assert_eq!(
            d.shape(),
            op.geometry().data_shape(),
            "projection data shape mismatch"
        );

        let mut u: Array3<f64> = Array3::zeros(vol_shape);
        let mut psi = VectorField::zeros(vol_shape);
        let mut lambda = VectorField::zeros(vol_shape);
        let mut rho = cfg.rho;
        let mut history = ConvergenceHistory::new();

        // Algorithm 2 maps the data to the frequency domain once.
        let freq = match cfg.variant {
            LspVariant::Cancelled => Some(FrequencyData::new(op, d, exec)),
            LspVariant::Original => None,
        };

        let mut stopped = None;
        for iteration in 0..cfg.outer_iterations {
            if let Some(cause) = cancel.should_stop() {
                stopped = Some(cause);
                break;
            }
            exec.begin_iteration(iteration);

            // ------------------------------------------------------- LSP
            let lsp_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: per-phase seconds feed the solver profile
                                            // g = ψ − λ/ρ  (Algorithm 1 line 1).
            let mut g_field = psi.clone();
            g_field.axpby(1.0, &lambda, -1.0 / rho);

            let mut cg = CgState::new();
            let mut data_loss = 0.0;
            for _ in 0..cfg.n_inner {
                let grad = match cfg.variant {
                    LspVariant::Original => lsp_gradient_original(op, &u, d, &g_field, rho, exec),
                    LspVariant::Cancelled => lsp_gradient_cancelled(
                        op,
                        &u,
                        freq.as_ref().expect("frequency data"), // mlr-check: allow(unwrap-expect) — invariant: the cancelled variant always carries frequency data
                        &g_field,
                        rho,
                        exec,
                    ),
                };
                data_loss = grad.data_loss;
                cg.update(&mut u, &grad.grad, cfg.initial_step);
            }
            if cfg.nonnegativity {
                u.map_inplace(|v| *v = v.max(0.0));
            }
            let lsp_seconds = lsp_start.elapsed().as_secs_f64();

            // ------------------------------------------------------- RSP
            let rsp_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: per-phase seconds feed the solver profile
            let grad_u = gradient(&u);
            // ψ = shrink(∇u + λ/ρ, α/ρ).
            let mut arg = grad_u.clone();
            arg.axpby(1.0, &lambda, 1.0 / rho);
            psi = shrink(&arg, cfg.alpha / rho);
            let rsp_seconds = rsp_start.elapsed().as_secs_f64();

            // -------------------------------------------------- λ update
            let lambda_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: per-phase seconds feed the solver profile
                                               // λ ← λ + ρ(∇u − ψ).
            let mut primal = grad_u.clone();
            primal.axpby(1.0, &psi, -1.0);
            lambda.axpby(1.0, &primal, rho);
            let lambda_seconds = lambda_start.elapsed().as_secs_f64();

            // --------------------------------------------- penalty update
            let penalty_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: per-phase seconds feed the solver profile
            if cfg.adaptive_rho {
                let primal_res = primal.norm_sqr().sqrt();
                // Dual residual ~ ρ‖ψ_k − ψ_{k−1}‖; approximate with the
                // primal/ψ balance (standard Boyd §3.4 heuristic).
                let psi_norm = psi.norm_sqr().sqrt().max(1e-12);
                if primal_res > 10.0 * psi_norm {
                    rho *= 2.0;
                } else if psi_norm > 10.0 * primal_res {
                    rho *= 0.5;
                }
                rho = rho.clamp(1e-6, 1e6);
            }
            let penalty_seconds = penalty_start.elapsed().as_secs_f64();

            let loss = data_loss + cfg.alpha * tv_norm(&u);
            history.push(IterationRecord {
                iteration,
                loss,
                data_loss,
                lsp_seconds,
                rsp_seconds,
                lambda_seconds,
                penalty_seconds,
            });
        }

        // The job is done (or stopped early): let the executor flush whatever
        // it buffered (memoizing executors account the coalescer's trailing
        // batch here), even for a cancelled run — its entries stay published.
        exec.finish();

        AdmmResult {
            reconstruction: u,
            history,
            final_rho: rho,
            stopped,
        }
    }
}

pub use crate::lsp::LspVariant as Variant;

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_lamino::{LaminoDataset, LaminoOperator};
    use mlr_math::norms::relative_error;

    fn small_dataset() -> (LaminoOperator, LaminoDataset) {
        let ds = LaminoDataset::brain_cube(12, 8, 32.0, 5);
        let op = LaminoOperator::new(ds.geometry.clone(), 4);
        (op, ds)
    }

    fn quick_config(outer: usize, variant: LspVariant) -> AdmmConfig {
        AdmmConfig {
            outer_iterations: outer,
            n_inner: 3,
            alpha: 1e-4,
            rho: 0.5,
            initial_step: 0.05,
            variant,
            nonnegativity: true,
            adaptive_rho: true,
        }
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let (op, ds) = small_dataset();
        let solver = AdmmSolver::new(quick_config(8, LspVariant::Cancelled));
        let result = solver.run(&op, &ds.projections);
        let series = result.history.loss_series();
        assert_eq!(series.len(), 8);
        let first = series[0].1;
        let last = series.last().unwrap().1;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(result.final_rho > 0.0);
    }

    #[test]
    fn reconstruction_approaches_ground_truth() {
        let (op, ds) = small_dataset();
        let solver = AdmmSolver::new(quick_config(15, LspVariant::Cancelled));
        let result = solver.run(&op, &ds.projections);
        // The reconstruction need not be perfect after 15 iterations at this
        // tiny scale, but it must be much closer to the truth than the zero
        // initialisation.
        let err = relative_error(&ds.ground_truth, &result.reconstruction);
        let zero_err = relative_error(&ds.ground_truth, &Array3::zeros(ds.ground_truth.shape()));
        assert!(
            err < 0.8 * zero_err,
            "err {err} vs zero baseline {zero_err}"
        );
        // Non-negativity was enforced.
        assert!(result.reconstruction.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn original_and_cancelled_variants_produce_same_reconstruction() {
        let (op, ds) = small_dataset();
        let a = AdmmSolver::new(quick_config(4, LspVariant::Original)).run(&op, &ds.projections);
        let b = AdmmSolver::new(quick_config(4, LspVariant::Cancelled)).run(&op, &ds.projections);
        let err = relative_error(&a.reconstruction, &b.reconstruction);
        assert!(err < 1e-6, "variants diverged: {err}");
        // Loss histories match too.
        for (ra, rb) in a.history.records().iter().zip(b.history.records()) {
            assert!((ra.loss - rb.loss).abs() < 1e-6 * ra.loss.max(1.0));
        }
    }

    #[test]
    fn history_phase_times_populated() {
        let (op, ds) = small_dataset();
        let solver = AdmmSolver::new(quick_config(2, LspVariant::Cancelled));
        let result = solver.run(&op, &ds.projections);
        for r in result.history.records() {
            assert!(r.lsp_seconds > 0.0);
            assert!(r.total_seconds() >= r.lsp_seconds);
        }
        // The LSP dominates execution time, as in Figure 2.
        assert!(result.history.lsp_fraction() > 0.5);
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_iteration() {
        let (op, ds) = small_dataset();
        let token = CancelToken::new();
        token.cancel();
        let solver = AdmmSolver::new(quick_config(8, LspVariant::Cancelled));
        let result = solver.run_with_cancel(&op, &ds.projections, &DirectExecutor, &token);
        assert_eq!(result.stopped, Some(StopCause::Cancelled));
        assert!(result.history.records().is_empty());
        // The zero initialisation is returned untouched.
        assert!(result.reconstruction.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn expired_deadline_stops_the_run() {
        let (op, ds) = small_dataset();
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let solver = AdmmSolver::new(quick_config(8, LspVariant::Cancelled));
        let result = solver.run_with_cancel(&op, &ds.projections, &DirectExecutor, &token);
        assert_eq!(result.stopped, Some(StopCause::DeadlineExpired));
        assert!(result.history.records().is_empty());
    }

    #[test]
    fn idle_token_is_bit_identical_to_plain_run() {
        let (op, ds) = small_dataset();
        let solver = AdmmSolver::new(quick_config(5, LspVariant::Cancelled));
        let plain = solver.run(&op, &ds.projections);
        let token = CancelToken::with_deadline(
            std::time::Instant::now() + std::time::Duration::from_secs(3600),
        );
        let tokened = solver.run_with_cancel(&op, &ds.projections, &DirectExecutor, &token);
        assert_eq!(tokened.stopped, None);
        assert_eq!(
            plain.reconstruction.as_slice(),
            tokened.reconstruction.as_slice(),
            "an idle cancel token changed the reconstruction"
        );
    }

    #[test]
    #[should_panic(expected = "projection data shape mismatch")]
    fn mismatched_data_shape_panics() {
        let (op, _) = small_dataset();
        let bad = Array3::zeros(mlr_math::Shape3::cube(4));
        let _ = AdmmSolver::new(AdmmConfig::default()).run(&op, &bad);
    }
}
