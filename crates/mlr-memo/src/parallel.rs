//! Intra-job chunk parallelism: the global concurrency governor and the
//! per-job parallel-execution statistics.
//!
//! The memoized executor runs the parallel phase of its two-phase batch
//! protocol on up to `intra_job_threads` threads. When many jobs run side by
//! side (the `mlr-runtime` worker pool), handing every job its full thread
//! allowance would oversubscribe the machine: `workers × intra_job_threads`
//! can exceed the core count. The [`ConcurrencyGovernor`] is the shared
//! arbiter — each worker thread implicitly owns one core, and a job must
//! *lease* every extra chunk thread from the governor's pool of spare cores.
//! Acquisition is best-effort and never blocks (a job that gets nothing
//! simply runs its batch sequentially), so the governor can never deadlock
//! the pool, and — because thread count never affects results under the
//! deterministic two-phase schedule — a partial grant only changes wall
//! time, never the reconstruction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Arbiter of the spare cores that chunk-level threads may use on top of the
/// one core each job already occupies.
#[derive(Debug)]
pub struct ConcurrencyGovernor {
    /// Spare cores available for extra chunk threads (beyond the one core
    /// per job).
    capacity: usize,
    in_use: AtomicUsize,
    peak_in_use: AtomicUsize,
}

impl ConcurrencyGovernor {
    /// A governor over `extra_capacity` spare cores.
    pub fn new(extra_capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity: extra_capacity,
            in_use: AtomicUsize::new(0),
            peak_in_use: AtomicUsize::new(0),
        })
    }

    /// A governor sized for a worker pool: `workers` job-level threads each
    /// own one core of a `total_cores` budget; whatever is left over may be
    /// leased as extra chunk threads. `workers × chunk threads` therefore
    /// never exceeds `max(total_cores, workers)`.
    pub fn for_pool(total_cores: usize, workers: usize) -> Arc<Self> {
        Self::new(total_cores.saturating_sub(workers))
    }

    /// Spare cores this governor arbitrates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spare cores currently leased.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of leased spare cores — never exceeds
    /// [`Self::capacity`].
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use.load(Ordering::Relaxed)
    }

    /// Leases up to `want` spare cores, granting whatever is available right
    /// now (possibly zero) without blocking. The lease returns its cores on
    /// drop.
    pub fn acquire(self: &Arc<Self>, want: usize) -> CoreLease {
        let mut granted = 0;
        if want > 0 {
            let mut current = self.in_use.load(Ordering::Relaxed);
            loop {
                let take = want.min(self.capacity.saturating_sub(current));
                if take == 0 {
                    break;
                }
                match self.in_use.compare_exchange(
                    current,
                    current + take,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        granted = take;
                        self.peak_in_use
                            .fetch_max(current + take, Ordering::Relaxed);
                        break;
                    }
                    Err(observed) => current = observed,
                }
            }
        }
        CoreLease {
            governor: Arc::clone(self),
            granted,
        }
    }
}

/// A lease of spare cores; returns them to the governor on drop.
#[derive(Debug)]
pub struct CoreLease {
    governor: Arc<ConcurrencyGovernor>,
    granted: usize,
}

impl CoreLease {
    /// How many spare cores this lease actually holds (≤ what was asked).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.governor
                .in_use
                .fetch_sub(self.granted, Ordering::Release);
        }
    }
}

/// Per-job statistics of the batched chunk scheduler.
///
/// Thread counts are summed over batch dispatches, so
/// `threads_granted / threads_requested` is the fraction of the asked-for
/// parallelism the governor actually granted (the per-job parallel
/// efficiency the runtime reports). The modeled costs replay the
/// deterministic contiguous-block schedule against the analytic
/// `recompute_cost_estimate` model, so `modeled_speedup` is reproducible on
/// any machine; the `chunk_seconds / phase_seconds` ratio is the speedup
/// actually measured on this machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ParallelStats {
    /// Batch dispatches executed.
    pub batches: u64,
    /// Chunk tasks executed across all batches.
    pub chunks: u64,
    /// Σ over batches of the thread count the executor asked for.
    pub threads_requested: u64,
    /// Σ over batches of the thread count actually used after the governor's
    /// grant.
    pub threads_granted: u64,
    /// Σ of per-chunk parallel-phase wall time (the serialized work).
    pub chunk_seconds: f64,
    /// Wall time of the parallel phases themselves.
    pub phase_seconds: f64,
    /// Analytic cost of all chunk work, run serially.
    pub modeled_serial_cost: f64,
    /// Analytic cost of the critical path under the deterministic
    /// contiguous-block schedule at the *requested* thread count.
    pub modeled_critical_cost: f64,
}

impl ParallelStats {
    /// Fraction of the requested parallelism the governor granted, in
    /// `(0, 1]`; `1.0` when nothing was ever requested.
    pub fn grant_ratio(&self) -> f64 {
        if self.threads_requested == 0 {
            1.0
        } else {
            self.threads_granted as f64 / self.threads_requested as f64
        }
    }

    /// Mean threads used per batch dispatch.
    pub fn mean_threads(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.threads_granted as f64 / self.batches as f64
        }
    }

    /// Measured speedup of the parallel phases on this machine: serialized
    /// per-chunk work over parallel-phase wall time (`1.0` when nothing ran).
    pub fn achieved_speedup(&self) -> f64 {
        if self.phase_seconds <= 0.0 {
            1.0
        } else {
            self.chunk_seconds / self.phase_seconds
        }
    }

    /// Deterministic modeled speedup of the chunk schedule (serial cost over
    /// critical-path cost; `1.0` when nothing ran).
    pub fn modeled_speedup(&self) -> f64 {
        if self.modeled_critical_cost <= 0.0 {
            1.0
        } else {
            self.modeled_serial_cost / self.modeled_critical_cost
        }
    }

    /// Merges another job's statistics into this aggregate.
    pub fn merge(&mut self, other: &ParallelStats) {
        self.batches += other.batches;
        self.chunks += other.chunks;
        self.threads_requested += other.threads_requested;
        self.threads_granted += other.threads_granted;
        self.chunk_seconds += other.chunk_seconds;
        self.phase_seconds += other.phase_seconds;
        self.modeled_serial_cost += other.modeled_serial_cost;
        self.modeled_critical_cost += other.modeled_critical_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_grants_up_to_capacity() {
        let g = ConcurrencyGovernor::new(3);
        let a = g.acquire(2);
        assert_eq!(a.granted(), 2);
        let b = g.acquire(2);
        assert_eq!(b.granted(), 1, "only one spare core left");
        let c = g.acquire(2);
        assert_eq!(c.granted(), 0, "pool exhausted grants nothing");
        assert_eq!(g.in_use(), 3);
        drop(b);
        assert_eq!(g.in_use(), 2);
        let d = g.acquire(5);
        assert_eq!(d.granted(), 1);
        assert_eq!(g.peak_in_use(), 3);
        assert!(g.peak_in_use() <= g.capacity());
    }

    #[test]
    fn for_pool_reserves_one_core_per_worker() {
        assert_eq!(ConcurrencyGovernor::for_pool(8, 2).capacity(), 6);
        assert_eq!(ConcurrencyGovernor::for_pool(2, 4).capacity(), 0);
    }

    #[test]
    fn zero_want_is_a_noop() {
        let g = ConcurrencyGovernor::new(2);
        let lease = g.acquire(0);
        assert_eq!(lease.granted(), 0);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn stats_ratios() {
        let s = ParallelStats {
            batches: 2,
            chunks: 8,
            threads_requested: 8,
            threads_granted: 6,
            chunk_seconds: 4.0,
            phase_seconds: 2.0,
            modeled_serial_cost: 100.0,
            modeled_critical_cost: 25.0,
        };
        assert!((s.grant_ratio() - 0.75).abs() < 1e-12);
        assert!((s.mean_threads() - 3.0).abs() < 1e-12);
        assert!((s.achieved_speedup() - 2.0).abs() < 1e-12);
        assert!((s.modeled_speedup() - 4.0).abs() < 1e-12);
        let mut t = ParallelStats::default();
        assert_eq!(t.grant_ratio(), 1.0);
        assert_eq!(t.modeled_speedup(), 1.0);
        t.merge(&s);
        assert_eq!(t, s);
    }
}
