//! The distributed memo tier: one logical store spread over N simulated
//! memory nodes.
//!
//! The paper's deployment (Figure 6, §5) keeps the memoization database on
//! dedicated memory nodes behind Slingshot links; [`DistributedMemoDb`] is
//! that deployment in simulation. It wraps a [`ShardedMemoDb`] and spreads
//! the store's lock stripes over `N` simulated nodes with a deterministic,
//! network-cost-aware placement (see `mlr_cluster::placement`): every
//! stripe has one owning node, and every remote operation — a hit shipping
//! a value back, a miss answering a query, an insert shipping a value up —
//! is charged through the owning node's [`LinkQueue`], `mlr-sim`'s
//! deterministic shared-link contention model.
//!
//! # Bit-identity contract
//!
//! Store *semantics* — which probes hit, which entries are resident, what
//! the counters say — are delegated 1:1 to the wrapped [`ShardedMemoDb`].
//! The distributed tier adds only modeled latency and per-node accounting
//! on top, so given the same schedule it returns bit-identical hits to the
//! plain sharded store, for any node count and any placement. The
//! `tests/distributed.rs` suite pins this.
//!
//! # Hot-entry replication
//!
//! Entries that keep getting hit are promoted into a bounded replica set —
//! the model of the paper's compute-side caching of hot values. Promotion
//! is driven by the cost-aware eviction metadata already on [`EntryMeta`]:
//! once an entry has served [`NodeTopology::promote_hits`] hits it is
//! replicated, ranked by [`CostAwarePolicy::benefit_density`], and when the
//! replica budget is full the lowest-density replica (ties on the smaller
//! entry id) is dropped. A hit on a replicated entry costs
//! [`NodeTopology::local_latency`] instead of a round trip over the owning
//! node's link — which is what bends the latency CDF's head down while
//! remote probes populate its tail.

use crate::db::{MemoDbConfig, QueryOutcome};
use crate::eviction::{CostAwarePolicy, EntryMeta};
use crate::sharded::ShardedMemoDb;
use crate::store::{MemoStore, ProbeOutcome, Provenance, StoreStats};
use mlr_cluster::placement::{place_stripes, stripes_per_node};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use mlr_sim::hardware::InterconnectSpec;
use mlr_sim::network::{LinkQueue, SharedLink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Topology of the simulated memory-node cluster. `Copy`, so it can ride
/// in `RuntimeConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTopology {
    /// Number of simulated memory nodes the stripes are spread over.
    pub nodes: usize,
    /// Per-node injection link the remote operations are charged through.
    pub interconnect: InterconnectSpec,
    /// Maximum number of hot entries kept in the replica set.
    pub replica_budget: usize,
    /// Hits after which an entry is promoted into the replica set
    /// (`0` disables replication).
    pub promote_hits: u64,
    /// Modeled cost of a hit served from a local replica, seconds.
    pub local_latency: f64,
    /// Simulated seconds per store-clock tick — how the deterministic op
    /// ticks map to link arrival times.
    pub tick_seconds: f64,
    /// Modeled query payload (coalesced key batch), bytes.
    pub key_bytes: f64,
    /// Modeled control-message payload (expiry reclaim), bytes.
    pub control_bytes: f64,
}

impl Default for NodeTopology {
    /// Four memory nodes behind Slingshot-11 links, microsecond ticks,
    /// 1 KiB coalesced queries, 400 ns local replica hits, promotion after
    /// 2 hits into a 64-entry replica set.
    fn default() -> Self {
        Self {
            nodes: 4,
            interconnect: InterconnectSpec::slingshot11(),
            replica_budget: 64,
            promote_hits: 2,
            local_latency: 0.4e-6,
            tick_seconds: 1e-6,
            key_bytes: 1024.0,
            control_bytes: 64.0,
        }
    }
}

impl NodeTopology {
    /// A topology with `nodes` memory nodes and the default link model.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// One memory node's share of the distributed store's traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node index.
    pub node: usize,
    /// Lock stripes placed on the node.
    pub stripes: usize,
    /// Entries resident on the node's stripes.
    pub entries: usize,
    /// Remote hits served over the node's link.
    pub hits: u64,
    /// Misses answered over the node's link.
    pub misses: u64,
    /// Inserts shipped over the node's link.
    pub inserts: u64,
    /// Messages charged through the node's link (all kinds).
    pub messages: u64,
    /// Payload bytes charged through the node's link.
    pub bytes: f64,
    /// Seconds the node's link spent in service.
    pub busy_seconds: f64,
    /// Busy fraction of the simulated horizon, in `[0, 1]`.
    pub utilisation: f64,
    /// Mean modeled latency of the node's remote operations, seconds.
    pub mean_latency_seconds: f64,
    /// Largest modeled latency of the node's remote operations, seconds.
    pub max_latency_seconds: f64,
}

/// Aggregate view of the distributed tier: per-node link accounting plus
/// the replica set's effect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedStats {
    /// Per-node accounting, indexed by node.
    pub nodes: Vec<NodeStats>,
    /// Hits served from the local replica set (no link trip).
    pub local_hits: u64,
    /// Hits that crossed a node link.
    pub remote_hits: u64,
    /// Entries promoted into the replica set so far.
    pub promotions: u64,
    /// Replicas dropped to respect the replica budget.
    pub replica_evictions: u64,
    /// Entries currently replicated.
    pub replicas: usize,
    /// Mean modeled latency of replica-served hits, seconds (the constant
    /// [`NodeTopology::local_latency`] whenever `local_hits > 0`).
    pub local_latency_seconds_mean: f64,
    /// Mean modeled latency over all remote operations, seconds.
    pub remote_latency_seconds_mean: f64,
    /// Simulated end of the charged traffic (last arrival or departure).
    pub horizon_seconds: f64,
}

impl DistributedStats {
    /// Nodes whose link saw at least one message.
    pub fn active_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.messages > 0).count()
    }

    /// Fraction of hits served from the replica set.
    pub fn local_hit_fraction(&self) -> f64 {
        let hits = self.local_hits + self.remote_hits;
        if hits == 0 {
            0.0
        } else {
            self.local_hits as f64 / hits as f64
        }
    }

    /// Spread between the busiest and idlest node's utilisation.
    pub fn utilisation_spread(&self) -> f64 {
        let max = self.nodes.iter().map(|n| n.utilisation).fold(0.0, f64::max);
        let min = self
            .nodes
            .iter()
            .map(|n| n.utilisation)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

/// Mutable network-model state, behind one mutex: the per-node link
/// queues, per-node counters, and the replica set. Taken only on the
/// ordered-commit paths (never on the parallel probe path), so probe
/// concurrency is untouched.
struct NetState {
    queues: Vec<LinkQueue>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    inserts: Vec<u64>,
    latency_sum: Vec<f64>,
    latency_max: Vec<f64>,
    latency_count: Vec<u64>,
    /// entry id → benefit density at promotion/refresh time.
    replicas: HashMap<u64, f64>,
    local_hits: u64,
    remote_hits: u64,
    promotions: u64,
    replica_evictions: u64,
    local_latency_sum: f64,
    last_arrival: f64,
}

impl NetState {
    fn new(nodes: usize, link: SharedLink) -> Self {
        Self {
            queues: (0..nodes).map(|_| LinkQueue::new(link)).collect(),
            hits: vec![0; nodes],
            misses: vec![0; nodes],
            inserts: vec![0; nodes],
            latency_sum: vec![0.0; nodes],
            latency_max: vec![0.0; nodes],
            latency_count: vec![0; nodes],
            replicas: HashMap::new(),
            local_hits: 0,
            remote_hits: 0,
            promotions: 0,
            replica_evictions: 0,
            local_latency_sum: 0.0,
            last_arrival: 0.0,
        }
    }

    /// Charges one remote message and folds it into the node's aggregates.
    fn charge(&mut self, node: usize, arrival: f64, bytes: f64) -> f64 {
        self.last_arrival = self.last_arrival.max(arrival);
        let latency = self.queues[node].charge(arrival, bytes);
        self.latency_sum[node] += latency;
        self.latency_max[node] = self.latency_max[node].max(latency);
        self.latency_count[node] += 1;
        latency
    }

    /// Promotes `entry` (ranked `density`) into the bounded replica set,
    /// dropping the lowest-density replica (ties on the smaller id) when
    /// the budget is full. Deterministic: runs on the ordered-commit path.
    fn promote(&mut self, entry: u64, density: f64, budget: usize) {
        if budget == 0 || self.replicas.contains_key(&entry) {
            return;
        }
        if self.replicas.len() >= budget {
            if let Some((&victim, _)) = self
                .replicas
                .iter()
                .min_by(|(ae, ad), (be, bd)| ad.total_cmp(bd).then(ae.cmp(be)))
            {
                self.replicas.remove(&victim);
                self.replica_evictions += 1;
            }
        }
        self.replicas.insert(entry, density);
        self.promotions += 1;
    }
}

/// A [`MemoStore`] spread over N simulated memory nodes: semantics
/// delegated to a [`ShardedMemoDb`] (bit-identical hits), remote traffic
/// charged through per-node [`LinkQueue`]s, hot entries replicated by
/// benefit density. See the module docs for the full picture.
///
/// ```
/// use mlr_memo::{
///     DistributedMemoDb, EncoderConfig, MemoDbConfig, MemoStore, NodeTopology, ShardedMemoDb,
/// };
/// use std::sync::Arc;
///
/// let inner = Arc::new(ShardedMemoDb::with_shards(
///     MemoDbConfig::default(),
///     EncoderConfig {
///         input_grid: 8,
///         conv1_filters: 2,
///         conv2_filters: 4,
///         embedding_dim: 8,
///         learning_rate: 1e-3,
///     },
///     1,
///     16,
/// ));
/// let store = DistributedMemoDb::new(inner, NodeTopology::with_nodes(4));
/// // 16 stripes spread evenly over 4 equal-capacity nodes...
/// assert_eq!(store.placement().len(), 16);
/// let stats = store.distributed_stats();
/// assert_eq!(stats.nodes.len(), 4);
/// assert!(stats.nodes.iter().all(|n| n.stripes == 4));
/// // ...and the store serves `MemoStore` callers like any other.
/// assert!(store.is_empty());
/// ```
pub struct DistributedMemoDb {
    inner: Arc<ShardedMemoDb>,
    topology: NodeTopology,
    /// stripe → owning node, fixed at construction.
    placement: Vec<usize>,
    net: Mutex<NetState>,
}

impl DistributedMemoDb {
    /// Spreads `inner`'s stripes over `topology.nodes` equal-capacity
    /// nodes.
    ///
    /// # Panics
    /// Panics when `topology.nodes` is zero.
    pub fn new(inner: Arc<ShardedMemoDb>, topology: NodeTopology) -> Self {
        let capacities = vec![topology.interconnect.injection_gbps; topology.nodes];
        Self::with_capacities(inner, topology, &capacities)
    }

    /// Spreads `inner`'s stripes over nodes with explicit per-node link
    /// capacities (the network-cost-aware placement assigns faster links
    /// proportionally more stripes).
    ///
    /// # Panics
    /// Panics when `capacities.len() != topology.nodes` or is empty.
    pub fn with_capacities(
        inner: Arc<ShardedMemoDb>,
        topology: NodeTopology,
        capacities: &[f64],
    ) -> Self {
        assert_eq!(
            capacities.len(),
            topology.nodes,
            "one capacity per memory node"
        );
        let placement = place_stripes(inner.shard_count(), capacities);
        let link = SharedLink::from_interconnect(&topology.interconnect);
        Self {
            inner,
            topology,
            placement,
            net: Mutex::new(NetState::new(capacities.len(), link)),
        }
    }

    /// The wrapped sharded store.
    pub fn inner(&self) -> &Arc<ShardedMemoDb> {
        &self.inner
    }

    /// The node topology.
    pub fn topology(&self) -> &NodeTopology {
        &self.topology
    }

    /// The stripe→node placement map.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The node owning the stripe of `(op, loc)`.
    pub fn node_of(&self, op: FftOpKind, loc: usize) -> usize {
        self.placement[self.inner.stripe_of(op, loc)]
    }

    /// Simulated arrival time of an operation committed now.
    fn arrival(&self) -> f64 {
        self.inner.current_tick() as f64 * self.topology.tick_seconds
    }

    /// Charges a served hit: local when the entry is replicated, a value
    /// round trip over the owning node's link otherwise; then refreshes the
    /// replica set from the entry's post-commit metadata.
    fn charge_hit(&self, op: FftOpKind, loc: usize, entry: u64, meta: Option<EntryMeta>) {
        let stripe = self.inner.stripe_of(op, loc);
        let node = self.placement[stripe];
        let arrival = self.arrival();
        let mut net = self.net.lock();
        let density = meta.as_ref().map(CostAwarePolicy::benefit_density);
        if let Some(density) = net
            .replicas
            .contains_key(&entry)
            .then_some(density)
            .flatten()
        {
            net.local_hits += 1;
            net.local_latency_sum += self.topology.local_latency;
            net.replicas.insert(entry, density);
            return;
        }
        // The value size is the entry's resident bytes; an entry evicted
        // between probe and commit (its refresh is skipped) is modeled as a
        // query-only trip.
        let value_bytes = meta.as_ref().map_or(0.0, |m| m.bytes as f64);
        net.charge(node, arrival, self.topology.key_bytes + value_bytes);
        net.remote_hits += 1;
        net.hits[node] += 1;
        if let (Some(meta), Some(density)) = (meta, density) {
            if self.topology.promote_hits > 0 && meta.hits >= self.topology.promote_hits {
                net.promote(meta.id, density, self.topology.replica_budget);
            }
        }
    }

    /// Charges a miss: the coalesced query goes to the owning node and
    /// comes back empty.
    fn charge_miss(&self, op: FftOpKind, loc: usize) {
        let node = self.placement[self.inner.stripe_of(op, loc)];
        let arrival = self.arrival();
        let mut net = self.net.lock();
        net.charge(node, arrival, self.topology.key_bytes);
        net.misses[node] += 1;
    }

    /// A snapshot of the per-node accounting and replica-set state.
    pub fn distributed_stats(&self) -> DistributedStats {
        let net = self.net.lock();
        let shard_sizes = self.inner.shard_sizes();
        let nodes = net.queues.len();
        let mut entries = vec![0usize; nodes];
        for (stripe, &node) in self.placement.iter().enumerate() {
            entries[node] += shard_sizes.get(stripe).copied().unwrap_or(0);
        }
        let stripes = stripes_per_node(&self.placement, nodes);
        let horizon = net
            .queues
            .iter()
            .map(|q| q.next_free())
            .fold(net.last_arrival, f64::max);
        let node_stats = (0..nodes)
            .map(|node| NodeStats {
                node,
                stripes: stripes[node],
                entries: entries[node],
                hits: net.hits[node],
                misses: net.misses[node],
                inserts: net.inserts[node],
                messages: net.queues[node].messages(),
                bytes: net.queues[node].bytes(),
                busy_seconds: net.queues[node].busy_seconds(),
                utilisation: net.queues[node].utilisation(horizon),
                mean_latency_seconds: if net.latency_count[node] == 0 {
                    0.0
                } else {
                    net.latency_sum[node] / net.latency_count[node] as f64
                },
                max_latency_seconds: net.latency_max[node],
            })
            .collect();
        let remote_ops: u64 = net.latency_count.iter().sum();
        DistributedStats {
            nodes: node_stats,
            local_hits: net.local_hits,
            remote_hits: net.remote_hits,
            promotions: net.promotions,
            replica_evictions: net.replica_evictions,
            replicas: net.replicas.len(),
            local_latency_seconds_mean: if net.local_hits == 0 {
                0.0
            } else {
                net.local_latency_sum / net.local_hits as f64
            },
            remote_latency_seconds_mean: if remote_ops == 0 {
                0.0
            } else {
                net.latency_sum.iter().sum::<f64>() / remote_ops as f64
            },
            horizon_seconds: horizon,
        }
    }
}

impl MemoStore for DistributedMemoDb {
    fn config(&self) -> MemoDbConfig {
        self.inner.config()
    }

    fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.inner.encode(input)
    }

    fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        self.inner.encode_batch(inputs)
    }

    // Fingerprint consultation happens on the compute node before any
    // encode/probe traffic, so the distributed tier delegates without
    // charging network time.
    fn has_fingerprint_neighbor(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: &crate::fingerprint::ChunkFingerprint,
    ) -> bool {
        self.inner.has_fingerprint_neighbor(op, loc, fp)
    }

    fn note_fingerprint(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: crate::fingerprint::ChunkFingerprint,
    ) {
        self.inner.note_fingerprint(op, loc, fp);
    }

    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        let outcome = self.inner.query_with_key(op, loc, input, key, origin);
        match &outcome {
            QueryOutcome::Hit { key, .. } => {
                // The simple query path does not surface the serving entry's
                // id; recover it with a pure probe (no counters touched) so
                // the replica set sees this hit too. The probe runs after the
                // query committed, so the entry is resident.
                if let ProbeOutcome::Hit { entry, .. } =
                    self.inner.probe_with_key(op, loc, input, key, origin)
                {
                    let meta = self.inner.entry_meta(op, loc, entry);
                    self.charge_hit(op, loc, entry, meta);
                } else {
                    self.charge_hit(op, loc, u64::MAX, None);
                }
            }
            QueryOutcome::Miss { .. } => self.charge_miss(op, loc),
        }
        outcome
    }

    fn probe_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome {
        // Pure read, concurrent with other probes: no charging here — the
        // network model is fed from the deterministic ordered-commit paths.
        self.inner.probe_with_key(op, loc, input, key, origin)
    }

    fn commit_hit(
        &self,
        op: FftOpKind,
        loc: usize,
        entry: u64,
        entry_origin: Provenance,
        origin: Provenance,
    ) {
        self.inner.commit_hit(op, loc, entry, entry_origin, origin);
        let meta = self.inner.entry_meta(op, loc, entry);
        self.charge_hit(op, loc, entry, meta);
    }

    fn commit_miss(&self, op: FftOpKind, loc: usize) {
        self.inner.commit_miss(op, loc);
        self.charge_miss(op, loc);
    }

    fn reclaim_expired(&self, op: FftOpKind, loc: usize, entry: u64) {
        self.inner.reclaim_expired(op, loc, entry);
        let node = self.placement[self.inner.stripe_of(op, loc)];
        let arrival = self.arrival();
        let mut net = self.net.lock();
        net.charge(node, arrival, self.topology.control_bytes);
        net.replicas.remove(&entry);
    }

    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64 {
        let id = self
            .inner
            .insert(op, loc, input, key, output, origin, recompute_cost);
        let value_bytes = self
            .inner
            .entry_meta(op, loc, id)
            .map_or(0.0, |m| m.bytes as f64);
        let node = self.placement[self.inner.stripe_of(op, loc)];
        let arrival = self.arrival();
        let mut net = self.net.lock();
        net.charge(node, arrival, self.topology.key_bytes + value_bytes);
        net.inserts[node] += 1;
        id
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn value_bytes(&self) -> u64 {
        self.inner.value_bytes()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn advance_epoch(&self) -> u64 {
        self.inner.advance_epoch()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn comparisons_per_query(&self) -> f64 {
        self.inner.comparisons_per_query()
    }

    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        self.inner.train_encoder(samples, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use crate::eviction::recompute_cost_estimate;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn sharded(shards: usize) -> Arc<ShardedMemoDb> {
        Arc::new(ShardedMemoDb::with_shards(
            MemoDbConfig {
                tau: 0.9,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
            shards,
        ))
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    /// Drives `rounds` rounds of query-or-insert over 8 locations and
    /// returns the hit/miss sequence.
    fn run_schedule(store: &dyn MemoStore, rounds: usize) -> Vec<bool> {
        let mut outcomes = Vec::new();
        for round in 0..rounds {
            store.advance_epoch();
            for loc in 0..8usize {
                let input = chunk(1.0 + loc as f64, 0.1 * loc as f64, 128);
                let key = store.encode(&input);
                let origin = Provenance::solo(round + 1);
                match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin) {
                    QueryOutcome::Hit { .. } => outcomes.push(true),
                    QueryOutcome::Miss { key } => {
                        outcomes.push(false);
                        let cost = recompute_cost_estimate(FftOpKind::Fu2D, input.len());
                        store.insert(
                            FftOpKind::Fu2D,
                            loc,
                            &input,
                            key,
                            chunk(2.0, 0.5, 32),
                            origin,
                            cost,
                        );
                    }
                }
            }
        }
        outcomes
    }

    #[test]
    fn hits_match_the_wrapped_store_bit_for_bit() {
        let plain = sharded(16);
        let reference = run_schedule(plain.as_ref(), 4);
        assert!(reference.iter().any(|&h| h), "schedule never hits");
        for nodes in [1, 2, 4, 7] {
            let distributed = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(nodes));
            assert_eq!(
                run_schedule(&distributed, 4),
                reference,
                "{nodes} nodes diverged from the plain sharded store"
            );
            assert_eq!(distributed.len(), plain.len());
            assert_eq!(distributed.stats().hits, plain.stats().hits);
        }
    }

    #[test]
    fn traffic_spreads_over_nodes_and_replicas_go_local() {
        let distributed = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        let _ = run_schedule(&distributed, 6);
        let stats = distributed.distributed_stats();
        assert!(
            stats.active_nodes() >= 2,
            "all traffic on one node: {stats:?}"
        );
        assert!(stats.remote_hits > 0, "no remote hits charged");
        assert!(
            stats.local_hits > 0,
            "promotion never produced a local hit: {stats:?}"
        );
        assert!(stats.promotions > 0);
        assert!(stats.local_hit_fraction() > 0.0);
        // Remote operations pay at least the link's base latency, which the
        // topology's local replica latency deliberately undercuts.
        assert!(
            stats.remote_latency_seconds_mean > stats.local_latency_seconds_mean,
            "remote ops must cost strictly more than replica hits"
        );
        let total_entries: usize = stats.nodes.iter().map(|n| n.entries).sum();
        assert_eq!(total_entries, distributed.len());
        assert_eq!(
            stats.nodes.iter().map(|n| n.stripes).sum::<usize>(),
            distributed.inner().shard_count()
        );
    }

    #[test]
    fn placement_is_deterministic_and_capacity_weighted() {
        let a = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        let b = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        assert_eq!(a.placement(), b.placement());
        // A node with a 3× link takes 3× the stripes.
        let skewed = DistributedMemoDb::with_capacities(
            sharded(16),
            NodeTopology::with_nodes(2),
            &[3.0, 1.0],
        );
        let counts = stripes_per_node(skewed.placement(), 2);
        assert_eq!(counts, vec![12, 4]);
    }

    #[test]
    fn replica_budget_stays_bounded() {
        let topology = NodeTopology {
            replica_budget: 2,
            promote_hits: 1,
            ..NodeTopology::with_nodes(2)
        };
        let distributed = DistributedMemoDb::new(sharded(8), topology);
        let _ = run_schedule(&distributed, 5);
        let stats = distributed.distributed_stats();
        assert!(stats.replicas <= 2, "replica budget violated: {stats:?}");
        assert!(
            stats.replica_evictions > 0,
            "8 hot entries through a 2-replica budget must evict"
        );
    }
}
