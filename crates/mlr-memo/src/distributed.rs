//! The distributed memo tier: one logical store spread over N simulated
//! memory nodes.
//!
//! The paper's deployment (Figure 6, §5) keeps the memoization database on
//! dedicated memory nodes behind Slingshot links; [`DistributedMemoDb`] is
//! that deployment in simulation. It wraps a [`ShardedMemoDb`] and spreads
//! the store's lock stripes over `N` simulated nodes with a deterministic,
//! network-cost-aware placement (see `mlr_cluster::placement`): every
//! stripe has one owning node, and every remote operation — a hit shipping
//! a value back, a miss answering a query, an insert shipping a value up —
//! is charged through the owning node's [`LinkQueue`], `mlr-sim`'s
//! deterministic shared-link contention model.
//!
//! # Bit-identity contract
//!
//! Store *semantics* — which probes hit, which entries are resident, what
//! the counters say — are delegated 1:1 to the wrapped [`ShardedMemoDb`].
//! The distributed tier adds only modeled latency and per-node accounting
//! on top, so given the same schedule it returns bit-identical hits to the
//! plain sharded store, for any node count and any placement. The
//! `tests/distributed.rs` suite pins this.
//!
//! # Hot-entry replication
//!
//! Entries that keep getting hit are promoted into a bounded replica set —
//! the model of the paper's compute-side caching of hot values. Promotion
//! is driven by the cost-aware eviction metadata already on [`EntryMeta`]:
//! once an entry has served [`NodeTopology::promote_hits`] hits it is
//! replicated, ranked by [`CostAwarePolicy::benefit_density`], and when the
//! replica budget is full the lowest-density replica (ties on the smaller
//! entry id) is dropped. A hit on a replicated entry costs
//! [`NodeTopology::local_latency`] instead of a round trip over the owning
//! node's link — which is what bends the latency CDF's head down while
//! remote probes populate its tail.
//!
//! # Fault injection
//!
//! Armed with a [`FaultPlan`] (see [`DistributedMemoDb::with_faults`]), the
//! tier consumes a seeded, tick-ordered schedule of node crashes, link
//! degradations, and slow-stripe stalls:
//!
//! * An access owned by a *down* node resolves as a deterministic miss
//!   (the caller recomputes the FFT — mLR's always-correct degradation
//!   path) **unless** the serving entry sits in the local replica set, in
//!   which case the hit survives (a *replica-saved* hit).
//! * When a crashed node restarts, its stripes' resident entries are
//!   purged wholesale — warm-up starts from scratch. Placement is never
//!   recomputed; liveness is consulted through a [`NodeHealth`] view.
//! * Link degradations and stripe stalls only inflate the modeled charge
//!   latency ([`LinkQueue::charge_degraded`]); they never change which
//!   probes hit.
//!
//! Every fault decision is a pure function of the plan and the store's
//! logical tick — frozen for the whole parallel probe phase, advanced only
//! on ordered commits — so a faulted run is bit-replayable across thread
//! counts, and its [`FaultStats`] are identical too. No wall clock is
//! consulted anywhere on a fault path.

use crate::db::{MemoDbConfig, QueryOutcome};
use crate::eviction::{CostAwarePolicy, EntryMeta};
use crate::sharded::ShardedMemoDb;
use crate::store::{MemoStore, ProbeOutcome, Provenance, StoreStats};
use mlr_cluster::placement::{place_stripes, stripes_per_node};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use mlr_sim::faults::{FaultClock, FaultEvent, FaultPlan, LinkState, NodeHealth};
use mlr_sim::hardware::InterconnectSpec;
use mlr_sim::network::{LinkQueue, SharedLink};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Topology of the simulated memory-node cluster. `Copy`, so it can ride
/// in `RuntimeConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTopology {
    /// Number of simulated memory nodes the stripes are spread over.
    pub nodes: usize,
    /// Per-node injection link the remote operations are charged through.
    pub interconnect: InterconnectSpec,
    /// Maximum number of hot entries kept in the replica set.
    pub replica_budget: usize,
    /// Hits after which an entry is promoted into the replica set
    /// (`0` disables replication).
    pub promote_hits: u64,
    /// Modeled cost of a hit served from a local replica, seconds.
    pub local_latency: f64,
    /// Simulated seconds per store-clock tick — how the deterministic op
    /// ticks map to link arrival times.
    pub tick_seconds: f64,
    /// Modeled query payload (coalesced key batch), bytes.
    pub key_bytes: f64,
    /// Modeled control-message payload (expiry reclaim), bytes.
    pub control_bytes: f64,
}

impl Default for NodeTopology {
    /// Four memory nodes behind Slingshot-11 links, microsecond ticks,
    /// 1 KiB coalesced queries, 400 ns local replica hits, promotion after
    /// 2 hits into a 64-entry replica set.
    fn default() -> Self {
        Self {
            nodes: 4,
            interconnect: InterconnectSpec::slingshot11(),
            replica_budget: 64,
            promote_hits: 2,
            local_latency: 0.4e-6,
            tick_seconds: 1e-6,
            key_bytes: 1024.0,
            control_bytes: 64.0,
        }
    }
}

impl NodeTopology {
    /// A topology with `nodes` memory nodes and the default link model.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }
}

/// One memory node's share of the distributed store's traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node index.
    pub node: usize,
    /// Lock stripes placed on the node.
    pub stripes: usize,
    /// Entries resident on the node's stripes.
    pub entries: usize,
    /// Remote hits served over the node's link.
    pub hits: u64,
    /// Misses answered over the node's link.
    pub misses: u64,
    /// Inserts shipped over the node's link.
    pub inserts: u64,
    /// Messages charged through the node's link (all kinds).
    pub messages: u64,
    /// Payload bytes charged through the node's link.
    pub bytes: f64,
    /// Seconds the node's link spent in service.
    pub busy_seconds: f64,
    /// Busy fraction of the simulated horizon, in `[0, 1]`.
    pub utilisation: f64,
    /// Mean modeled latency of the node's remote operations, seconds.
    pub mean_latency_seconds: f64,
    /// Largest modeled latency of the node's remote operations, seconds.
    pub max_latency_seconds: f64,
}

/// Aggregate view of the distributed tier: per-node link accounting plus
/// the replica set's effect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedStats {
    /// Per-node accounting, indexed by node.
    pub nodes: Vec<NodeStats>,
    /// Hits served from the local replica set (no link trip).
    pub local_hits: u64,
    /// Hits that crossed a node link.
    pub remote_hits: u64,
    /// Entries promoted into the replica set so far.
    pub promotions: u64,
    /// Replicas dropped to respect the replica budget.
    pub replica_evictions: u64,
    /// Entries currently replicated.
    pub replicas: usize,
    /// Mean modeled latency of replica-served hits, seconds (the constant
    /// [`NodeTopology::local_latency`] whenever `local_hits > 0`).
    pub local_latency_seconds_mean: f64,
    /// Mean modeled latency over all remote operations, seconds.
    pub remote_latency_seconds_mean: f64,
    /// Simulated end of the charged traffic (last arrival or departure).
    pub horizon_seconds: f64,
    /// Fault-injection accounting; `None` when no [`FaultPlan`] is armed.
    pub faults: Option<FaultStats>,
}

impl DistributedStats {
    /// Nodes whose link saw at least one message.
    pub fn active_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.messages > 0).count()
    }

    /// Fraction of hits served from the replica set.
    pub fn local_hit_fraction(&self) -> f64 {
        let hits = self.local_hits + self.remote_hits;
        if hits == 0 {
            0.0
        } else {
            self.local_hits as f64 / hits as f64
        }
    }

    /// Spread between the busiest and idlest node's utilisation.
    pub fn utilisation_spread(&self) -> f64 {
        let max = self.nodes.iter().map(|n| n.utilisation).fold(0.0, f64::max);
        let min = self
            .nodes
            .iter()
            .map(|n| n.utilisation)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

/// What the fault layer observed: how much the injected schedule actually
/// degraded the store, and how fast it came back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Seed of the active [`FaultPlan`].
    pub plan_seed: u64,
    /// Scheduled events in the plan.
    pub plan_events: usize,
    /// Node crashes applied so far.
    pub crashes: u64,
    /// Node restarts applied so far.
    pub restarts: u64,
    /// Entries purged because their node restarted after a crash.
    pub lost_entries: u64,
    /// Hits on a down node that survived via the local replica set.
    pub replica_saved_hits: u64,
    /// Accesses forced down the recompute path by a down node (would-be
    /// hits and expired-entry confirmations degraded to plain misses).
    pub degraded_accesses: u64,
    /// Logical ticks from the most recent restart until the post-restart
    /// hit rate (over at least 8 accesses) reached half the pre-crash hit
    /// rate; `None` while not yet recovered (or before any restart).
    pub recovery_ticks_to_half_hit_rate: Option<u64>,
}

/// Sequential fault bookkeeping, mutated only on ordered-commit paths.
struct FaultSeq {
    /// Cursor into the plan's events: everything before it is applied.
    next_event: usize,
    /// Store-wide hit rate snapshotted when the last crash applied.
    pre_crash_hit_rate: f64,
    /// Tick of the most recent restart, once one applied.
    restart_tick: Option<u64>,
    /// Accesses and hits observed since the most recent restart.
    post_hits: u64,
    post_queries: u64,
    /// Ticks from restart to half the pre-crash hit rate, once reached.
    recovery_ticks: Option<u64>,
}

/// Fault-injection state riding next to the network model. Counters that
/// the parallel probe path touches are atomics; everything with ordering
/// requirements lives in [`FaultSeq`] behind its own mutex and is only
/// taken on ordered-commit paths (lock order: `seq` before `net`).
struct FaultState {
    plan: FaultPlan,
    clock: FaultClock,
    /// Read-optimised mirror of the replica-set ids for the probe path —
    /// probes must never take the `net` mutex. Rewritten (commit paths
    /// only) whenever replica membership changes.
    replica_ids: RwLock<HashSet<u64>>,
    degraded_accesses: AtomicU64,
    replica_saved_hits: AtomicU64,
    lost_entries: AtomicU64,
    crashes: AtomicU64,
    restarts: AtomicU64,
    seq: Mutex<FaultSeq>,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            clock: FaultClock::new(),
            replica_ids: RwLock::new(HashSet::new()),
            degraded_accesses: AtomicU64::new(0),
            replica_saved_hits: AtomicU64::new(0),
            lost_entries: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            seq: Mutex::new(FaultSeq {
                next_event: 0,
                pre_crash_hit_rate: 0.0,
                restart_tick: None,
                post_hits: 0,
                post_queries: 0,
                recovery_ticks: None,
            }),
        }
    }
}

/// Mutable network-model state, behind one mutex: the per-node link
/// queues, per-node counters, and the replica set. Taken only on the
/// ordered-commit paths (never on the parallel probe path), so probe
/// concurrency is untouched.
struct NetState {
    queues: Vec<LinkQueue>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    inserts: Vec<u64>,
    latency_sum: Vec<f64>,
    latency_max: Vec<f64>,
    latency_count: Vec<u64>,
    /// entry id → benefit density at promotion/refresh time.
    replicas: HashMap<u64, f64>,
    local_hits: u64,
    remote_hits: u64,
    promotions: u64,
    replica_evictions: u64,
    local_latency_sum: f64,
    last_arrival: f64,
}

impl NetState {
    fn new(nodes: usize, link: SharedLink) -> Self {
        Self {
            queues: (0..nodes).map(|_| LinkQueue::new(link)).collect(),
            hits: vec![0; nodes],
            misses: vec![0; nodes],
            inserts: vec![0; nodes],
            latency_sum: vec![0.0; nodes],
            latency_max: vec![0.0; nodes],
            latency_count: vec![0; nodes],
            replicas: HashMap::new(),
            local_hits: 0,
            remote_hits: 0,
            promotions: 0,
            replica_evictions: 0,
            local_latency_sum: 0.0,
            last_arrival: 0.0,
        }
    }

    /// Charges one remote message — over a degraded link when the fault
    /// plan says so — and folds it into the node's aggregates.
    fn charge(&mut self, node: usize, arrival: f64, bytes: f64, eff: LinkState) -> f64 {
        self.last_arrival = self.last_arrival.max(arrival);
        let latency = self.queues[node].charge_degraded(
            arrival,
            bytes,
            eff.capacity_factor,
            eff.extra_latency,
        );
        self.latency_sum[node] += latency;
        self.latency_max[node] = self.latency_max[node].max(latency);
        self.latency_count[node] += 1;
        latency
    }

    /// Promotes `entry` (ranked `density`) into the bounded replica set,
    /// dropping the lowest-density replica (ties on the smaller id) when
    /// the budget is full. Deterministic: runs on the ordered-commit path.
    fn promote(&mut self, entry: u64, density: f64, budget: usize) {
        if budget == 0 || self.replicas.contains_key(&entry) {
            return;
        }
        if self.replicas.len() >= budget {
            if let Some((&victim, _)) = self
                .replicas
                .iter()
                .min_by(|(ae, ad), (be, bd)| ad.total_cmp(bd).then(ae.cmp(be)))
            {
                self.replicas.remove(&victim);
                self.replica_evictions += 1;
            }
        }
        self.replicas.insert(entry, density);
        self.promotions += 1;
    }
}

/// A [`MemoStore`] spread over N simulated memory nodes: semantics
/// delegated to a [`ShardedMemoDb`] (bit-identical hits), remote traffic
/// charged through per-node [`LinkQueue`]s, hot entries replicated by
/// benefit density. See the module docs for the full picture.
///
/// ```
/// use mlr_memo::{
///     DistributedMemoDb, EncoderConfig, MemoDbConfig, MemoStore, NodeTopology, ShardedMemoDb,
/// };
/// use std::sync::Arc;
///
/// let inner = Arc::new(ShardedMemoDb::with_shards(
///     MemoDbConfig::default(),
///     EncoderConfig {
///         input_grid: 8,
///         conv1_filters: 2,
///         conv2_filters: 4,
///         embedding_dim: 8,
///         learning_rate: 1e-3,
///     },
///     1,
///     16,
/// ));
/// let store = DistributedMemoDb::new(inner, NodeTopology::with_nodes(4));
/// // 16 stripes spread evenly over 4 equal-capacity nodes...
/// assert_eq!(store.placement().len(), 16);
/// let stats = store.distributed_stats();
/// assert_eq!(stats.nodes.len(), 4);
/// assert!(stats.nodes.iter().all(|n| n.stripes == 4));
/// // ...and the store serves `MemoStore` callers like any other.
/// assert!(store.is_empty());
/// ```
pub struct DistributedMemoDb {
    inner: Arc<ShardedMemoDb>,
    topology: NodeTopology,
    /// stripe → owning node, fixed at construction.
    placement: Vec<usize>,
    net: Mutex<NetState>,
    /// Fault-injection layer; `None` (the default) is a perfect cluster.
    fault: Option<FaultState>,
}

impl DistributedMemoDb {
    /// Spreads `inner`'s stripes over `topology.nodes` equal-capacity
    /// nodes.
    ///
    /// # Panics
    /// Panics when `topology.nodes` is zero.
    pub fn new(inner: Arc<ShardedMemoDb>, topology: NodeTopology) -> Self {
        let capacities = vec![topology.interconnect.injection_gbps; topology.nodes];
        Self::with_capacities(inner, topology, &capacities)
    }

    /// Spreads `inner`'s stripes over nodes with explicit per-node link
    /// capacities (the network-cost-aware placement assigns faster links
    /// proportionally more stripes).
    ///
    /// # Panics
    /// Panics when `capacities.len() != topology.nodes` or is empty.
    pub fn with_capacities(
        inner: Arc<ShardedMemoDb>,
        topology: NodeTopology,
        capacities: &[f64],
    ) -> Self {
        assert_eq!(
            capacities.len(),
            topology.nodes,
            "one capacity per memory node"
        );
        let placement = place_stripes(inner.shard_count(), capacities);
        let link = SharedLink::from_interconnect(&topology.interconnect);
        Self {
            inner,
            topology,
            placement,
            net: Mutex::new(NetState::new(capacities.len(), link)),
            fault: None,
        }
    }

    /// Arms the tier with a fault-injection plan: equal-capacity placement
    /// plus the deterministic crash/degrade/stall schedule described in the
    /// module docs. An empty plan behaves exactly like [`Self::new`].
    ///
    /// # Panics
    /// Panics when `topology.nodes` is zero.
    pub fn with_faults(inner: Arc<ShardedMemoDb>, topology: NodeTopology, plan: FaultPlan) -> Self {
        let mut db = Self::new(inner, topology);
        db.fault = Some(FaultState::new(plan));
        db
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Per-node liveness at the store's current logical tick. Without an
    /// armed plan every node is up. Placement never changes on a crash —
    /// this view is how consumers learn an owner cannot currently serve.
    pub fn node_health(&self) -> NodeHealth {
        let tick = self.inner.current_tick();
        match &self.fault {
            Some(f) => f.plan.health_at(self.topology.nodes, tick),
            None => FaultPlan::new(0).health_at(self.topology.nodes, tick),
        }
    }

    /// Fault accounting so far; `None` when no plan is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        let fault = self.fault.as_ref()?;
        let seq = fault.seq.lock();
        Some(FaultStats {
            plan_seed: fault.plan.seed(),
            plan_events: fault.plan.len(),
            crashes: fault.crashes.load(Ordering::Relaxed),
            restarts: fault.restarts.load(Ordering::Relaxed),
            lost_entries: fault.lost_entries.load(Ordering::Relaxed),
            replica_saved_hits: fault.replica_saved_hits.load(Ordering::Relaxed),
            degraded_accesses: fault.degraded_accesses.load(Ordering::Relaxed),
            recovery_ticks_to_half_hit_rate: seq.recovery_ticks,
        })
    }

    /// True when the fault plan marks the owner of `(op, loc)` down at the
    /// store's current tick — a pure read, safe on the probe path.
    fn owner_down(&self, op: FftOpKind, loc: usize) -> Option<(&FaultState, usize)> {
        let fault = self.fault.as_ref()?;
        let node = self.placement[self.inner.stripe_of(op, loc)];
        fault
            .plan
            .node_down_at(node, self.inner.current_tick())
            .then_some((fault, node))
    }

    /// Effective link parameters toward `node` for traffic on `stripe`:
    /// the plan's link degradation plus any stripe stall, nominal without
    /// a plan.
    fn effective_link(&self, stripe: usize, node: usize) -> LinkState {
        match &self.fault {
            Some(f) => {
                let tick = self.inner.current_tick();
                let link = f.plan.link_state_at(node, tick);
                LinkState {
                    capacity_factor: link.capacity_factor,
                    extra_latency: link.extra_latency + f.plan.stripe_stall_at(stripe, tick),
                }
            }
            None => LinkState::NOMINAL,
        }
    }

    /// Applies every scheduled fault event up to the store's current tick
    /// (ordered-commit paths only; `seq` is taken before `net`). A restart
    /// purges the node's stripes — the crash itself is pure bookkeeping,
    /// since down-ness is answered directly from the plan — and optionally
    /// folds one access into the recovery curve.
    fn fault_tick(&self, access_hit: Option<bool>) {
        let Some(fault) = &self.fault else { return };
        let tick = self.inner.current_tick();
        fault.clock.advance_to(tick);
        let mut seq = fault.seq.lock();
        while seq.next_event < fault.plan.events().len() {
            let timed = fault.plan.events()[seq.next_event];
            if timed.tick > tick {
                break;
            }
            seq.next_event += 1;
            match timed.event {
                FaultEvent::NodeCrash { .. } => {
                    fault.crashes.fetch_add(1, Ordering::Relaxed);
                    let stats = self.inner.stats();
                    seq.pre_crash_hit_rate = if stats.queries == 0 {
                        0.0
                    } else {
                        stats.hits as f64 / stats.queries as f64
                    };
                    seq.restart_tick = None;
                    seq.recovery_ticks = None;
                }
                FaultEvent::NodeRestart { node } => {
                    fault.restarts.fetch_add(1, Ordering::Relaxed);
                    let mut purged = Vec::new();
                    for (stripe, &owner) in self.placement.iter().enumerate() {
                        if owner == node {
                            purged.extend(self.inner.purge_stripe(stripe));
                        }
                    }
                    fault
                        .lost_entries
                        .fetch_add(purged.len() as u64, Ordering::Relaxed);
                    if !purged.is_empty() {
                        let mut net = self.net.lock();
                        for id in &purged {
                            net.replicas.remove(id);
                        }
                        *fault.replica_ids.write() = net.replicas.keys().copied().collect();
                    }
                    seq.restart_tick = Some(timed.tick);
                    seq.post_hits = 0;
                    seq.post_queries = 0;
                }
                // Link and stripe events need no side effects: their state
                // is answered pure from the plan at charge time.
                FaultEvent::LinkDegrade { .. }
                | FaultEvent::LinkRestore { .. }
                | FaultEvent::StripeStall { .. }
                | FaultEvent::StripeRecover { .. } => {}
            }
        }
        if let Some(hit) = access_hit {
            if seq.restart_tick.is_some() && seq.recovery_ticks.is_none() {
                seq.post_queries += 1;
                seq.post_hits += u64::from(hit);
                let rate = seq.post_hits as f64 / seq.post_queries as f64;
                if seq.post_queries >= 8 && rate >= seq.pre_crash_hit_rate / 2.0 {
                    seq.recovery_ticks = Some(tick.saturating_sub(seq.restart_tick.unwrap_or(0)));
                }
            }
        }
    }

    /// The wrapped sharded store.
    pub fn inner(&self) -> &Arc<ShardedMemoDb> {
        &self.inner
    }

    /// The node topology.
    pub fn topology(&self) -> &NodeTopology {
        &self.topology
    }

    /// The stripe→node placement map.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The node owning the stripe of `(op, loc)`.
    pub fn node_of(&self, op: FftOpKind, loc: usize) -> usize {
        self.placement[self.inner.stripe_of(op, loc)]
    }

    /// Simulated arrival time of an operation committed now.
    fn arrival(&self) -> f64 {
        self.inner.current_tick() as f64 * self.topology.tick_seconds
    }

    /// Charges a served hit: local when the entry is replicated, a value
    /// round trip over the owning node's link otherwise; then refreshes the
    /// replica set from the entry's post-commit metadata.
    fn charge_hit(&self, op: FftOpKind, loc: usize, entry: u64, meta: Option<EntryMeta>) {
        let stripe = self.inner.stripe_of(op, loc);
        let node = self.placement[stripe];
        let arrival = self.arrival();
        let eff = self.effective_link(stripe, node);
        let down = self
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.node_down_at(node, self.inner.current_tick()));
        let mut net = self.net.lock();
        let density = meta.as_ref().map(CostAwarePolicy::benefit_density);
        if let Some(density) = net
            .replicas
            .contains_key(&entry)
            .then_some(density)
            .flatten()
        {
            net.local_hits += 1;
            net.local_latency_sum += self.topology.local_latency;
            net.replicas.insert(entry, density);
            return;
        }
        // The value size is the entry's resident bytes; an entry evicted
        // between probe and commit (its refresh is skipped) is modeled as a
        // query-only trip.
        let value_bytes = meta.as_ref().map_or(0.0, |m| m.bytes as f64);
        if down {
            // The owner died between the probe and this commit (or the
            // replica lapsed); the payload is already on the compute side,
            // so count the hit but charge no traffic to a dead link.
            net.remote_hits += 1;
            net.hits[node] += 1;
        } else {
            net.charge(node, arrival, self.topology.key_bytes + value_bytes, eff);
            net.remote_hits += 1;
            net.hits[node] += 1;
        }
        // Promotion is a compute-side action on a value that already
        // arrived, so it applies even when the owner just went down.
        if let (Some(meta), Some(density)) = (meta, density) {
            if self.topology.promote_hits > 0 && meta.hits >= self.topology.promote_hits {
                net.promote(meta.id, density, self.topology.replica_budget);
                if let Some(fault) = &self.fault {
                    *fault.replica_ids.write() = net.replicas.keys().copied().collect();
                }
            }
        }
    }

    /// Charges a miss: the coalesced query goes to the owning node and
    /// comes back empty. A miss owned by a down node is counted but not
    /// charged — there is no link to carry it.
    fn charge_miss(&self, op: FftOpKind, loc: usize) {
        let stripe = self.inner.stripe_of(op, loc);
        let node = self.placement[stripe];
        let arrival = self.arrival();
        let eff = self.effective_link(stripe, node);
        let down = self
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.node_down_at(node, self.inner.current_tick()));
        let mut net = self.net.lock();
        if !down {
            net.charge(node, arrival, self.topology.key_bytes, eff);
        }
        net.misses[node] += 1;
    }

    /// A snapshot of the per-node accounting and replica-set state.
    pub fn distributed_stats(&self) -> DistributedStats {
        // `seq` (inside fault_stats) strictly before `net` — the crate-wide
        // lock order for this pair.
        let faults = self.fault_stats();
        let net = self.net.lock();
        let shard_sizes = self.inner.shard_sizes();
        let nodes = net.queues.len();
        let mut entries = vec![0usize; nodes];
        for (stripe, &node) in self.placement.iter().enumerate() {
            entries[node] += shard_sizes.get(stripe).copied().unwrap_or(0);
        }
        let stripes = stripes_per_node(&self.placement, nodes);
        let horizon = net
            .queues
            .iter()
            .map(|q| q.next_free())
            .fold(net.last_arrival, f64::max);
        let node_stats = (0..nodes)
            .map(|node| NodeStats {
                node,
                stripes: stripes[node],
                entries: entries[node],
                hits: net.hits[node],
                misses: net.misses[node],
                inserts: net.inserts[node],
                messages: net.queues[node].messages(),
                bytes: net.queues[node].bytes(),
                busy_seconds: net.queues[node].busy_seconds(),
                utilisation: net.queues[node].utilisation(horizon),
                mean_latency_seconds: if net.latency_count[node] == 0 {
                    0.0
                } else {
                    net.latency_sum[node] / net.latency_count[node] as f64
                },
                max_latency_seconds: net.latency_max[node],
            })
            .collect();
        let remote_ops: u64 = net.latency_count.iter().sum();
        DistributedStats {
            faults,
            nodes: node_stats,
            local_hits: net.local_hits,
            remote_hits: net.remote_hits,
            promotions: net.promotions,
            replica_evictions: net.replica_evictions,
            replicas: net.replicas.len(),
            local_latency_seconds_mean: if net.local_hits == 0 {
                0.0
            } else {
                net.local_latency_sum / net.local_hits as f64
            },
            remote_latency_seconds_mean: if remote_ops == 0 {
                0.0
            } else {
                net.latency_sum.iter().sum::<f64>() / remote_ops as f64
            },
            horizon_seconds: horizon,
        }
    }
}

impl MemoStore for DistributedMemoDb {
    fn config(&self) -> MemoDbConfig {
        self.inner.config()
    }

    fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.inner.encode(input)
    }

    fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        self.inner.encode_batch(inputs)
    }

    // Fingerprint consultation happens on the compute node before any
    // encode/probe traffic, so the distributed tier delegates without
    // charging network time.
    fn has_fingerprint_neighbor(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: &crate::fingerprint::ChunkFingerprint,
    ) -> bool {
        self.inner.has_fingerprint_neighbor(op, loc, fp)
    }

    fn note_fingerprint(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: crate::fingerprint::ChunkFingerprint,
    ) {
        self.inner.note_fingerprint(op, loc, fp);
    }

    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.fault_tick(None);
        if let Some((fault, node)) = self.owner_down(op, loc) {
            // The owner is down: the access degrades to a deterministic
            // miss (the caller recomputes — always correct) unless the
            // serving entry is replicated locally.
            let saved = match self.inner.probe_with_key(op, loc, input, &key, origin) {
                ProbeOutcome::Hit { entry, .. } => fault.replica_ids.read().contains(&entry),
                _ => false,
            };
            if !saved {
                fault.degraded_accesses.fetch_add(1, Ordering::Relaxed);
                self.inner.commit_miss(op, loc);
                {
                    let mut net = self.net.lock();
                    net.misses[node] += 1;
                }
                self.fault_tick(Some(false));
                return QueryOutcome::Miss { key };
            }
            fault.replica_saved_hits.fetch_add(1, Ordering::Relaxed);
            // Fall through: the replica serves the hit.
        }
        let outcome = self.inner.query_with_key(op, loc, input, key, origin);
        self.fault_tick(Some(matches!(&outcome, QueryOutcome::Hit { .. })));
        match &outcome {
            QueryOutcome::Hit { key, .. } => {
                // The simple query path does not surface the serving entry's
                // id; recover it with a pure probe (no counters touched) so
                // the replica set sees this hit too. The probe runs after the
                // query committed, so the entry is resident.
                if let ProbeOutcome::Hit { entry, .. } =
                    self.inner.probe_with_key(op, loc, input, key, origin)
                {
                    let meta = self.inner.entry_meta(op, loc, entry);
                    self.charge_hit(op, loc, entry, meta);
                } else {
                    self.charge_hit(op, loc, u64::MAX, None);
                }
            }
            QueryOutcome::Miss { .. } => self.charge_miss(op, loc),
        }
        outcome
    }

    fn probe_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome {
        // Pure read, concurrent with other probes: no charging here — the
        // network model is fed from the deterministic ordered-commit paths.
        let outcome = self.inner.probe_with_key(op, loc, input, key, origin);
        let Some((fault, _)) = self.owner_down(op, loc) else {
            return outcome;
        };
        // The owner is down at the (frozen) probe tick. Stat counters here
        // are atomics over an interleaving-independent access set, so the
        // totals stay deterministic across thread counts.
        match outcome {
            ProbeOutcome::Hit { entry, .. } if fault.replica_ids.read().contains(&entry) => {
                fault.replica_saved_hits.fetch_add(1, Ordering::Relaxed);
                outcome
            }
            ProbeOutcome::Hit { .. } | ProbeOutcome::Expired { .. } => {
                // A would-be hit (or an expiry we cannot confirm against a
                // dead node) degrades to the recompute path.
                fault.degraded_accesses.fetch_add(1, Ordering::Relaxed);
                ProbeOutcome::Miss
            }
            ProbeOutcome::Miss => ProbeOutcome::Miss,
        }
    }

    fn commit_hit(
        &self,
        op: FftOpKind,
        loc: usize,
        entry: u64,
        entry_origin: Provenance,
        origin: Provenance,
    ) {
        self.fault_tick(Some(true));
        self.inner.commit_hit(op, loc, entry, entry_origin, origin);
        let meta = self.inner.entry_meta(op, loc, entry);
        self.charge_hit(op, loc, entry, meta);
    }

    fn commit_miss(&self, op: FftOpKind, loc: usize) {
        self.fault_tick(Some(false));
        self.inner.commit_miss(op, loc);
        self.charge_miss(op, loc);
    }

    fn reclaim_expired(&self, op: FftOpKind, loc: usize, entry: u64) {
        self.fault_tick(None);
        self.inner.reclaim_expired(op, loc, entry);
        let stripe = self.inner.stripe_of(op, loc);
        let node = self.placement[stripe];
        let arrival = self.arrival();
        let eff = self.effective_link(stripe, node);
        let mut net = self.net.lock();
        net.charge(node, arrival, self.topology.control_bytes, eff);
        if net.replicas.remove(&entry).is_some() {
            if let Some(fault) = &self.fault {
                *fault.replica_ids.write() = net.replicas.keys().copied().collect();
            }
        }
    }

    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64 {
        self.fault_tick(None);
        let id = self
            .inner
            .insert(op, loc, input, key, output, origin, recompute_cost);
        let value_bytes = self
            .inner
            .entry_meta(op, loc, id)
            .map_or(0.0, |m| m.bytes as f64);
        let stripe = self.inner.stripe_of(op, loc);
        let node = self.placement[stripe];
        let arrival = self.arrival();
        let eff = self.effective_link(stripe, node);
        let down = self
            .fault
            .as_ref()
            .is_some_and(|f| f.plan.node_down_at(node, self.inner.current_tick()));
        let mut net = self.net.lock();
        // An insert toward a down node is counted but not charged (no link
        // to carry it); the entry lands in the wrapped store regardless and
        // is purged with the rest of the stripe when the node restarts.
        if !down {
            net.charge(node, arrival, self.topology.key_bytes + value_bytes, eff);
        }
        net.inserts[node] += 1;
        id
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn value_bytes(&self) -> u64 {
        self.inner.value_bytes()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    fn advance_epoch(&self) -> u64 {
        self.inner.advance_epoch()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn comparisons_per_query(&self) -> f64 {
        self.inner.comparisons_per_query()
    }

    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        self.inner.train_encoder(samples, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use crate::eviction::recompute_cost_estimate;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn sharded(shards: usize) -> Arc<ShardedMemoDb> {
        Arc::new(ShardedMemoDb::with_shards(
            MemoDbConfig {
                tau: 0.9,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
            shards,
        ))
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    /// Drives `rounds` rounds of query-or-insert over 8 locations and
    /// returns the hit/miss sequence.
    fn run_schedule(store: &dyn MemoStore, rounds: usize) -> Vec<bool> {
        run_rounds(store, 0..rounds)
    }

    /// Like [`run_schedule`] but with explicit round numbers, so a schedule
    /// can continue where an earlier warm-up left off (the freshness gate
    /// refuses same-job same-iteration reuse).
    fn run_rounds(store: &dyn MemoStore, rounds: std::ops::Range<usize>) -> Vec<bool> {
        let mut outcomes = Vec::new();
        for round in rounds {
            store.advance_epoch();
            for loc in 0..8usize {
                let input = chunk(1.0 + loc as f64, 0.1 * loc as f64, 128);
                let key = store.encode(&input);
                let origin = Provenance::solo(round + 1);
                match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin) {
                    QueryOutcome::Hit { .. } => outcomes.push(true),
                    QueryOutcome::Miss { key } => {
                        outcomes.push(false);
                        let cost = recompute_cost_estimate(FftOpKind::Fu2D, input.len());
                        store.insert(
                            FftOpKind::Fu2D,
                            loc,
                            &input,
                            key,
                            chunk(2.0, 0.5, 32),
                            origin,
                            cost,
                        );
                    }
                }
            }
        }
        outcomes
    }

    #[test]
    fn hits_match_the_wrapped_store_bit_for_bit() {
        let plain = sharded(16);
        let reference = run_schedule(plain.as_ref(), 4);
        assert!(reference.iter().any(|&h| h), "schedule never hits");
        for nodes in [1, 2, 4, 7] {
            let distributed = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(nodes));
            assert_eq!(
                run_schedule(&distributed, 4),
                reference,
                "{nodes} nodes diverged from the plain sharded store"
            );
            assert_eq!(distributed.len(), plain.len());
            assert_eq!(distributed.stats().hits, plain.stats().hits);
        }
    }

    #[test]
    fn traffic_spreads_over_nodes_and_replicas_go_local() {
        let distributed = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        let _ = run_schedule(&distributed, 6);
        let stats = distributed.distributed_stats();
        assert!(
            stats.active_nodes() >= 2,
            "all traffic on one node: {stats:?}"
        );
        assert!(stats.remote_hits > 0, "no remote hits charged");
        assert!(
            stats.local_hits > 0,
            "promotion never produced a local hit: {stats:?}"
        );
        assert!(stats.promotions > 0);
        assert!(stats.local_hit_fraction() > 0.0);
        // Remote operations pay at least the link's base latency, which the
        // topology's local replica latency deliberately undercuts.
        assert!(
            stats.remote_latency_seconds_mean > stats.local_latency_seconds_mean,
            "remote ops must cost strictly more than replica hits"
        );
        let total_entries: usize = stats.nodes.iter().map(|n| n.entries).sum();
        assert_eq!(total_entries, distributed.len());
        assert_eq!(
            stats.nodes.iter().map(|n| n.stripes).sum::<usize>(),
            distributed.inner().shard_count()
        );
    }

    #[test]
    fn placement_is_deterministic_and_capacity_weighted() {
        let a = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        let b = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
        assert_eq!(a.placement(), b.placement());
        // A node with a 3× link takes 3× the stripes.
        let skewed = DistributedMemoDb::with_capacities(
            sharded(16),
            NodeTopology::with_nodes(2),
            &[3.0, 1.0],
        );
        let counts = stripes_per_node(skewed.placement(), 2);
        assert_eq!(counts, vec![12, 4]);
    }

    #[test]
    fn down_node_degrades_to_miss_and_restart_purges() {
        let inner = sharded(16);
        // Warm through the bare inner store: round 0 inserts, round 1 hits.
        let warm = run_rounds(inner.as_ref() as &dyn MemoStore, 0..2);
        assert!(warm[8..].iter().all(|&h| h), "warm-up must end hitting");
        let resident_before = inner.len();
        assert!(resident_before > 0);
        // One node owns everything; crash it for the next round and restart
        // it far enough out that the purge lands mid-schedule.
        let t = inner.current_tick();
        let plan = FaultPlan::new(3).crash_window(0, t, t + 12);
        let store = DistributedMemoDb::with_faults(inner, NodeTopology::with_nodes(1), plan);
        assert!(!store.node_health().is_up(0), "crash window must be open");
        let during = run_rounds(&store, 2..3);
        assert!(
            during.iter().all(|&h| !h),
            "a down node with no replicas must force misses: {during:?}"
        );
        let faults = store.fault_stats().expect("plan armed");
        assert_eq!(faults.crashes, 1);
        assert_eq!(faults.restarts, 1);
        assert!(faults.degraded_accesses > 0, "{faults:?}");
        assert!(
            faults.lost_entries as usize >= resident_before,
            "restart must lose at least the warm entries: {faults:?}"
        );
        assert_eq!(faults.replica_saved_hits, 0);
        // Post-restart rounds rebuild the store and the hit rate recovers.
        let after = run_rounds(&store, 3..6);
        assert!(
            after[8..].iter().filter(|&&h| h).count() > 0,
            "recovery never produced a hit: {after:?}"
        );
        let faults = store.fault_stats().expect("plan armed");
        assert!(
            faults.recovery_ticks_to_half_hit_rate.is_some(),
            "recovery curve never reached half the pre-crash hit rate: {faults:?}"
        );
        let stats = store.distributed_stats();
        assert_eq!(stats.faults.as_ref().map(|f| f.crashes), Some(1));
    }

    #[test]
    fn replicated_entries_survive_a_crash() {
        // Promote after the first hit so the whole working set is
        // replicated before the crash window opens.
        let topology = NodeTopology {
            promote_hits: 1,
            ..NodeTopology::with_nodes(1)
        };
        // Rounds 0..2 run before the crash (insert, then hit-and-promote);
        // the miss round costs 16 ticks and the hit round 8, so the crash
        // at tick 24 covers round 2 exactly.
        let plan = FaultPlan::new(9).crash_window(0, 24, 100_000);
        let store = DistributedMemoDb::with_faults(sharded(16), topology, plan);
        let outcomes = run_rounds(&store, 0..3);
        assert!(
            outcomes[16..].iter().all(|&h| h),
            "replica set must keep serving through the crash: {outcomes:?}"
        );
        let faults = store.fault_stats().expect("plan armed");
        assert_eq!(faults.replica_saved_hits, 8, "{faults:?}");
        assert_eq!(faults.degraded_accesses, 0, "{faults:?}");
        let stats = store.distributed_stats();
        // Round 1 hits charge remote (promotion follows the charge); all of
        // round 2 is served from the replica set.
        assert_eq!(stats.local_hits, 8, "replica hits are local: {stats:?}");
        assert!(!store.node_health().is_up(0));
    }

    #[test]
    fn faulted_runs_replay_bit_identically() {
        let plan = FaultPlan::seeded(0xC0FFEE, 2, 16, 64);
        let run = || {
            let store = DistributedMemoDb::with_faults(
                sharded(16),
                NodeTopology::with_nodes(2),
                plan.clone(),
            );
            let outcomes = run_rounds(&store, 0..5);
            (outcomes, store.fault_stats().expect("plan armed"))
        };
        let (a_out, a_faults) = run();
        let (b_out, b_faults) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_faults, b_faults);
        assert!(
            a_faults.crashes > 0,
            "seeded plan never crashed inside the schedule: {a_faults:?}"
        );
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let reference = {
            let store = DistributedMemoDb::new(sharded(16), NodeTopology::with_nodes(4));
            run_schedule(&store, 4)
        };
        let store = DistributedMemoDb::with_faults(
            sharded(16),
            NodeTopology::with_nodes(4),
            FaultPlan::new(0),
        );
        assert_eq!(run_schedule(&store, 4), reference);
        let faults = store.fault_stats().expect("plan armed");
        assert_eq!(faults.degraded_accesses, 0);
        assert_eq!(faults.lost_entries, 0);
        assert_eq!(faults.crashes, 0);
    }

    #[test]
    fn replica_budget_stays_bounded() {
        let topology = NodeTopology {
            replica_budget: 2,
            promote_hits: 1,
            ..NodeTopology::with_nodes(2)
        };
        let distributed = DistributedMemoDb::new(sharded(8), topology);
        let _ = run_schedule(&distributed, 5);
        let stats = distributed.distributed_stats();
        assert!(stats.replicas <= 2, "replica budget violated: {stats:?}");
        assert!(
            stats.replica_evictions > 0,
            "8 hot entries through a 2-replica budget must evict"
        );
    }
}
