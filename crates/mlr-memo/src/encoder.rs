//! The CNN key encoder.
//!
//! The memoization database is searched with *encoded* keys: a chunk of
//! COMPLEX64 FFT input is split into real and imaginary planes, downsampled
//! onto a fixed spatial grid, and passed through a small convolutional
//! network whose output is a low-dimensional embedding (~60 values). The
//! network is trained with the paper's contrastive objective (Eq. 2):
//!
//! ```text
//! L = | ‖z_a − z_b‖₂ − ‖Ch_a − Ch_b‖₂ |
//! ```
//!
//! i.e. the embedding distance of two chunks should match the L2 distance of
//! the chunks themselves, so that nearest-neighbour search in embedding space
//! finds chunks that really are similar.
//!
//! The architecture follows the paper: a 5×5 convolution bank, a 3×3
//! convolution bank, and a fully connected projection; ReLU nonlinearities;
//! average pooling between stages. Everything — forward pass, backward pass,
//! SGD, INT8 weight quantisation for inference — is implemented here from
//! scratch (the paper's point that mainstream frameworks do not accept
//! COMPLEX64 inputs is moot once the re/im split is done explicitly).

use mlr_math::rng::seeded;
use mlr_math::Complex64;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Encoder hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Side length of the square grid chunks are resampled onto before the
    /// first convolution (the encoder input is `2 × grid × grid`).
    pub input_grid: usize,
    /// Number of filters in the first (5×5) convolution layer.
    pub conv1_filters: usize,
    /// Number of filters in the second (3×3) convolution layer.
    pub conv2_filters: usize,
    /// Output embedding dimension.
    pub embedding_dim: usize,
    /// SGD learning rate used by [`CnnEncoder::train_contrastive`].
    pub learning_rate: f64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        // The paper's encoder uses 32 and 64 filters; the defaults here are
        // smaller so the (CPU-only) reproduction trains in seconds, and tests
        // shrink them further. The embedding dimension matches the paper's
        // ~60-dimensional keys.
        Self {
            input_grid: 16,
            conv1_filters: 8,
            conv2_filters: 16,
            embedding_dim: 60,
            learning_rate: 1e-3,
        }
    }
}

/// A small CHW tensor used inside the encoder.
#[derive(Debug, Clone, Default, PartialEq)]
struct Tensor {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl Tensor {
    fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Re-dimensions the tensor in place, reusing its storage. Contents are
    /// unspecified afterwards; callers overwrite (or `fill`) every element.
    fn reshape(&mut self, c: usize, h: usize, w: usize) {
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.resize(c * h * w, 0.0);
    }

    #[inline]
    fn at(&self, c: usize, y: usize, x: usize) -> f64 {
        self.data[(c * self.h + y) * self.w + x]
    }

    #[inline]
    fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f64 {
        &mut self.data[(c * self.h + y) * self.w + x]
    }
}

/// One convolution layer (stride 1, zero padding preserving spatial size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ConvLayer {
    in_c: usize,
    out_c: usize,
    k: usize,
    /// Weights indexed `[out][in][ky][kx]`, flattened.
    weights: Vec<f64>,
    bias: Vec<f64>,
}

impl ConvLayer {
    fn new(in_c: usize, out_c: usize, k: usize, rng: &mut impl Rng) -> Self {
        let fan_in = (in_c * k * k) as f64;
        let scale = (2.0 / fan_in).sqrt();
        let weights = (0..out_c * in_c * k * k)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        Self {
            in_c,
            out_c,
            k,
            weights,
            bias: vec![0.0; out_c],
        }
    }

    fn forward(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.out_c, input.h, input.w);
        self.forward_into(input, &mut out);
        out
    }

    /// The forward pass into a caller-provided (scratch) tensor: identical
    /// arithmetic to [`ConvLayer::forward`], zero allocations in steady
    /// state. Every output element is written unconditionally.
    ///
    /// The loops are organised as a row sweep: each output row is filled
    /// with the bias, then every `(in-channel, ky, kx)` weight streams one
    /// contiguous multiply-add over the valid span of the row. For any
    /// single output element the contributions still arrive bias-first then
    /// in `(i, ky, kx)` lexicographic order with out-of-bounds taps skipped
    /// — exactly the accumulation order of the naive per-element loop — so
    /// the result is bit-identical while the inner loop is branch-free,
    /// contiguous and autovectorizable.
    fn forward_into(&self, input: &Tensor, out: &mut Tensor) {
        let pad = self.k / 2;
        let (h, w) = (input.h, input.w);
        out.reshape(self.out_c, h, w);
        for o in 0..self.out_c {
            let plane = o * h * w;
            out.data[plane..plane + h * w].fill(self.bias[o]);
            for y in 0..h {
                let orow = plane + y * w;
                for i in 0..self.in_c {
                    for ky in 0..self.k {
                        let yy = y as isize + ky as isize - pad as isize;
                        if yy < 0 || yy as usize >= h {
                            continue;
                        }
                        let irow = (i * h + yy as usize) * w;
                        let wrow =
                            &self.weights[((o * self.in_c + i) * self.k + ky) * self.k..][..self.k];
                        for (kx, &wgt) in wrow.iter().enumerate() {
                            // Valid output span: x + kx - pad ∈ [0, w).
                            let x0 = pad.saturating_sub(kx);
                            let x1 = (w + pad).saturating_sub(kx).min(w);
                            if x0 >= x1 {
                                continue;
                            }
                            let istart = irow + x0 + kx - pad;
                            let dst = &mut out.data[orow + x0..orow + x1];
                            let src = &input.data[istart..istart + (x1 - x0)];
                            for (a, b) in dst.iter_mut().zip(src) {
                                *a += wgt * b;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Backward pass: given dL/d(output), accumulates weight/bias gradients
    /// and returns dL/d(input).
    fn backward(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        grad_w: &mut [f64],
        grad_b: &mut [f64],
    ) -> Tensor {
        let pad = self.k / 2;
        let mut grad_in = Tensor::zeros(input.c, input.h, input.w);
        #[allow(clippy::needless_range_loop)] // `o` indexes grad_out, grad_w and grad_b alike
        for o in 0..self.out_c {
            for y in 0..input.h {
                for x in 0..input.w {
                    let go = grad_out.at(o, y, x);
                    if go == 0.0 {
                        continue;
                    }
                    grad_b[o] += go;
                    for i in 0..self.in_c {
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let yy = y as isize + ky as isize - pad as isize;
                                let xx = x as isize + kx as isize - pad as isize;
                                if yy >= 0
                                    && xx >= 0
                                    && (yy as usize) < input.h
                                    && (xx as usize) < input.w
                                {
                                    let widx = ((o * self.in_c + i) * self.k + ky) * self.k + kx;
                                    grad_w[widx] += go * input.at(i, yy as usize, xx as usize);
                                    *grad_in.at_mut(i, yy as usize, xx as usize) +=
                                        go * self.weights[widx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Fully connected projection layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FcLayer {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f64>,
    bias: Vec<f64>,
}

impl FcLayer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        let weights = (0..out_dim * in_dim)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            weights,
            bias: vec![0.0; out_dim],
        }
    }

    fn forward(&self, input: &[f64]) -> Vec<f64> {
        (0..self.out_dim)
            .map(|o| {
                self.bias[o]
                    + self.weights[o * self.in_dim..(o + 1) * self.in_dim]
                        .iter()
                        .zip(input)
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
            })
            .collect()
    }

    fn backward(
        &self,
        input: &[f64],
        grad_out: &[f64],
        grad_w: &mut [f64],
        grad_b: &mut [f64],
    ) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let go = grad_out[o];
            grad_b[o] += go;
            for i in 0..self.in_dim {
                grad_w[o * self.in_dim + i] += go * input[i];
                grad_in[i] += go * self.weights[o * self.in_dim + i];
            }
        }
        grad_in
    }
}

/// INT8-quantised weights of one layer (symmetric, per-layer scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantisedLayer {
    /// Quantised weights in `[-127, 127]`.
    pub weights: Vec<i8>,
    /// Dequantisation scale.
    pub scale: f64,
}

/// Quantises a weight slice to INT8 with a symmetric per-layer scale.
pub fn quantise_int8(weights: &[f64]) -> QuantisedLayer {
    let max = weights
        .iter()
        .fold(0.0f64, |m, &w| m.max(w.abs()))
        .max(1e-12);
    let scale = max / 127.0;
    let q = weights
        .iter()
        .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantisedLayer { weights: q, scale }
}

/// Dequantises an INT8 layer back to `f64` weights.
pub fn dequantise(layer: &QuantisedLayer) -> Vec<f64> {
    layer
        .weights
        .iter()
        .map(|&q| q as f64 * layer.scale)
        .collect()
}

/// The CNN encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnEncoder {
    config: EncoderConfig,
    conv1: ConvLayer,
    conv2: ConvLayer,
    fc: FcLayer,
    /// True when the weights currently in use went through INT8
    /// quantise/dequantise (inference mode).
    pub quantised: bool,
}

/// Reusable intermediate activations for the inference (encode) path.
///
/// One scratch per thread suffices: [`CnnEncoder::encode`] leases a
/// thread-local instance, so the steady-state hot path allocates nothing but
/// the returned embedding itself. Reuse is numerically invisible — every
/// stage overwrites (or zero-fills) its scratch tensor completely, so
/// [`CnnEncoder::encode_with`] produces bit-identical embeddings to the
/// allocating trace path.
#[derive(Debug, Default)]
pub struct EncoderScratch {
    input: Tensor,
    conv1: Tensor,
    pool1: Tensor,
    conv2: Tensor,
}

/// Intermediate activations kept for the backward pass.
struct ForwardTrace {
    input: Tensor,
    conv1_out: Tensor,
    relu1: Tensor,
    pool1: Tensor,
    conv2_out: Tensor,
    relu2: Tensor,
    flat: Vec<f64>,
    embedding: Vec<f64>,
}

impl CnnEncoder {
    /// Creates an encoder with randomly initialised weights.
    pub fn new(config: EncoderConfig, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let conv1 = ConvLayer::new(2, config.conv1_filters, 5, &mut rng);
        let conv2 = ConvLayer::new(config.conv1_filters, config.conv2_filters, 3, &mut rng);
        let pooled = config.input_grid / 2;
        let flat_dim = config.conv2_filters * pooled * pooled;
        let fc = FcLayer::new(flat_dim, config.embedding_dim, &mut rng);
        Self {
            config,
            conv1,
            conv2,
            fc,
            quantised: false,
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Output embedding dimension.
    pub fn embedding_dim(&self) -> usize {
        self.config.embedding_dim
    }

    /// Resamples a complex chunk onto the fixed `2 × grid × grid` encoder
    /// input: the chunk is treated as a flat sequence, split into re/im
    /// planes and averaged into grid cells (a cheap, shape-agnostic
    /// downsampling that preserves coarse magnitude structure).
    fn prepare_input(&self, chunk: &[Complex64]) -> Tensor {
        let g = self.config.input_grid;
        let mut t = Tensor::zeros(2, g, g);
        self.prepare_input_into(chunk, &mut t);
        t
    }

    /// [`Self::prepare_input`] into a caller-provided (scratch) tensor.
    fn prepare_input_into(&self, chunk: &[Complex64], t: &mut Tensor) {
        let g = self.config.input_grid;
        t.reshape(2, g, g);
        t.data.fill(0.0);
        if chunk.is_empty() {
            return;
        }
        let cells = g * g;
        let per_cell = chunk.len().div_ceil(cells);
        for cell in 0..cells {
            let start = cell * per_cell;
            if start >= chunk.len() {
                break;
            }
            let end = ((cell + 1) * per_cell).min(chunk.len());
            let count = (end - start) as f64;
            let mut re = 0.0;
            let mut im = 0.0;
            for z in &chunk[start..end] {
                re += z.re;
                im += z.im;
            }
            let y = cell / g;
            let x = cell % g;
            *t.at_mut(0, y, x) = re / count;
            *t.at_mut(1, y, x) = im / count;
        }
    }

    fn forward_trace(&self, chunk: &[Complex64]) -> ForwardTrace {
        let input = self.prepare_input(chunk);
        let conv1_out = self.conv1.forward(&input);
        let relu1 = relu(&conv1_out);
        let pool1 = avg_pool2(&relu1);
        let conv2_out = self.conv2.forward(&pool1);
        let relu2 = relu(&conv2_out);
        let flat = relu2.data.clone();
        let embedding = self.fc.forward(&flat);
        ForwardTrace {
            input,
            conv1_out,
            relu1,
            pool1,
            conv2_out,
            relu2,
            flat,
            embedding,
        }
    }

    /// Encodes a complex chunk into the embedding space.
    ///
    /// Runs over a thread-local [`EncoderScratch`], so in steady state the
    /// only allocation is the returned embedding (the memoization key) —
    /// every intermediate activation reuses the calling thread's scratch.
    pub fn encode(&self, chunk: &[Complex64]) -> Vec<f64> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<EncoderScratch> =
                std::cell::RefCell::new(EncoderScratch::default());
        }
        SCRATCH.with(|s| self.encode_with(chunk, &mut s.borrow_mut()))
    }

    /// Encodes a batch of chunks through the same thread-local scratch as
    /// [`encode`](Self::encode): one scratch lease for the whole batch, no
    /// per-call buffer allocations once the thread's scratch is warm.
    pub fn encode_batch(&self, chunks: &[&[Complex64]]) -> Vec<Vec<f64>> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<EncoderScratch> =
                std::cell::RefCell::new(EncoderScratch::default());
        }
        SCRATCH.with(|s| self.encode_batch_with(chunks, &mut s.borrow_mut()))
    }

    /// Encodes with an explicit scratch (for callers managing their own
    /// per-worker scratch). Bit-identical to the allocating forward pass.
    pub fn encode_with(&self, chunk: &[Complex64], scratch: &mut EncoderScratch) -> Vec<f64> {
        self.prepare_input_into(chunk, &mut scratch.input);
        self.conv1.forward_into(&scratch.input, &mut scratch.conv1);
        relu_inplace(&mut scratch.conv1);
        avg_pool2_into(&scratch.conv1, &mut scratch.pool1);
        self.conv2.forward_into(&scratch.pool1, &mut scratch.conv2);
        relu_inplace(&mut scratch.conv2);
        self.fc.forward(&scratch.conv2.data)
    }

    /// Encodes a batch of chunks through one shared [`EncoderScratch`].
    ///
    /// Per-chunk results are bit-identical to calling
    /// [`CnnEncoder::encode_with`] once per chunk — batching only amortises
    /// the scratch reuse and lets a store implementation hold its encoder
    /// lock once for the whole batch instead of once per chunk.
    pub fn encode_batch_with(
        &self,
        chunks: &[&[Complex64]],
        scratch: &mut EncoderScratch,
    ) -> Vec<Vec<f64>> {
        chunks
            .iter()
            .map(|chunk| self.encode_with(chunk, scratch))
            .collect()
    }

    /// One SGD step of the contrastive objective on a pair of chunks.
    /// Returns the loss before the update.
    pub fn train_pair(&mut self, a: &[Complex64], b: &[Complex64]) -> f64 {
        let lr = self.config.learning_rate;
        let ta = self.forward_trace(a);
        let tb = self.forward_trace(b);

        // Ground-truth label: L2 distance between the *prepared* inputs
        // (normalised per element so the scale is comparable to embeddings).
        let target: f64 = ta
            .input
            .data
            .iter()
            .zip(&tb.input.data)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();

        let diff: Vec<f64> = ta
            .embedding
            .iter()
            .zip(&tb.embedding)
            .map(|(x, y)| x - y)
            .collect();
        let dist = diff.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-12);
        let loss = (dist - target).abs();
        let sign = if dist >= target { 1.0 } else { -1.0 };

        // dL/d(z_a) = sign * (z_a - z_b)/dist ; dL/d(z_b) = -that.
        let grad_za: Vec<f64> = diff.iter().map(|d| sign * d / dist).collect();
        let grad_zb: Vec<f64> = grad_za.iter().map(|g| -g).collect();

        // Accumulate gradients from both branches (shared weights).
        let mut gw_fc = vec![0.0; self.fc.weights.len()];
        let mut gb_fc = vec![0.0; self.fc.bias.len()];
        let mut gw_c1 = vec![0.0; self.conv1.weights.len()];
        let mut gb_c1 = vec![0.0; self.conv1.bias.len()];
        let mut gw_c2 = vec![0.0; self.conv2.weights.len()];
        let mut gb_c2 = vec![0.0; self.conv2.bias.len()];

        for (trace, grad_z) in [(&ta, &grad_za), (&tb, &grad_zb)] {
            let grad_flat = self
                .fc
                .backward(&trace.flat, grad_z, &mut gw_fc, &mut gb_fc);
            let mut grad_relu2 = Tensor {
                c: trace.relu2.c,
                h: trace.relu2.h,
                w: trace.relu2.w,
                data: grad_flat,
            };
            relu_backward(&trace.conv2_out, &mut grad_relu2);
            let grad_pool1 = self
                .conv2
                .backward(&trace.pool1, &grad_relu2, &mut gw_c2, &mut gb_c2);
            let mut grad_relu1 = avg_pool2_backward(&grad_pool1, &trace.relu1);
            relu_backward(&trace.conv1_out, &mut grad_relu1);
            let _ = self
                .conv1
                .backward(&trace.input, &grad_relu1, &mut gw_c1, &mut gb_c1);
        }

        // SGD update.
        sgd(&mut self.fc.weights, &gw_fc, lr);
        sgd(&mut self.fc.bias, &gb_fc, lr);
        sgd(&mut self.conv1.weights, &gw_c1, lr);
        sgd(&mut self.conv1.bias, &gb_c1, lr);
        sgd(&mut self.conv2.weights, &gw_c2, lr);
        sgd(&mut self.conv2.bias, &gb_c2, lr);
        loss
    }

    /// Trains the encoder with contrastive pairs drawn from `samples`
    /// (all-pairs round-robin) for `epochs` passes. Returns the mean loss of
    /// the final epoch.
    pub fn train_contrastive(&mut self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        if samples.len() < 2 {
            return 0.0;
        }
        let mut final_loss = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut count = 0usize;
            for i in 0..samples.len() {
                let j = (i + 1) % samples.len();
                total += self.train_pair(&samples[i], &samples[j]);
                count += 1;
            }
            final_loss = total / count as f64;
        }
        final_loss
    }

    /// Quantises all weights to INT8 and back (the paper applies INT8
    /// quantisation to the CNN weights for cheap CPU inference); subsequent
    /// encodes use the quantised weights.
    pub fn quantise_weights(&mut self) {
        self.conv1.weights = dequantise(&quantise_int8(&self.conv1.weights));
        self.conv2.weights = dequantise(&quantise_int8(&self.conv2.weights));
        self.fc.weights = dequantise(&quantise_int8(&self.fc.weights));
        self.quantised = true;
    }
}

fn relu(t: &Tensor) -> Tensor {
    Tensor {
        c: t.c,
        h: t.h,
        w: t.w,
        data: t.data.iter().map(|&x| x.max(0.0)).collect(),
    }
}

/// In-place ReLU for the scratch-based inference path (same arithmetic as
/// [`relu`]; the backward pass keeps the pre-activation copy it needs, the
/// inference path does not).
fn relu_inplace(t: &mut Tensor) {
    for x in &mut t.data {
        *x = x.max(0.0);
    }
}

/// Zeroes gradient entries where the pre-activation was non-positive.
fn relu_backward(pre: &Tensor, grad: &mut Tensor) {
    for (g, &x) in grad.data.iter_mut().zip(&pre.data) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
}

/// 2×2 average pooling (floor semantics; inputs here are powers of two).
fn avg_pool2(t: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(t.c, t.h / 2, t.w / 2);
    avg_pool2_into(t, &mut out);
    out
}

/// [`avg_pool2`] into a caller-provided (scratch) tensor.
fn avg_pool2_into(t: &Tensor, out: &mut Tensor) {
    let h = t.h / 2;
    let w = t.w / 2;
    out.reshape(t.c, h, w);
    for c in 0..t.c {
        for y in 0..h {
            for x in 0..w {
                let s = t.at(c, 2 * y, 2 * x)
                    + t.at(c, 2 * y + 1, 2 * x)
                    + t.at(c, 2 * y, 2 * x + 1)
                    + t.at(c, 2 * y + 1, 2 * x + 1);
                *out.at_mut(c, y, x) = s / 4.0;
            }
        }
    }
}

/// Backward of 2×2 average pooling: spread each gradient over its window.
fn avg_pool2_backward(grad_pooled: &Tensor, pre_pool: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(pre_pool.c, pre_pool.h, pre_pool.w);
    for c in 0..grad_pooled.c {
        for y in 0..grad_pooled.h {
            for x in 0..grad_pooled.w {
                let g = grad_pooled.at(c, y, x) / 4.0;
                *out.at_mut(c, 2 * y, 2 * x) += g;
                *out.at_mut(c, 2 * y + 1, 2 * x) += g;
                *out.at_mut(c, 2 * y, 2 * x + 1) += g;
                *out.at_mut(c, 2 * y + 1, 2 * x + 1) += g;
            }
        }
    }
    out
}

fn sgd(weights: &mut [f64], grads: &[f64], lr: f64) {
    for (w, g) in weights.iter_mut().zip(grads) {
        *w -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::norms::l2_distance;

    fn tiny_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 4,
            conv2_filters: 6,
            embedding_dim: 12,
            learning_rate: 1e-3,
        }
    }

    fn chunk_from_pattern(n: usize, scale: f64, phase: f64) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(
                    scale * (6.0 * t + phase).sin(),
                    scale * (4.0 * t + phase).cos(),
                )
            })
            .collect()
    }

    #[test]
    fn encode_is_deterministic_and_fixed_dim() {
        let enc = CnnEncoder::new(tiny_config(), 1);
        let chunk = chunk_from_pattern(256, 1.0, 0.0);
        let a = enc.encode(&chunk);
        let b = enc.encode(&chunk);
        assert_eq!(a.len(), 12);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_encode_is_bit_identical_to_trace_path() {
        // The scratch-based inference path must reproduce the allocating
        // forward trace bit for bit — including across reuses of one scratch
        // with different chunk sizes (stale data must never leak through).
        let enc = CnnEncoder::new(tiny_config(), 7);
        let mut scratch = EncoderScratch::default();
        for (n, scale) in [(256, 1.0), (64, 2.5), (0, 0.0), (512, 0.3)] {
            let chunk = chunk_from_pattern(n, scale, 0.1);
            let via_scratch = enc.encode_with(&chunk, &mut scratch);
            let via_trace = enc.forward_trace(&chunk).embedding;
            assert_eq!(via_scratch, via_trace, "n={n}");
        }
    }

    #[test]
    fn row_sweep_conv_is_bit_identical_to_naive_reference() {
        // The blocked row-sweep kernel must reproduce, bit for bit, the
        // naive per-element loop it replaced: bias first, then (i, ky, kx)
        // in lexicographic order with out-of-bounds taps skipped.
        fn naive(layer: &ConvLayer, input: &Tensor) -> Tensor {
            let pad = layer.k / 2;
            let mut out = Tensor::zeros(layer.out_c, input.h, input.w);
            for o in 0..layer.out_c {
                for y in 0..input.h {
                    for x in 0..input.w {
                        let mut acc = layer.bias[o];
                        for i in 0..layer.in_c {
                            for ky in 0..layer.k {
                                for kx in 0..layer.k {
                                    let yy = y as isize + ky as isize - pad as isize;
                                    let xx = x as isize + kx as isize - pad as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < input.h
                                        && (xx as usize) < input.w
                                    {
                                        let widx =
                                            ((o * layer.in_c + i) * layer.k + ky) * layer.k + kx;
                                        acc += layer.weights[widx]
                                            * input.at(i, yy as usize, xx as usize);
                                    }
                                }
                            }
                        }
                        *out.at_mut(o, y, x) = acc;
                    }
                }
            }
            out
        }
        let mut rng = seeded(0xC0DE);
        for (in_c, out_c, k, h, w) in [
            (2, 4, 5, 8, 8),
            (4, 6, 3, 4, 4),
            (1, 1, 3, 1, 1),
            (3, 2, 5, 2, 6),
        ] {
            let layer = ConvLayer::new(in_c, out_c, k, &mut rng);
            let mut input = Tensor::zeros(in_c, h, w);
            for v in &mut input.data {
                *v = rng.gen::<f64>() * 2.0 - 1.0;
            }
            let reference = naive(&layer, &input);
            let fast = layer.forward(&input);
            assert_eq!(reference, fast, "in_c={in_c} out_c={out_c} k={k} {h}x{w}");
        }
    }

    #[test]
    fn similar_chunks_encode_closer_than_dissimilar() {
        let enc = CnnEncoder::new(tiny_config(), 2);
        let base = chunk_from_pattern(512, 1.0, 0.0);
        let near = chunk_from_pattern(512, 1.02, 0.01);
        let far = chunk_from_pattern(512, 3.0, 1.5);
        let zb = enc.encode(&base);
        let zn = enc.encode(&near);
        let zf = enc.encode(&far);
        assert!(l2_distance(&zb, &zn) < l2_distance(&zb, &zf));
    }

    #[test]
    fn contrastive_training_reduces_loss() {
        let mut enc = CnnEncoder::new(tiny_config(), 3);
        let samples: Vec<Vec<Complex64>> = (0..6)
            .map(|i| chunk_from_pattern(256, 1.0 + 0.3 * i as f64, 0.2 * i as f64))
            .collect();
        // Measure initial mean loss without updating by using a clone.
        let mut probe = enc.clone();
        let initial = probe.train_contrastive(&samples, 1);
        let final_loss = enc.train_contrastive(&samples, 30);
        assert!(
            final_loss < initial,
            "training should reduce loss: initial {initial}, final {final_loss}"
        );
    }

    #[test]
    fn training_pair_returns_nonnegative_loss() {
        let mut enc = CnnEncoder::new(tiny_config(), 4);
        let a = chunk_from_pattern(128, 1.0, 0.0);
        let b = chunk_from_pattern(128, 2.0, 0.4);
        let loss = enc.train_pair(&a, &b);
        assert!(loss >= 0.0);
    }

    #[test]
    fn quantisation_roundtrip_and_small_error() {
        let weights: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) / 37.0).collect();
        let q = quantise_int8(&weights);
        assert_eq!(q.weights.len(), 100);
        let back = dequantise(&q);
        let max_err = weights
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Error bounded by half a quantisation step.
        assert!(max_err <= q.scale * 0.5 + 1e-12);
    }

    #[test]
    fn quantised_encoder_stays_close_to_float() {
        let config = tiny_config();
        let float_enc = CnnEncoder::new(config, 5);
        let mut q_enc = float_enc.clone();
        q_enc.quantise_weights();
        assert!(q_enc.quantised);
        let chunk = chunk_from_pattern(512, 1.3, 0.7);
        let zf = float_enc.encode(&chunk);
        let zq = q_enc.encode(&chunk);
        let rel = l2_distance(&zf, &zq) / zf.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        assert!(rel < 0.1, "quantisation error {rel}");
    }

    #[test]
    fn empty_chunk_encodes_to_finite_vector() {
        let enc = CnnEncoder::new(tiny_config(), 6);
        let z = enc.encode(&[]);
        assert_eq!(z.len(), 12);
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
