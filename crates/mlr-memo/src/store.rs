//! The memo-store seam: a thread-safe interface over "the memoization
//! database", so the executor no longer cares whether it talks to a private
//! single-tenant [`MemoDatabase`] or to the
//! sharded, lock-striped [`ShardedMemoDb`](crate::sharded::ShardedMemoDb)
//! shared by every job of a runtime.
//!
//! The paper's distributed design (Figure 6) keeps the memoization database
//! on a dedicated memory node precisely so that *many* reconstructions can
//! amortise each other's USFFT work; this trait is the in-process analogue
//! of that seam. Entries carry a [`Provenance`] — which job inserted them,
//! during which outer ADMM iteration — so a store can enforce the paper's
//! "reuse only across iterations" rule *per job* while still serving job B
//! values that job A computed.

use crate::db::{MemoDatabase, MemoDbConfig, QueryOutcome};
use crate::fingerprint::ChunkFingerprint;
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifies the reconstruction job a query or entry belongs to. Jobs are
/// numbered by the runtime; standalone executors use [`Provenance::solo`]
/// (job 0).
pub type JobId = u64;

/// Where an entry came from (or where a query originates): the owning job
/// and the outer ADMM iteration.
///
/// The iteration component enforces the intra-job freshness rule: a value
/// produced *within* the current LSP solve must not be fed back to the CG
/// update that produced it. Entries from *other* jobs are always eligible —
/// that is exactly the cross-job reuse the shared store exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// The job that issued the operation.
    pub job: JobId,
    /// The job's outer ADMM iteration at the time.
    pub iteration: usize,
}

impl Provenance {
    /// Provenance for a single-tenant executor (job 0).
    pub fn solo(iteration: usize) -> Self {
        Self { job: 0, iteration }
    }

    /// Returns `true` when an entry with this provenance may serve a query
    /// with provenance `query`: either a different job, or an earlier
    /// iteration of the same job.
    pub fn may_serve(&self, query: &Provenance) -> bool {
        self.job != query.job || self.iteration < query.iteration
    }
}

/// Aggregate counters of a memo store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Entries currently stored.
    pub entries: usize,
    /// Queries served.
    pub queries: u64,
    /// Queries that returned a value.
    pub hits: u64,
    /// Hits served by an entry inserted by a *different* job than the
    /// querying one — the cross-job amortisation a shared store buys.
    pub cross_job_hits: u64,
    /// Insertions performed.
    pub inserts: u64,
    /// Approximate resident bytes of the value database.
    pub value_bytes: u64,
    /// Entries evicted to satisfy the capacity budget.
    pub evictions: u64,
    /// Entries reclaimed because their TTL expired.
    pub expirations: u64,
    /// Total resident bytes (values + retained raw inputs + keys) — the
    /// quantity the capacity budget caps.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` observed after budget
    /// enforcement; with a byte cap set, this never exceeds the cap.
    pub peak_resident_bytes: u64,
    /// Queries issued while the store was under capacity pressure (the
    /// tightest global cap ≥ 95 % utilised).
    pub pressure_queries: u64,
    /// Hits served while the store was under capacity pressure.
    pub pressure_hits: u64,
}

impl StoreStats {
    /// Fraction of queries answered from the store.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Fraction of queries answered by another job's entry.
    pub fn cross_job_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cross_job_hits as f64 / self.queries as f64
        }
    }

    /// Hit rate over only the queries issued while the store was under
    /// capacity pressure — the figure of merit for a bounded store.
    pub fn hit_rate_under_pressure(&self) -> f64 {
        if self.pressure_queries == 0 {
            0.0
        } else {
            self.pressure_hits as f64 / self.pressure_queries as f64
        }
    }
}

/// Outcome of a read-only probe (the parallel phase of the batched
/// executor's two-phase protocol).
///
/// A probe is [`MemoStore::query_with_key`] stripped of every side effect:
/// no query/hit counters, no recency refresh, no lazy TTL reclamation. The
/// executor probes all chunks of a batch concurrently against the store
/// state frozen at the start of the operator application, then replays the
/// bookkeeping in chunk-index order through [`MemoStore::commit_hit`] /
/// [`MemoStore::commit_miss`] — which is what makes the parallel schedule
/// order-independent.
#[derive(Debug, Clone)]
pub enum ProbeOutcome {
    /// A stored value passed the τ gate.
    Hit {
        /// The stored FFT result — a shared reference into the value
        /// database, never a deep clone.
        value: Arc<[Complex64]>,
        /// Cosine similarity between query and stored entry.
        similarity: f64,
        /// Stable id of the serving entry (for the ordered commit).
        entry: u64,
        /// Which job/iteration inserted the serving entry.
        origin: Provenance,
    },
    /// No stored entry was similar enough (or eligible).
    Miss,
    /// The candidate entry exists but its TTL expired; it is reclaimed
    /// during the ordered commit via [`MemoStore::reclaim_expired`].
    Expired {
        /// Stable id of the expired entry.
        entry: u64,
    },
}

/// A thread-safe memoization store.
///
/// All methods take `&self`; implementations are responsible for their own
/// interior locking. The executor encodes keys through the store so every
/// tenant of a shared store uses the *same* encoder (keys from different
/// encoders would be mutually meaningless).
///
/// The τ-gated query/insert protocol, on a store shared by concurrent jobs:
///
/// ```
/// use mlr_lamino::FftOpKind;
/// use mlr_memo::{
///     EncoderConfig, MemoDbConfig, MemoStore, Provenance, QueryOutcome, ShardedMemoDb,
/// };
/// use mlr_math::Complex64;
///
/// let store = ShardedMemoDb::with_shards(
///     MemoDbConfig { tau: 0.9, ..Default::default() },
///     EncoderConfig {
///         input_grid: 8,
///         conv1_filters: 2,
///         conv2_filters: 4,
///         embedding_dim: 8,
///         learning_rate: 1e-3,
///     },
///     1, // encoder seed
///     4, // lock stripes
/// );
/// let chunk: Vec<Complex64> = (0..64)
///     .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
///     .collect();
///
/// // First sight of the chunk: a miss; insert the exactly-computed value.
/// let key = store.encode(&chunk);
/// let QueryOutcome::Miss { key } =
///     store.query_with_key(FftOpKind::Fu2D, 0, &chunk, key, Provenance::solo(1))
/// else {
///     panic!("an empty store cannot hit");
/// };
/// store.insert(FftOpKind::Fu2D, 0, &chunk, key, chunk.clone(), Provenance::solo(1), 1e-3);
///
/// // A later iteration asking about the same chunk is served from memory
/// // (cosine similarity 1.0 passes any τ).
/// store.advance_epoch();
/// let key = store.encode(&chunk);
/// let outcome = store.query_with_key(FftOpKind::Fu2D, 0, &chunk, key, Provenance::solo(2));
/// assert!(matches!(outcome, QueryOutcome::Hit { .. }));
/// assert_eq!(store.stats().hits, 1);
/// ```
pub trait MemoStore: Send + Sync {
    /// The database configuration (τ threshold, scoping, gating).
    fn config(&self) -> MemoDbConfig;

    /// Encodes an input chunk into a key.
    fn encode(&self, input: &[Complex64]) -> Vec<f64>;

    /// Encodes a batch of input chunks in one pass, amortizing per-call
    /// costs (scratch lease, locks) across the batch. The default falls
    /// back to per-item [`MemoStore::encode`]; implementations override it
    /// to take their lock once.
    fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        inputs.iter().map(|input| self.encode(input)).collect()
    }

    /// Norm-prefilter consultation: does the scope's fingerprint history at
    /// `(op, loc)` contain a chunk whose raw similarity to `fp`'s chunk
    /// could exceed τ? Implementations without a fingerprint table return
    /// `true` (admit everything), which disables the prefilter safely.
    fn has_fingerprint_neighbor(&self, op: FftOpKind, loc: usize, fp: &ChunkFingerprint) -> bool {
        let _ = (op, loc, fp);
        true
    }

    /// Records the fingerprint of a committed chunk in the scope's
    /// doorkeeper history. Default: no-op (for stores without a table).
    fn note_fingerprint(&self, op: FftOpKind, loc: usize, fp: ChunkFingerprint) {
        let _ = (op, loc, fp);
    }

    /// Queries for an entry similar to `input` at `(op, loc)` with a
    /// pre-computed key. `origin` identifies the querying job/iteration.
    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome;

    /// Read-only probe at `(op, loc)`: the lookup of
    /// [`MemoStore::query_with_key`] with *no* side effects (no counters, no
    /// recency refresh, no reclamation), safe to issue concurrently from the
    /// parallel phase of a batch.
    fn probe_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome;

    /// Ordered-commit bookkeeping for a probe that hit: query/hit counters,
    /// pressure accounting, and the recency/reuse metadata refresh the
    /// eviction policies rank by. `entry`/`entry_origin` come from the
    /// [`ProbeOutcome::Hit`]; the refresh is skipped (deterministically) if
    /// the entry was evicted by an earlier commit of the same batch.
    fn commit_hit(
        &self,
        op: FftOpKind,
        loc: usize,
        entry: u64,
        entry_origin: Provenance,
        origin: Provenance,
    );

    /// Ordered-commit bookkeeping for a probe that missed (query and
    /// pressure accounting only; the insert that follows the exact compute
    /// goes through [`MemoStore::insert`]).
    fn commit_miss(&self, op: FftOpKind, loc: usize);

    /// Reclaims an entry a probe found expired, if it still is (the ordered
    /// counterpart of the lazy reclamation `query_with_key` performs).
    fn reclaim_expired(&self, op: FftOpKind, loc: usize, entry: u64);

    /// Inserts an entry computed by `origin`. Returns the entry id
    /// (stable across the whole store; the eviction tie-breaker).
    /// `recompute_cost` is the deterministic cost hint cost-aware eviction
    /// ranks by (see [`recompute_cost_estimate`](crate::eviction::recompute_cost_estimate)).
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Returns `true` when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the value database.
    fn value_bytes(&self) -> u64;

    /// Total resident bytes (values + retained raw inputs + keys) — the
    /// quantity the capacity budget caps.
    fn resident_bytes(&self) -> u64;

    /// Advances the store's job-iteration epoch (the TTL clock). Executors
    /// call this once per outer ADMM iteration; returns the new epoch.
    fn advance_epoch(&self) -> u64;

    /// The current job-iteration epoch.
    fn epoch(&self) -> u64;

    /// Utilisation of the tightest global capacity cap in `[0, 1]`
    /// (0 when unbounded) — what the runtime's admission control consults.
    fn pressure(&self) -> f64 {
        self.config()
            .budget
            .pressure(self.resident_bytes(), self.len() as u64)
    }

    /// Aggregate counters.
    fn stats(&self) -> StoreStats;

    /// Average number of key comparisons one query performs.
    fn comparisons_per_query(&self) -> f64;

    /// Trains the store's key encoder on sample chunks (contrastive
    /// objective + INT8 quantisation); returns the final loss.
    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64;
}

/// Single-tenant [`MemoStore`]: one [`MemoDatabase`] behind one mutex.
/// This is exactly the pre-runtime behaviour of the memoized executor; it
/// exists so the executor has a uniform seam whether or not a shared store
/// is in play.
pub struct LocalMemoStore {
    inner: Mutex<MemoDatabase>,
}

impl LocalMemoStore {
    /// Wraps an existing database.
    pub fn new(db: MemoDatabase) -> Self {
        Self {
            inner: Mutex::new(db),
        }
    }

    /// Consumes the store, returning the database.
    pub fn into_inner(self) -> MemoDatabase {
        self.inner.into_inner()
    }
}

impl MemoStore for LocalMemoStore {
    fn config(&self) -> MemoDbConfig {
        *self.inner.lock().config()
    }

    fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.inner.lock().encode(input)
    }

    fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        self.inner.lock().encode_batch(inputs)
    }

    fn has_fingerprint_neighbor(&self, op: FftOpKind, loc: usize, fp: &ChunkFingerprint) -> bool {
        self.inner.lock().has_fingerprint_neighbor(op, loc, fp)
    }

    fn note_fingerprint(&self, op: FftOpKind, loc: usize, fp: ChunkFingerprint) {
        self.inner.lock().note_fingerprint(op, loc, fp);
    }

    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.inner
            .lock()
            .query_with_key_from(op, loc, input, key, origin)
    }

    fn probe_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome {
        self.inner
            .lock()
            .probe_with_key_from(op, loc, input, key, origin)
    }

    fn commit_hit(
        &self,
        _op: FftOpKind,
        _loc: usize,
        entry: u64,
        entry_origin: Provenance,
        origin: Provenance,
    ) {
        self.inner.lock().commit_hit(entry, entry_origin, origin);
    }

    fn commit_miss(&self, _op: FftOpKind, _loc: usize) {
        self.inner.lock().commit_miss_query();
    }

    fn reclaim_expired(&self, _op: FftOpKind, _loc: usize, entry: u64) {
        self.inner.lock().reclaim_expired(entry);
    }

    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64 {
        self.inner
            .lock()
            .insert_from_with_cost(op, loc, input, key, output, origin, recompute_cost)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }

    fn value_bytes(&self) -> u64 {
        self.inner.lock().value_bytes()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident_bytes()
    }

    fn advance_epoch(&self) -> u64 {
        self.inner.lock().advance_epoch()
    }

    fn epoch(&self) -> u64 {
        self.inner.lock().clock().epoch()
    }

    fn stats(&self) -> StoreStats {
        self.inner.lock().stats()
    }

    fn comparisons_per_query(&self) -> f64 {
        self.inner.lock().comparisons_per_query()
    }

    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        let mut db = self.inner.lock();
        let loss = db.encoder_mut().train_contrastive(samples, epochs);
        db.encoder_mut().quantise_weights();
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_gating() {
        let a0 = Provenance {
            job: 1,
            iteration: 0,
        };
        let a1 = Provenance {
            job: 1,
            iteration: 1,
        };
        let b0 = Provenance {
            job: 2,
            iteration: 0,
        };
        // Same job: only earlier iterations may serve.
        assert!(a0.may_serve(&a1));
        assert!(!a1.may_serve(&a1));
        assert!(!a1.may_serve(&a0));
        // Different job: always eligible.
        assert!(a1.may_serve(&b0));
        assert!(b0.may_serve(&a0));
    }

    #[test]
    fn stats_rates() {
        let s = StoreStats {
            queries: 10,
            hits: 5,
            cross_job_hits: 2,
            pressure_queries: 4,
            pressure_hits: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.cross_job_hit_rate() - 0.2).abs() < 1e-12);
        assert!((s.hit_rate_under_pressure() - 0.25).abs() < 1e-12);
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
        assert_eq!(StoreStats::default().hit_rate_under_pressure(), 0.0);
    }
}
