//! The memoization database: encoder + index database + value database.
//!
//! This is the memory-node side of the paper's distributed memoization
//! (§4.3.2). An *insertion* encodes the FFT input chunk into a key, adds the
//! key to the index database and the FFT output to the value database. A
//! *query* encodes the input, asks the index database for the most similar
//! stored key and — only if the similarity clears the threshold `τ` —
//! returns the associated value.
//!
//! The similarity gate follows the paper's Eq. 3: cosine similarity between
//! the query key and the stored key. By default the gate is evaluated on the
//! raw input chunks (stored alongside each entry), which makes the
//! accuracy-vs-τ experiments faithful to what τ means in the paper; the
//! encoded keys are what the ANN index searches.
//!
//! Since the capacity-governance layer landed, the database is *bounded*:
//! a [`CapacityBudget`] in the configuration caps resident bytes and/or
//! entry count, enforced after every insert by the configured
//! [`EvictionPolicy`]. All bookkeeping runs on the logical
//! [`StoreClock`] (op ticks, job-iteration epochs, stable entry ids), so
//! eviction is deterministic given the same schedule and identical whether
//! the scopes live here or are striped over a
//! [`ShardedMemoDb`](crate::ShardedMemoDb).

use crate::ann::{IvfConfig, IvfIndex};
use crate::encoder::{CnnEncoder, EncoderConfig};
use crate::eviction::{
    recompute_cost_estimate, CapacityBudget, EntryMeta, EvictionPolicy, EvictionPolicyKind,
    StoreClock,
};
use crate::fingerprint::{ChunkFingerprint, FingerprintTable};
use crate::kvstore::ValueStore;
use crate::store::{ProbeOutcome, Provenance, StoreStats};
use mlr_lamino::FftOpKind;
use mlr_math::norms::{scale_aware_similarity, scale_aware_similarity_c};
use mlr_math::Complex64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Database configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoDbConfig {
    /// Similarity threshold `τ`: a stored value is reused only when the
    /// cosine similarity between query and stored key exceeds it.
    pub tau: f64,
    /// Scope searches to the (operation, chunk location) pair. The paper's
    /// observation (Figure 4) is that reuse happens *at* a chunk location
    /// across iterations, so this is the default; disabling it searches
    /// across locations.
    pub per_location: bool,
    /// Evaluate the τ gate on the raw input chunks (exact fidelity, more
    /// memory); when `false` the gate uses the encoded keys only.
    pub gate_on_raw: bool,
    /// ANN index parameters.
    pub ivf: IvfConfig,
    /// Capacity caps (bytes/entries, global and per stripe). Unbounded by
    /// default — the pre-governance behaviour.
    pub budget: CapacityBudget,
    /// Which built-in eviction policy enforces the budget.
    pub eviction: EvictionPolicyKind,
}

impl Default for MemoDbConfig {
    fn default() -> Self {
        Self {
            tau: 0.92,
            per_location: true,
            gate_on_raw: true,
            ivf: IvfConfig::default(),
            budget: CapacityBudget::unbounded(),
            eviction: EvictionPolicyKind::default(),
        }
    }
}

/// Outcome of a database query.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A value passed the τ gate; `similarity` is the measured cosine
    /// similarity and `key` the encoded key of the query (reusable for the
    /// compute-node cache).
    Hit {
        /// The stored FFT result — a shared reference into the value
        /// database, never a deep clone.
        value: Arc<[Complex64]>,
        /// Cosine similarity between query and stored entry.
        similarity: f64,
        /// Encoded query key.
        key: Vec<f64>,
        /// Which job/iteration inserted the entry that served this hit
        /// (drives the cross-job accounting of shared stores).
        origin: Provenance,
    },
    /// No stored entry was similar enough; the encoded key is returned so the
    /// caller can reuse it for the insertion that follows the exact compute.
    Miss {
        /// Encoded query key.
        key: Vec<f64>,
    },
}

/// One index scope (either global or per (op, location)).
#[derive(Debug)]
struct Scope {
    index: IvfIndex,
}

/// Everything stored for one entry besides its value (which lives in the
/// [`ValueStore`]): eviction metadata, the scope it was indexed under, and
/// the τ-gate material (raw input or encoded key).
struct EntryRecord {
    meta: EntryMeta,
    scope: (FftOpKind, usize),
    raw_input: Option<Arc<[Complex64]>>,
    key: Option<Vec<f64>>,
}

impl EntryRecord {
    /// Bytes held outside the value store (raw input + retained key).
    fn aux_bytes(&self) -> u64 {
        let raw = self.raw_input.as_ref().map_or(0, |r| r.len() * 16) as u64;
        let key = self.key.as_ref().map_or(0, |k| k.len() * 8) as u64;
        raw + key
    }
}

/// Which caps this database instance enforces after an insert.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BudgetRole {
    /// A standalone database (or the store behind `LocalMemoStore`): it *is*
    /// the whole store, so it enforces the global caps (and any stripe caps,
    /// treating itself as its only stripe).
    Standalone,
    /// One stripe of a `ShardedMemoDb`: enforces only the per-stripe caps;
    /// the owning store coordinates global enforcement across stripes.
    Stripe,
}

/// The memoization database.
pub struct MemoDatabase {
    config: MemoDbConfig,
    encoder: CnnEncoder,
    scopes: HashMap<(FftOpKind, usize), Scope>,
    /// Per-scope doorkeeper rings for the norm prefilter. Control metadata:
    /// deliberately excluded from `resident_bytes` accounting (bounded at
    /// [`crate::fingerprint::FINGERPRINT_HISTORY`] entries per scope).
    fingerprints: HashMap<(FftOpKind, usize), FingerprintTable>,
    values: ValueStore,
    entries: HashMap<u64, EntryRecord>,
    clock: Arc<StoreClock>,
    policy: Arc<dyn EvictionPolicy>,
    role: BudgetRole,
    /// Bytes resident outside the value store (raw inputs + keys).
    aux_bytes: u64,
    /// Bytes/entries freed since the owner last drained (lets a sharded
    /// owner keep its published resident counter exact without re-summing).
    freed_bytes_unpublished: u64,
    freed_entries_unpublished: u64,
    /// High-water mark of `resident_bytes()` observed *after* enforcement.
    peak_resident: u64,
    /// Total number of index queries served (for reports).
    queries: u64,
    /// Queries that returned a value.
    hits: u64,
    /// Hits served by an entry another job inserted.
    cross_job_hits: u64,
    /// Insertions performed.
    inserts: u64,
    /// Entries evicted to satisfy the budget.
    evictions: u64,
    /// Entries reclaimed because their TTL expired.
    expirations: u64,
    /// Queries issued while the store was under capacity pressure.
    pressure_queries: u64,
    /// Hits served while the store was under capacity pressure.
    pressure_hits: u64,
}

/// Stable 64-bit hash of an index scope, used to seed the scope's ANN index.
/// Deriving the seed from the *scope* (rather than from the running entry
/// counter) makes query outcomes independent of how entries interleave
/// across scopes — and therefore identical whether the scopes live in one
/// database or are spread over the shards of a `ShardedMemoDb`.
pub(crate) fn scope_seed(op: FftOpKind, loc: usize) -> u64 {
    // FNV-1a over the discriminant and location.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in [(op as u8)].into_iter().chain(loc.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl MemoDatabase {
    /// Creates an empty database with the given configuration and a fresh
    /// (untrained) encoder.
    pub fn new(config: MemoDbConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        Self::with_encoder(config, CnnEncoder::new(encoder_config, seed))
    }

    /// Creates an empty database around an existing (possibly pre-trained)
    /// encoder.
    pub fn with_encoder(config: MemoDbConfig, encoder: CnnEncoder) -> Self {
        Self::build(
            config,
            encoder,
            StoreClock::new(),
            config.eviction.build(),
            BudgetRole::Standalone,
        )
    }

    /// Creates an empty database governed by a *custom* eviction policy
    /// (the configuration's [`EvictionPolicyKind`] is ignored for victim
    /// selection).
    pub fn with_policy(
        config: MemoDbConfig,
        encoder_config: EncoderConfig,
        seed: u64,
        policy: Arc<dyn EvictionPolicy>,
    ) -> Self {
        Self::build(
            config,
            CnnEncoder::new(encoder_config, seed),
            StoreClock::new(),
            policy,
            BudgetRole::Standalone,
        )
    }

    /// Creates one stripe of a sharded store: shares the owner's logical
    /// clock and policy, and leaves global budget enforcement to the owner.
    pub(crate) fn stripe(
        config: MemoDbConfig,
        encoder_config: EncoderConfig,
        seed: u64,
        clock: Arc<StoreClock>,
        policy: Arc<dyn EvictionPolicy>,
    ) -> Self {
        Self::build(
            config,
            CnnEncoder::new(encoder_config, seed),
            clock,
            policy,
            BudgetRole::Stripe,
        )
    }

    fn build(
        config: MemoDbConfig,
        encoder: CnnEncoder,
        clock: Arc<StoreClock>,
        policy: Arc<dyn EvictionPolicy>,
        role: BudgetRole,
    ) -> Self {
        Self {
            config,
            encoder,
            scopes: HashMap::new(),
            fingerprints: HashMap::new(),
            values: ValueStore::new(),
            entries: HashMap::new(),
            clock,
            policy,
            role,
            aux_bytes: 0,
            freed_bytes_unpublished: 0,
            freed_entries_unpublished: 0,
            peak_resident: 0,
            queries: 0,
            hits: 0,
            cross_job_hits: 0,
            inserts: 0,
            evictions: 0,
            expirations: 0,
            pressure_queries: 0,
            pressure_hits: 0,
        }
    }

    /// The database configuration.
    pub fn config(&self) -> &MemoDbConfig {
        &self.config
    }

    /// Mutable access to the encoder (e.g. to train it on collected chunks).
    pub fn encoder_mut(&mut self) -> &mut CnnEncoder {
        &mut self.encoder
    }

    /// The encoder.
    pub fn encoder(&self) -> &CnnEncoder {
        &self.encoder
    }

    /// The logical clock driving ticks, epochs and entry ids.
    pub fn clock(&self) -> &Arc<StoreClock> {
        &self.clock
    }

    /// Advances the job-iteration epoch; returns the new epoch.
    pub fn advance_epoch(&self) -> u64 {
        self.clock.advance_epoch()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the value database.
    pub fn value_bytes(&self) -> u64 {
        self.values.bytes()
    }

    /// Total resident bytes: values plus retained raw inputs and keys —
    /// the quantity the [`CapacityBudget`] caps.
    pub fn resident_bytes(&self) -> u64 {
        self.values.bytes() + self.aux_bytes
    }

    /// High-water mark of [`Self::resident_bytes`] observed after budget
    /// enforcement (i.e. at the points where the bound must hold).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident.max(self.resident_bytes())
    }

    /// Number of queries served.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Entries evicted so far to satisfy the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries reclaimed so far because their TTL expired.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Aggregate counters in the shape shared with the other memo stores.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.len(),
            queries: self.queries,
            hits: self.hits,
            cross_job_hits: self.cross_job_hits,
            inserts: self.inserts,
            value_bytes: self.value_bytes(),
            evictions: self.evictions,
            expirations: self.expirations,
            resident_bytes: self.resident_bytes(),
            peak_resident_bytes: self.peak_resident_bytes(),
            pressure_queries: self.pressure_queries,
            pressure_hits: self.pressure_hits,
        }
    }

    /// A copy of the eviction metadata of entry `id`, if it is resident —
    /// the signal (bytes, hit counts, recompute cost, policy priority) the
    /// distributed tier's replica promotion ranks by.
    pub fn meta_of(&self, id: u64) -> Option<EntryMeta> {
        self.entries.get(&id).map(|r| r.meta)
    }

    /// Encodes an input chunk into a key (exposed for the compute-node cache
    /// and for benches that time the encoder separately).
    pub fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.encoder.encode(input)
    }

    /// Encodes a batch of input chunks through one thread-local scratch
    /// lease (amortizes the scratch across the batch, allocation-free once
    /// the thread's scratch is warm).
    pub fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        self.encoder.encode_batch(inputs)
    }

    /// Does the scope's fingerprint history contain a chunk whose raw
    /// similarity to `fp`'s chunk could exceed `τ`? Returns `false` for a
    /// scope that has seen no chunks yet — the prefilter then routes the
    /// chunk straight to the exact FFT without encoding it.
    pub fn has_fingerprint_neighbor(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: &ChunkFingerprint,
    ) -> bool {
        let scope = self.scope_key(op, loc);
        self.fingerprints
            .get(&scope)
            .is_some_and(|t| t.has_neighbor(fp, self.config.tau))
    }

    /// Records the fingerprint of a committed chunk in the scope's
    /// doorkeeper ring (bounded; the oldest entry is evicted on overflow).
    pub fn note_fingerprint(&mut self, op: FftOpKind, loc: usize, fp: ChunkFingerprint) {
        let scope = self.scope_key(op, loc);
        self.fingerprints.entry(scope).or_default().note(fp);
    }

    fn scope_key(&self, op: FftOpKind, loc: usize) -> (FftOpKind, usize) {
        if self.config.per_location {
            (op, loc)
        } else {
            (op, usize::MAX)
        }
    }

    /// Queries the database for an entry similar to `input` at
    /// `(op, loc)`.
    pub fn query(&mut self, op: FftOpKind, loc: usize, input: &[Complex64]) -> QueryOutcome {
        let key = self.encode(input);
        self.query_with_key(op, loc, input, key, usize::MAX)
    }

    /// Queries with a pre-computed encoded key (avoids double encoding when
    /// the caller already consulted the compute-node cache).
    pub fn query_with_key(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        current_iteration: usize,
    ) -> QueryOutcome {
        self.query_with_key_from(op, loc, input, key, Provenance::solo(current_iteration))
    }

    /// Queries with a pre-computed key on behalf of a specific job/iteration
    /// (the multi-tenant entry point used through the `MemoStore` seam).
    pub fn query_with_key_from(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.queries += 1;
        let tick = self.clock.next_tick();
        let now_epoch = self.clock.epoch();
        let under_pressure = self.role == BudgetRole::Standalone
            && self
                .config
                .budget
                .pressure(self.resident_bytes(), self.len() as u64)
                >= PRESSURE_THRESHOLD;
        if under_pressure {
            self.pressure_queries += 1;
        }
        let scope_key = self.scope_key(op, loc);
        let Some(scope) = self.scopes.get(&scope_key) else {
            return QueryOutcome::Miss { key };
        };
        let Some(hit) = scope.index.search(&key) else {
            return QueryOutcome::Miss { key };
        };
        let Some(record) = self.entries.get(&hit.id) else {
            return QueryOutcome::Miss { key };
        };
        // TTL: an expired entry is unreachable; reclaim it on the way out.
        if self.policy.is_expired(&record.meta, now_epoch) {
            self.remove_entry(hit.id, RemovalKind::Expired);
            return QueryOutcome::Miss { key };
        }
        // Within one job, only entries from *earlier* ADMM iterations may be
        // reused; a value produced within the current LSP solve would feed
        // the CG its own output back and stall the update. Entries from
        // other jobs are always eligible.
        let stored_origin = record.meta.origin;
        if !stored_origin.may_serve(&origin) {
            return QueryOutcome::Miss { key };
        }
        let similarity = if self.config.gate_on_raw {
            match &record.raw_input {
                Some(stored) => scale_aware_similarity_c(input, stored),
                None => return QueryOutcome::Miss { key },
            }
        } else {
            match &record.key {
                Some(stored) => scale_aware_similarity(&key, stored),
                None => return QueryOutcome::Miss { key },
            }
        };
        if similarity > self.config.tau {
            if let Some(value) = self.values.get(hit.id) {
                self.hits += 1;
                if under_pressure {
                    self.pressure_hits += 1;
                }
                if stored_origin.job != origin.job {
                    self.cross_job_hits += 1;
                }
                // Refresh recency/reuse metadata for LRU and cost-aware
                // ranking (logical tick — never wall-clock).
                if let Some(record) = self.entries.get_mut(&hit.id) {
                    record.meta.last_access_tick = tick;
                    record.meta.last_access_epoch = now_epoch;
                    record.meta.hits += 1;
                    if stored_origin.job != origin.job {
                        record.meta.cross_hits += 1;
                    }
                    self.policy.charge(&mut record.meta);
                }
                return QueryOutcome::Hit {
                    value,
                    similarity,
                    key,
                    origin: stored_origin,
                };
            }
        }
        QueryOutcome::Miss { key }
    }

    /// Read-only probe: the lookup of [`Self::query_with_key_from`] with
    /// *no* side effects — no counters, no tick consumption, no recency
    /// refresh, no lazy TTL reclamation. The batched executor probes every
    /// chunk of an operator application against the store state frozen at
    /// the application's start and replays the bookkeeping afterwards, in
    /// chunk-index order, through [`Self::commit_hit`] /
    /// [`Self::commit_miss_query`] / [`Self::reclaim_expired`].
    pub fn probe_with_key_from(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome {
        let now_epoch = self.clock.epoch();
        let scope_key = self.scope_key(op, loc);
        let Some(scope) = self.scopes.get(&scope_key) else {
            return ProbeOutcome::Miss;
        };
        let Some(hit) = scope.index.search(key) else {
            return ProbeOutcome::Miss;
        };
        let Some(record) = self.entries.get(&hit.id) else {
            return ProbeOutcome::Miss;
        };
        if self.policy.is_expired(&record.meta, now_epoch) {
            return ProbeOutcome::Expired { entry: hit.id };
        }
        let stored_origin = record.meta.origin;
        if !stored_origin.may_serve(&origin) {
            return ProbeOutcome::Miss;
        }
        let similarity = if self.config.gate_on_raw {
            match &record.raw_input {
                Some(stored) => scale_aware_similarity_c(input, stored),
                None => return ProbeOutcome::Miss,
            }
        } else {
            match &record.key {
                Some(stored) => scale_aware_similarity(key, stored),
                None => return ProbeOutcome::Miss,
            }
        };
        if similarity > self.config.tau {
            if let Some(value) = self.values.get(hit.id) {
                return ProbeOutcome::Hit {
                    value,
                    similarity,
                    entry: hit.id,
                    origin: stored_origin,
                };
            }
        }
        ProbeOutcome::Miss
    }

    /// Replays the bookkeeping of a hit discovered by
    /// [`Self::probe_with_key_from`]: query/hit counters, pressure
    /// accounting, and the recency/reuse metadata refresh the eviction
    /// policies rank by. Runs during the batch's ordered commit, so the
    /// logical tick each hit consumes is assigned in chunk-index order —
    /// identical for every thread count. The metadata refresh is skipped if
    /// the entry no longer exists (an earlier commit of the same batch may
    /// have evicted it); that skip is itself deterministic.
    pub fn commit_hit(&mut self, entry: u64, entry_origin: Provenance, origin: Provenance) {
        self.queries += 1;
        let tick = self.clock.next_tick();
        let now_epoch = self.clock.epoch();
        let under_pressure = self.role == BudgetRole::Standalone
            && self
                .config
                .budget
                .pressure(self.resident_bytes(), self.len() as u64)
                >= PRESSURE_THRESHOLD;
        if under_pressure {
            self.pressure_queries += 1;
            self.pressure_hits += 1;
        }
        self.hits += 1;
        if entry_origin.job != origin.job {
            self.cross_job_hits += 1;
        }
        if let Some(record) = self.entries.get_mut(&entry) {
            record.meta.last_access_tick = tick;
            record.meta.last_access_epoch = now_epoch;
            record.meta.hits += 1;
            if entry_origin.job != origin.job {
                record.meta.cross_hits += 1;
            }
            self.policy.charge(&mut record.meta);
        }
    }

    /// Replays the query accounting of a probe that missed (the insert that
    /// follows the exact compute is a separate
    /// [`Self::insert_from_with_cost`]).
    pub fn commit_miss_query(&mut self) {
        self.queries += 1;
        let _tick = self.clock.next_tick();
        let under_pressure = self.role == BudgetRole::Standalone
            && self
                .config
                .budget
                .pressure(self.resident_bytes(), self.len() as u64)
                >= PRESSURE_THRESHOLD;
        if under_pressure {
            self.pressure_queries += 1;
        }
    }

    /// Reclaims an entry a probe found expired, if it still exists and still
    /// is expired — the ordered-commit counterpart of the lazy reclamation
    /// [`Self::query_with_key_from`] performs inline.
    pub fn reclaim_expired(&mut self, entry: u64) {
        let now_epoch = self.clock.epoch();
        let expired = self
            .entries
            .get(&entry)
            .is_some_and(|r| self.policy.is_expired(&r.meta, now_epoch));
        if expired {
            self.remove_entry(entry, RemovalKind::Expired);
        }
    }

    /// Inserts an entry: the FFT `input` (as the key source) and its computed
    /// `output` (as the value). Returns the new entry id.
    pub fn insert(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        iteration: usize,
    ) -> u64 {
        self.insert_from(op, loc, input, key, output, Provenance::solo(iteration))
    }

    /// Inserts an entry on behalf of a specific job/iteration, pricing its
    /// recompute cost with the default analytic model.
    pub fn insert_from(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
    ) -> u64 {
        let cost = recompute_cost_estimate(op, input.len());
        self.insert_from_with_cost(op, loc, input, key, output, origin, cost)
    }

    /// Inserts an entry with an explicit recompute-cost hint (the quantity
    /// cost-aware eviction ranks by). The hint must be a deterministic
    /// function of the operation — wall-clock timings would make eviction
    /// irreproducible.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_from_with_cost(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64 {
        let id = self.clock.next_id();
        let tick = self.clock.next_tick();
        let epoch = self.clock.epoch();
        self.inserts += 1;
        let scope_key = self.scope_key(op, loc);
        let dim = key.len();
        let ivf = self.config.ivf;
        let scope = self.scopes.entry(scope_key).or_insert_with(|| Scope {
            index: IvfIndex::new(dim, ivf, scope_seed(scope_key.0, scope_key.1) ^ 0x5EED),
        });
        scope.index.add(id, key.clone());
        let record = EntryRecord {
            meta: EntryMeta {
                id,
                bytes: 0, // filled below once aux bytes are known
                inserted_tick: tick,
                inserted_epoch: epoch,
                last_access_tick: tick,
                last_access_epoch: epoch,
                cross_hits: 0,
                hits: 0,
                recompute_cost,
                origin,
                op,
                priority: 0.0,
            },
            scope: scope_key,
            raw_input: self
                .config
                .gate_on_raw
                .then(|| Arc::<[Complex64]>::from(input)),
            key: (!self.config.gate_on_raw).then_some(key),
        };
        let aux = record.aux_bytes();
        let value_bytes = (output.len() * 16) as u64;
        let mut record = record;
        record.meta.bytes = value_bytes + aux;
        self.policy.charge(&mut record.meta);
        self.aux_bytes += aux;
        self.values.put(id, output.into());
        self.entries.insert(id, record);
        self.enforce_budget();
        id
    }

    /// Evicts entries until the caps this instance is responsible for hold,
    /// then records the post-enforcement high-water mark. Expired entries
    /// are preferred victims (rank `-∞`) but are otherwise reclaimed lazily,
    /// so stripes and standalone stores converge on the same state.
    fn enforce_budget(&mut self) {
        let now_epoch = self.clock.epoch();
        loop {
            let bytes = self.resident_bytes();
            let entries = self.len() as u64;
            let over = match self.role {
                BudgetRole::Standalone => {
                    self.config.budget.exceeded(bytes, entries)
                        || self.config.budget.stripe_exceeded(bytes, entries)
                }
                BudgetRole::Stripe => self.config.budget.stripe_exceeded(bytes, entries),
            };
            if !over {
                break;
            }
            match self.peek_victim(now_epoch) {
                Some((rank, id)) => {
                    self.policy.on_evict(rank);
                    self.remove_entry(id, RemovalKind::Evicted);
                }
                None => break,
            }
        }
        self.peak_resident = self.peak_resident.max(self.resident_bytes());
    }

    /// The entry the policy would evict next: minimum `(rank, id)` over all
    /// entries, with expired entries ranked `-∞` so they always go first.
    /// Order-independent over the hash map, hence deterministic.
    pub(crate) fn peek_victim(&self, now_epoch: u64) -> Option<(f64, u64)> {
        self.entries
            .values()
            .map(|r| {
                let rank = if self.policy.is_expired(&r.meta, now_epoch) {
                    f64::NEG_INFINITY
                } else {
                    self.policy.rank(&r.meta, now_epoch)
                };
                (rank, r.meta.id)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    /// Evicts a specific entry on behalf of the owning sharded store's
    /// global enforcement. Returns the bytes freed.
    pub(crate) fn evict_id(&mut self, id: u64) -> u64 {
        self.remove_entry(id, RemovalKind::Evicted)
    }

    /// Drains the `(bytes, entries)` freed since the last drain — lets a
    /// sharded owner keep its published resident counters exact without
    /// re-summing every stripe.
    pub(crate) fn drain_freed(&mut self) -> (u64, u64) {
        let freed = (self.freed_bytes_unpublished, self.freed_entries_unpublished);
        self.freed_bytes_unpublished = 0;
        self.freed_entries_unpublished = 0;
        freed
    }

    fn remove_entry(&mut self, id: u64, kind: RemovalKind) -> u64 {
        let Some(record) = self.entries.remove(&id) else {
            return 0;
        };
        if let Some(scope) = self.scopes.get_mut(&record.scope) {
            scope.index.remove(id);
        }
        self.values.remove(id);
        let aux = record.aux_bytes();
        self.aux_bytes -= aux;
        let freed = record.meta.bytes;
        self.freed_bytes_unpublished += freed;
        self.freed_entries_unpublished += 1;
        match kind {
            RemovalKind::Evicted => self.evictions += 1,
            RemovalKind::Expired => self.expirations += 1,
            RemovalKind::Lost => {}
        }
        freed
    }

    /// Removes every resident entry — a crashed stripe losing its contents
    /// (warm-up from scratch). The eviction policy is neither consulted nor
    /// notified, and neither the eviction nor the expiration counter moves:
    /// the removals land in the freed-accounting drained by
    /// [`Self::drain_freed`]. Returns the lost entry ids in ascending order.
    pub(crate) fn purge_all(&mut self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        for &id in &ids {
            self.remove_entry(id, RemovalKind::Lost);
        }
        ids
    }

    /// Average number of key comparisons one query performs (used by the
    /// simulated-cost reports).
    pub fn comparisons_per_query(&self) -> f64 {
        if self.scopes.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .scopes
            .values()
            .map(|s| s.index.comparisons_per_query())
            .sum();
        total as f64 / self.scopes.len() as f64
    }
}

/// A query counts as "under pressure" when the tightest global cap is at
/// least this utilised — the regime the bounded-store hit rate is judged in.
pub(crate) const PRESSURE_THRESHOLD: f64 = 0.95;

#[derive(Debug, Clone, Copy)]
enum RemovalKind {
    Evicted,
    Expired,
    /// Removed because the owning (simulated) memory node crashed: neither
    /// an eviction (the policy is not consulted and not notified) nor an
    /// expiry — the entry was simply lost with its node.
    Lost,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn db(tau: f64) -> MemoDatabase {
        MemoDatabase::new(
            MemoDbConfig {
                tau,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        )
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    #[test]
    fn query_empty_is_miss() {
        let mut d = db(0.9);
        assert!(d.is_empty());
        match d.query(FftOpKind::Fu2D, 0, &chunk(1.0, 0.0, 128)) {
            QueryOutcome::Miss { key } => assert_eq!(key.len(), 8),
            QueryOutcome::Hit { .. } => panic!("unexpected hit"),
        }
        assert_eq!(d.queries(), 1);
    }

    #[test]
    fn insert_then_identical_query_hits() {
        let mut d = db(0.9);
        let input = chunk(1.0, 0.0, 256);
        let output = chunk(2.0, 1.0, 64);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 3, &input, key, output.clone(), 0);
        match d.query(FftOpKind::Fu2D, 3, &input) {
            QueryOutcome::Hit {
                value, similarity, ..
            } => {
                assert!(similarity > 0.999);
                assert_eq!(value.as_ref(), output.as_slice());
            }
            QueryOutcome::Miss { .. } => panic!("expected hit"),
        }
    }

    #[test]
    fn dissimilar_query_misses() {
        let mut d = db(0.95);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 3, &input, key, chunk(2.0, 1.0, 64), 0);
        // Same location but very different content.
        let other = chunk(1.0, 2.5, 256);
        match d.query(FftOpKind::Fu2D, 3, &other) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { similarity, .. } => {
                panic!("expected miss, got hit with similarity {similarity}")
            }
        }
    }

    #[test]
    fn per_location_scoping_prevents_cross_location_hits() {
        let mut d = db(0.9);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 0, &input, key, chunk(2.0, 1.0, 64), 0);
        match d.query(FftOpKind::Fu2D, 1, &input) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("per-location scoping violated"),
        }
    }

    #[test]
    fn global_scope_allows_cross_location_hits() {
        let config = MemoDbConfig {
            tau: 0.9,
            per_location: false,
            ..Default::default()
        };
        let mut d = MemoDatabase::new(config, tiny_encoder_config(), 2);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 0, &input, key, chunk(2.0, 1.0, 64), 0);
        match d.query(FftOpKind::Fu2D, 7, &input) {
            QueryOutcome::Hit { .. } => {}
            QueryOutcome::Miss { .. } => panic!("global scope should hit"),
        }
    }

    #[test]
    fn tau_controls_strictness() {
        // A mildly perturbed chunk should hit under a loose τ and miss under
        // a strict one.
        let base = chunk(1.0, 0.0, 256);
        let perturbed: Vec<Complex64> = base
            .iter()
            .enumerate()
            .map(|(i, z)| *z + chunk(0.12, 1.3, 256)[i])
            .collect();
        let sim = mlr_math::norms::scale_aware_similarity_c(&base, &perturbed);
        assert!(sim > 0.85 && sim < 0.999, "test setup: sim {sim}");

        let mut loose = db((sim - 0.05).max(0.0));
        let key = loose.encode(&base);
        loose.insert(FftOpKind::Fu1D, 0, &base, key, chunk(2.0, 0.5, 32), 0);
        assert!(matches!(
            loose.query(FftOpKind::Fu1D, 0, &perturbed),
            QueryOutcome::Hit { .. }
        ));

        let mut strict = db((sim + 0.02).min(0.9999));
        let key = strict.encode(&base);
        strict.insert(FftOpKind::Fu1D, 0, &base, key, chunk(2.0, 0.5, 32), 0);
        assert!(matches!(
            strict.query(FftOpKind::Fu1D, 0, &perturbed),
            QueryOutcome::Miss { .. }
        ));
    }

    #[test]
    fn value_bytes_grow_with_insertions() {
        let mut d = db(0.9);
        assert_eq!(d.value_bytes(), 0);
        for loc in 0..4 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = d.encode(&input);
            d.insert(FftOpKind::Fu2D, loc, &input, key, chunk(1.0, 0.0, 32), 0);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.value_bytes(), 4 * 32 * 16);
        // Resident bytes additionally count the retained raw inputs and the
        // peak is at least the current footprint.
        assert!(d.resident_bytes() > d.value_bytes());
        assert!(d.peak_resident_bytes() >= d.resident_bytes());
        assert!(d.comparisons_per_query() > 0.0);
    }

    #[test]
    fn entry_budget_is_enforced_after_every_insert() {
        let mut d = MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                budget: CapacityBudget::entries(3),
                eviction: EvictionPolicyKind::Fifo,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        );
        for loc in 0..8 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = d.encode(&input);
            d.insert(FftOpKind::Fu2D, loc, &input, key, chunk(1.0, 0.0, 32), 0);
            assert!(d.len() <= 3, "entry cap violated after insert {loc}");
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.evictions(), 5);
        // FIFO evicted the oldest entries: the earliest locations now miss.
        assert!(matches!(
            d.query(FftOpKind::Fu2D, 0, &chunk(1.0, 0.0, 64)),
            QueryOutcome::Miss { .. }
        ));
        assert!(matches!(
            d.query(FftOpKind::Fu2D, 7, &chunk(8.0, 0.0, 64)),
            QueryOutcome::Hit { .. }
        ));
    }

    #[test]
    fn byte_budget_bounds_resident_footprint() {
        let mut d = MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                budget: CapacityBudget::unbounded(),
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        );
        // Measure the footprint of 4 entries, then rebuild with half of it.
        for loc in 0..4 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = d.encode(&input);
            d.insert(FftOpKind::Fu2D, loc, &input, key, chunk(1.0, 0.0, 32), 0);
        }
        let full = d.resident_bytes();
        let cap = full / 2;
        let mut bounded = MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                budget: CapacityBudget::bytes(cap),
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        );
        for loc in 0..4 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = bounded.encode(&input);
            bounded.insert(FftOpKind::Fu2D, loc, &input, key, chunk(1.0, 0.0, 32), 0);
            assert!(
                bounded.resident_bytes() <= cap,
                "byte cap violated: {} > {cap}",
                bounded.resident_bytes()
            );
        }
        assert!(bounded.peak_resident_bytes() <= cap);
        assert!(bounded.evictions() > 0);
    }

    #[test]
    fn ttl_entries_become_unreachable() {
        let mut d = MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                eviction: EvictionPolicyKind::Ttl { ttl_epochs: 2 },
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        );
        let input = chunk(1.0, 0.0, 128);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 0, &input, key, chunk(1.0, 0.0, 16), 0);
        d.advance_epoch();
        // Within the TTL: reachable.
        assert!(matches!(
            d.query_with_key_from(
                FftOpKind::Fu2D,
                0,
                &input,
                d.encode(&input),
                Provenance::solo(1)
            ),
            QueryOutcome::Hit { .. }
        ));
        d.advance_epoch();
        d.advance_epoch();
        // Past the TTL: unreachable and lazily reclaimed.
        assert!(matches!(
            d.query_with_key_from(
                FftOpKind::Fu2D,
                0,
                &input,
                d.encode(&input),
                Provenance::solo(3)
            ),
            QueryOutcome::Miss { .. }
        ));
        assert_eq!(d.len(), 0);
        assert_eq!(d.expirations(), 1);
    }
}
