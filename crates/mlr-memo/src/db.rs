//! The memoization database: encoder + index database + value database.
//!
//! This is the memory-node side of the paper's distributed memoization
//! (§4.3.2). An *insertion* encodes the FFT input chunk into a key, adds the
//! key to the index database and the FFT output to the value database. A
//! *query* encodes the input, asks the index database for the most similar
//! stored key and — only if the similarity clears the threshold `τ` —
//! returns the associated value.
//!
//! The similarity gate follows the paper's Eq. 3: cosine similarity between
//! the query key and the stored key. By default the gate is evaluated on the
//! raw input chunks (stored alongside each entry), which makes the
//! accuracy-vs-τ experiments faithful to what τ means in the paper; the
//! encoded keys are what the ANN index searches.

use crate::ann::{IvfConfig, IvfIndex};
use crate::encoder::{CnnEncoder, EncoderConfig};
use crate::kvstore::ValueStore;
use crate::store::{Provenance, StoreStats};
use mlr_lamino::FftOpKind;
use mlr_math::norms::{scale_aware_similarity, scale_aware_similarity_c};
use mlr_math::Complex64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Database configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoDbConfig {
    /// Similarity threshold `τ`: a stored value is reused only when the
    /// cosine similarity between query and stored key exceeds it.
    pub tau: f64,
    /// Scope searches to the (operation, chunk location) pair. The paper's
    /// observation (Figure 4) is that reuse happens *at* a chunk location
    /// across iterations, so this is the default; disabling it searches
    /// across locations.
    pub per_location: bool,
    /// Evaluate the τ gate on the raw input chunks (exact fidelity, more
    /// memory); when `false` the gate uses the encoded keys only.
    pub gate_on_raw: bool,
    /// ANN index parameters.
    pub ivf: IvfConfig,
}

impl Default for MemoDbConfig {
    fn default() -> Self {
        Self {
            tau: 0.92,
            per_location: true,
            gate_on_raw: true,
            ivf: IvfConfig::default(),
        }
    }
}

/// Outcome of a database query.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// A value passed the τ gate; `similarity` is the measured cosine
    /// similarity and `key` the encoded key of the query (reusable for the
    /// compute-node cache).
    Hit {
        /// The stored FFT result.
        value: Arc<Vec<Complex64>>,
        /// Cosine similarity between query and stored entry.
        similarity: f64,
        /// Encoded query key.
        key: Vec<f64>,
        /// Which job/iteration inserted the entry that served this hit
        /// (drives the cross-job accounting of shared stores).
        origin: Provenance,
    },
    /// No stored entry was similar enough; the encoded key is returned so the
    /// caller can reuse it for the insertion that follows the exact compute.
    Miss {
        /// Encoded query key.
        key: Vec<f64>,
    },
}

/// One index scope (either global or per (op, location)).
#[derive(Debug)]
struct Scope {
    index: IvfIndex,
}

/// The memoization database.
pub struct MemoDatabase {
    config: MemoDbConfig,
    encoder: CnnEncoder,
    scopes: HashMap<(FftOpKind, usize), Scope>,
    values: ValueStore,
    /// Raw inputs kept for the τ gate (entry id → input chunk).
    raw_inputs: HashMap<u64, Arc<Vec<Complex64>>>,
    /// Encoded keys kept for the τ gate when raw gating is disabled.
    keys: HashMap<u64, Vec<f64>>,
    /// Job + outer ADMM iteration in which each entry was inserted.
    origins: HashMap<u64, Provenance>,
    next_id: u64,
    /// Total number of index queries served (for reports).
    queries: u64,
    /// Queries that returned a value.
    hits: u64,
    /// Hits served by an entry another job inserted.
    cross_job_hits: u64,
    /// Insertions performed.
    inserts: u64,
}

/// Stable 64-bit hash of an index scope, used to seed the scope's ANN index.
/// Deriving the seed from the *scope* (rather than from the running entry
/// counter) makes query outcomes independent of how entries interleave
/// across scopes — and therefore identical whether the scopes live in one
/// database or are spread over the shards of a `ShardedMemoDb`.
pub(crate) fn scope_seed(op: FftOpKind, loc: usize) -> u64 {
    // FNV-1a over the discriminant and location.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in [(op as u8)].into_iter().chain(loc.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl MemoDatabase {
    /// Creates an empty database with the given configuration and a fresh
    /// (untrained) encoder.
    pub fn new(config: MemoDbConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        Self::with_encoder(config, CnnEncoder::new(encoder_config, seed))
    }

    /// Creates an empty database around an existing (possibly pre-trained)
    /// encoder.
    pub fn with_encoder(config: MemoDbConfig, encoder: CnnEncoder) -> Self {
        Self {
            config,
            encoder,
            scopes: HashMap::new(),
            values: ValueStore::new(),
            raw_inputs: HashMap::new(),
            keys: HashMap::new(),
            origins: HashMap::new(),
            next_id: 0,
            queries: 0,
            hits: 0,
            cross_job_hits: 0,
            inserts: 0,
        }
    }

    /// The database configuration.
    pub fn config(&self) -> &MemoDbConfig {
        &self.config
    }

    /// Mutable access to the encoder (e.g. to train it on collected chunks).
    pub fn encoder_mut(&mut self) -> &mut CnnEncoder {
        &mut self.encoder
    }

    /// The encoder.
    pub fn encoder(&self) -> &CnnEncoder {
        &self.encoder
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the value database.
    pub fn value_bytes(&self) -> u64 {
        self.values.bytes()
    }

    /// Number of queries served.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Aggregate counters in the shape shared with the other memo stores.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.len(),
            queries: self.queries,
            hits: self.hits,
            cross_job_hits: self.cross_job_hits,
            inserts: self.inserts,
            value_bytes: self.value_bytes(),
        }
    }

    /// Encodes an input chunk into a key (exposed for the compute-node cache
    /// and for benches that time the encoder separately).
    pub fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.encoder.encode(input)
    }

    fn scope_key(&self, op: FftOpKind, loc: usize) -> (FftOpKind, usize) {
        if self.config.per_location {
            (op, loc)
        } else {
            (op, usize::MAX)
        }
    }

    /// Queries the database for an entry similar to `input` at
    /// `(op, loc)`.
    pub fn query(&mut self, op: FftOpKind, loc: usize, input: &[Complex64]) -> QueryOutcome {
        let key = self.encode(input);
        self.query_with_key(op, loc, input, key, usize::MAX)
    }

    /// Queries with a pre-computed encoded key (avoids double encoding when
    /// the caller already consulted the compute-node cache).
    pub fn query_with_key(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        current_iteration: usize,
    ) -> QueryOutcome {
        self.query_with_key_from(op, loc, input, key, Provenance::solo(current_iteration))
    }

    /// Queries with a pre-computed key on behalf of a specific job/iteration
    /// (the multi-tenant entry point used through the `MemoStore` seam).
    pub fn query_with_key_from(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.queries += 1;
        let scope_key = self.scope_key(op, loc);
        let Some(scope) = self.scopes.get(&scope_key) else {
            return QueryOutcome::Miss { key };
        };
        let Some(hit) = scope.index.search(&key) else {
            return QueryOutcome::Miss { key };
        };
        // Within one job, only entries from *earlier* ADMM iterations may be
        // reused; a value produced within the current LSP solve would feed
        // the CG its own output back and stall the update. Entries from
        // other jobs are always eligible.
        let stored_origin = self
            .origins
            .get(&hit.id)
            .copied()
            .unwrap_or(Provenance::solo(0));
        if !stored_origin.may_serve(&origin) {
            return QueryOutcome::Miss { key };
        }
        let similarity = if self.config.gate_on_raw {
            match self.raw_inputs.get(&hit.id) {
                Some(stored) => scale_aware_similarity_c(input, stored),
                None => return QueryOutcome::Miss { key },
            }
        } else {
            match self.keys.get(&hit.id) {
                Some(stored) => scale_aware_similarity(&key, stored),
                None => return QueryOutcome::Miss { key },
            }
        };
        if similarity > self.config.tau {
            if let Some(value) = self.values.get(hit.id) {
                self.hits += 1;
                if stored_origin.job != origin.job {
                    self.cross_job_hits += 1;
                }
                return QueryOutcome::Hit {
                    value,
                    similarity,
                    key,
                    origin: stored_origin,
                };
            }
        }
        QueryOutcome::Miss { key }
    }

    /// Inserts an entry: the FFT `input` (as the key source) and its computed
    /// `output` (as the value). Returns the new entry id.
    pub fn insert(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        iteration: usize,
    ) -> u64 {
        self.insert_from(op, loc, input, key, output, Provenance::solo(iteration))
    }

    /// Inserts an entry on behalf of a specific job/iteration.
    pub fn insert_from(
        &mut self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.inserts += 1;
        self.origins.insert(id, origin);
        let scope_key = self.scope_key(op, loc);
        let dim = key.len();
        let ivf = self.config.ivf;
        let scope = self.scopes.entry(scope_key).or_insert_with(|| Scope {
            index: IvfIndex::new(dim, ivf, scope_seed(scope_key.0, scope_key.1) ^ 0x5EED),
        });
        scope.index.add(id, key.clone());
        if self.config.gate_on_raw {
            self.raw_inputs.insert(id, Arc::new(input.to_vec()));
        } else {
            self.keys.insert(id, key);
        }
        self.values.put(id, output);
        id
    }

    /// Average number of key comparisons one query performs (used by the
    /// simulated-cost reports).
    pub fn comparisons_per_query(&self) -> f64 {
        if self.scopes.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .scopes
            .values()
            .map(|s| s.index.comparisons_per_query())
            .sum();
        total as f64 / self.scopes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn db(tau: f64) -> MemoDatabase {
        MemoDatabase::new(
            MemoDbConfig {
                tau,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        )
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    #[test]
    fn query_empty_is_miss() {
        let mut d = db(0.9);
        assert!(d.is_empty());
        match d.query(FftOpKind::Fu2D, 0, &chunk(1.0, 0.0, 128)) {
            QueryOutcome::Miss { key } => assert_eq!(key.len(), 8),
            QueryOutcome::Hit { .. } => panic!("unexpected hit"),
        }
        assert_eq!(d.queries(), 1);
    }

    #[test]
    fn insert_then_identical_query_hits() {
        let mut d = db(0.9);
        let input = chunk(1.0, 0.0, 256);
        let output = chunk(2.0, 1.0, 64);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 3, &input, key, output.clone(), 0);
        match d.query(FftOpKind::Fu2D, 3, &input) {
            QueryOutcome::Hit {
                value, similarity, ..
            } => {
                assert!(similarity > 0.999);
                assert_eq!(value.as_slice(), output.as_slice());
            }
            QueryOutcome::Miss { .. } => panic!("expected hit"),
        }
    }

    #[test]
    fn dissimilar_query_misses() {
        let mut d = db(0.95);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 3, &input, key, chunk(2.0, 1.0, 64), 0);
        // Same location but very different content.
        let other = chunk(1.0, 2.5, 256);
        match d.query(FftOpKind::Fu2D, 3, &other) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { similarity, .. } => {
                panic!("expected miss, got hit with similarity {similarity}")
            }
        }
    }

    #[test]
    fn per_location_scoping_prevents_cross_location_hits() {
        let mut d = db(0.9);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 0, &input, key, chunk(2.0, 1.0, 64), 0);
        match d.query(FftOpKind::Fu2D, 1, &input) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("per-location scoping violated"),
        }
    }

    #[test]
    fn global_scope_allows_cross_location_hits() {
        let config = MemoDbConfig {
            tau: 0.9,
            per_location: false,
            ..Default::default()
        };
        let mut d = MemoDatabase::new(config, tiny_encoder_config(), 2);
        let input = chunk(1.0, 0.0, 256);
        let key = d.encode(&input);
        d.insert(FftOpKind::Fu2D, 0, &input, key, chunk(2.0, 1.0, 64), 0);
        match d.query(FftOpKind::Fu2D, 7, &input) {
            QueryOutcome::Hit { .. } => {}
            QueryOutcome::Miss { .. } => panic!("global scope should hit"),
        }
    }

    #[test]
    fn tau_controls_strictness() {
        // A mildly perturbed chunk should hit under a loose τ and miss under
        // a strict one.
        let base = chunk(1.0, 0.0, 256);
        let perturbed: Vec<Complex64> = base
            .iter()
            .enumerate()
            .map(|(i, z)| *z + chunk(0.12, 1.3, 256)[i])
            .collect();
        let sim = mlr_math::norms::scale_aware_similarity_c(&base, &perturbed);
        assert!(sim > 0.85 && sim < 0.999, "test setup: sim {sim}");

        let mut loose = db((sim - 0.05).max(0.0));
        let key = loose.encode(&base);
        loose.insert(FftOpKind::Fu1D, 0, &base, key, chunk(2.0, 0.5, 32), 0);
        assert!(matches!(
            loose.query(FftOpKind::Fu1D, 0, &perturbed),
            QueryOutcome::Hit { .. }
        ));

        let mut strict = db((sim + 0.02).min(0.9999));
        let key = strict.encode(&base);
        strict.insert(FftOpKind::Fu1D, 0, &base, key, chunk(2.0, 0.5, 32), 0);
        assert!(matches!(
            strict.query(FftOpKind::Fu1D, 0, &perturbed),
            QueryOutcome::Miss { .. }
        ));
    }

    #[test]
    fn value_bytes_grow_with_insertions() {
        let mut d = db(0.9);
        assert_eq!(d.value_bytes(), 0);
        for loc in 0..4 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = d.encode(&input);
            d.insert(FftOpKind::Fu2D, loc, &input, key, chunk(1.0, 0.0, 32), 0);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.value_bytes(), 4 * 32 * 16);
        assert!(d.comparisons_per_query() > 0.0);
    }
}
