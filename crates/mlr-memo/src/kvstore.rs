//! The value database: an in-memory sharded key-value store.
//!
//! The paper uses Redis on the memory node to hold the FFT-operation results
//! (the "values"); the compute node retrieves a value only after the index
//! database has produced a matching key. This module provides the same
//! get/put/async-put surface as an embedded, sharded hash map guarded by
//! `parking_lot` locks, with byte accounting so the harnesses can report
//! database growth against the memory node's capacity.
//!
//! Values are stored as `Arc<[Complex64]>` — the canonical shared payload
//! type of the whole memo stack. A `get` hands out another reference to the
//! same buffer, so a memoization hit never deep-clones the chunk payload:
//! the only copy on the hit path is the executor's final memcpy into the
//! operator's own grid buffer.

use mlr_math::Complex64;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of shards; a small power of two is plenty for the access pattern
/// (one writer per chunk, many readers).
const SHARDS: usize = 16;

/// An in-memory, thread-safe value store mapping entry ids to FFT results.
#[derive(Debug, Default)]
pub struct ValueStore {
    shards: Vec<RwLock<HashMap<u64, Arc<[Complex64]>>>>,
    bytes: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
}

impl ValueStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            bytes: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, id: u64) -> &RwLock<HashMap<u64, Arc<[Complex64]>>> {
        &self.shards[(id as usize) % SHARDS]
    }

    /// Stores (or replaces) the shared value buffer for `id`. Returns the
    /// previous value's size in bytes, if any.
    pub fn put(&self, id: u64, value: Arc<[Complex64]>) -> Option<usize> {
        let new_bytes = value.len() as u64 * 16;
        let prev = self.shard(id).write().insert(id, value);
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_bytes, Ordering::Relaxed);
        prev.map(|old| {
            let old_bytes = old.len() * 16;
            self.bytes.fetch_sub(old_bytes as u64, Ordering::Relaxed);
            old_bytes
        })
    }

    /// Retrieves the value for `id`, if present. The value is shared (`Arc`)
    /// so large results are not copied on the hot path.
    pub fn get(&self, id: u64) -> Option<Arc<[Complex64]>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let hit = self.shard(id).read().get(&id).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Removes the value for `id`, if present; returns the freed bytes so
    /// eviction can keep its accounting exact.
    pub fn remove(&self, id: u64) -> Option<usize> {
        let removed = self.shard(id).write().remove(&id);
        removed.map(|v| {
            let freed = v.len() * 16;
            self.bytes.fetch_sub(freed as u64, Ordering::Relaxed);
            freed
        })
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident size of the stored values, in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// `(puts, gets, hits)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(n: usize, v: f64) -> Arc<[Complex64]> {
        vec![Complex64::new(v, -v); n].into()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = ValueStore::new();
        assert!(store.is_empty());
        store.put(42, value(8, 1.0));
        let got = store.get(42).expect("stored value");
        assert_eq!(got.len(), 8);
        assert_eq!(got[0], Complex64::new(1.0, -1.0));
        assert!(store.get(43).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn byte_accounting_on_replace_and_remove() {
        let store = ValueStore::new();
        store.put(1, value(10, 1.0));
        assert_eq!(store.bytes(), 160);
        let prev = store.put(1, value(4, 2.0));
        assert_eq!(prev, Some(160));
        assert_eq!(store.bytes(), 64);
        assert_eq!(store.remove(1), Some(64));
        assert_eq!(store.remove(1), None);
        assert_eq!(store.bytes(), 0);
    }

    #[test]
    fn counters_track_hits() {
        let store = ValueStore::new();
        store.put(7, value(2, 3.0));
        let _ = store.get(7);
        let _ = store.get(8);
        let (puts, gets, hits) = store.counters();
        assert_eq!((puts, gets, hits), (1, 2, 1));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = Arc::new(ValueStore::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    s.put(t * 1000 + i, value(4, i as f64));
                    assert!(s.get(t * 1000 + i).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 800);
    }
}
