//! Memoization statistics.
//!
//! The engine classifies every memoizable FFT invocation into the three cases
//! of the paper's §6.4 breakdown (Figure 10):
//!
//! 1. **failed memoization** — no sufficiently similar entry exists; the FFT
//!    is computed and the result inserted into the database;
//! 2. **successful memoization** — a database entry is reused (remote round
//!    trip, no FFT);
//! 3. **cache hit** — the compute-node cache satisfies the query (no remote
//!    round trip, no FFT).

use mlr_lamino::FftOpKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How one memoizable FFT invocation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoCase {
    /// Computed exactly, without consulting the memoization system (either
    /// memoization is disabled or the operation is not memoizable).
    Computed,
    /// Case 1: database miss → compute + insert.
    FailedMemo,
    /// Case 2: database hit (value retrieved from the memory node).
    DbHit,
    /// Case 3: compute-node cache hit.
    CacheHit,
    /// Routed straight to the exact FFT by the norm prefilter: the chunk's
    /// fingerprint had no τ-band neighbor in the scope's recent history, so
    /// encode, cache peek and database probe were all skipped.
    Prefiltered,
}

/// Per-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Invocations computed without memoization.
    pub computed: u64,
    /// Case-1 invocations (miss + insert).
    pub failed_memo: u64,
    /// Case-2 invocations (database hit).
    pub db_hits: u64,
    /// Case-3 invocations (cache hit).
    pub cache_hits: u64,
    /// Invocations the norm prefilter routed straight to the exact FFT.
    pub prefiltered: u64,
    /// Wall-clock seconds spent inside the exact compute closure.
    pub compute_seconds: f64,
    /// Keys encoded.
    pub keys_encoded: u64,
    /// Bytes shipped to/from the memory node (keys + values).
    pub remote_bytes: u64,
}

impl OpStats {
    /// Total memoizable invocations.
    pub fn total(&self) -> u64 {
        self.computed + self.failed_memo + self.db_hits + self.cache_hits + self.prefiltered
    }

    /// Fraction of invocations whose FFT computation was avoided.
    pub fn avoided_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.db_hits + self.cache_hits) as f64 / total as f64
        }
    }
}

/// The operation kinds in dense-index order — the canonical array defined
/// next to [`FftOpKind::index`] (pinned to be its inverse by a test there).
const KINDS: [FftOpKind; 6] = FftOpKind::DENSE;

/// Fixed-arity per-operation counter table — the engine's internal, `Copy`
/// representation of [`MemoStats`].
///
/// Snapshotting a hash-map-backed `MemoStats` under the engine's state lock
/// cloned (and allocated) on every `stats()` call; this table is a plain
/// array of `Copy` counters, so a snapshot is one memcpy and the conversion
/// to the reporting shape happens outside the lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpStatsTable {
    per_op: [OpStats; KINDS.len()],
}

impl Default for OpStatsTable {
    fn default() -> Self {
        Self {
            per_op: [OpStats::default(); KINDS.len()],
        }
    }
}

impl OpStatsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation outcome.
    pub fn record(&mut self, op: FftOpKind, case: MemoCase) {
        let entry = &mut self.per_op[op.index()];
        match case {
            MemoCase::Computed => entry.computed += 1,
            MemoCase::FailedMemo => entry.failed_memo += 1,
            MemoCase::DbHit => entry.db_hits += 1,
            MemoCase::CacheHit => entry.cache_hits += 1,
            MemoCase::Prefiltered => entry.prefiltered += 1,
        }
    }

    /// Adds compute wall-clock time for an operation.
    pub fn add_compute_time(&mut self, op: FftOpKind, seconds: f64) {
        self.per_op[op.index()].compute_seconds += seconds;
    }

    /// Adds one encoded key for an operation.
    pub fn add_encoded_key(&mut self, op: FftOpKind) {
        self.per_op[op.index()].keys_encoded += 1;
    }

    /// Adds remote traffic for an operation.
    pub fn add_remote_bytes(&mut self, op: FftOpKind, bytes: u64) {
        self.per_op[op.index()].remote_bytes += bytes;
    }

    /// Counters for one operation.
    pub fn op(&self, op: FftOpKind) -> OpStats {
        self.per_op[op.index()]
    }

    /// Converts to the map-backed reporting shape (operations that never
    /// recorded anything are omitted, matching the map's historical
    /// contents).
    pub fn to_stats(&self) -> MemoStats {
        let mut out = MemoStats::new();
        for (kind, stats) in KINDS.iter().zip(&self.per_op) {
            if *stats != OpStats::default() {
                out.per_op.insert(*kind, *stats);
            }
        }
        out
    }
}

/// Aggregated statistics across operations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoStats {
    per_op: HashMap<FftOpKind, OpStats>,
}

impl MemoStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation outcome.
    pub fn record(&mut self, op: FftOpKind, case: MemoCase) {
        let entry = self.per_op.entry(op).or_default();
        match case {
            MemoCase::Computed => entry.computed += 1,
            MemoCase::FailedMemo => entry.failed_memo += 1,
            MemoCase::DbHit => entry.db_hits += 1,
            MemoCase::CacheHit => entry.cache_hits += 1,
            MemoCase::Prefiltered => entry.prefiltered += 1,
        }
    }

    /// Adds compute wall-clock time for an operation.
    pub fn add_compute_time(&mut self, op: FftOpKind, seconds: f64) {
        self.per_op.entry(op).or_default().compute_seconds += seconds;
    }

    /// Adds one encoded key for an operation.
    pub fn add_encoded_key(&mut self, op: FftOpKind) {
        self.per_op.entry(op).or_default().keys_encoded += 1;
    }

    /// Adds remote traffic for an operation.
    pub fn add_remote_bytes(&mut self, op: FftOpKind, bytes: u64) {
        self.per_op.entry(op).or_default().remote_bytes += bytes;
    }

    /// Counters for one operation.
    pub fn op(&self, op: FftOpKind) -> OpStats {
        self.per_op.get(&op).copied().unwrap_or_default()
    }

    /// Sum over all operations.
    pub fn total(&self) -> OpStats {
        let mut out = OpStats::default();
        for s in self.per_op.values() {
            out.computed += s.computed;
            out.failed_memo += s.failed_memo;
            out.db_hits += s.db_hits;
            out.cache_hits += s.cache_hits;
            out.prefiltered += s.prefiltered;
            out.compute_seconds += s.compute_seconds;
            out.keys_encoded += s.keys_encoded;
            out.remote_bytes += s.remote_bytes;
        }
        out
    }

    /// Distribution of the three memoization cases over all memoizable
    /// invocations: `(failed, db_hit, cache_hit)` as fractions summing to 1
    /// (ignores plain computed invocations). Matches the paper's 53/19/28 %
    /// breakdown in §6.4.
    pub fn case_distribution(&self) -> (f64, f64, f64) {
        let t = self.total();
        let memoizable = (t.failed_memo + t.db_hits + t.cache_hits) as f64;
        if memoizable == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            t.failed_memo as f64 / memoizable,
            t.db_hits as f64 / memoizable,
            t.cache_hits as f64 / memoizable,
        )
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &MemoStats) {
        for (op, s) in &other.per_op {
            let entry = self.per_op.entry(*op).or_default();
            entry.computed += s.computed;
            entry.failed_memo += s.failed_memo;
            entry.db_hits += s.db_hits;
            entry.cache_hits += s.cache_hits;
            entry.prefiltered += s.prefiltered;
            entry.compute_seconds += s.compute_seconds;
            entry.keys_encoded += s.keys_encoded;
            entry.remote_bytes += s.remote_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_snapshot_matches_map_shape() {
        let mut table = OpStatsTable::new();
        let mut map = MemoStats::new();
        for (op, case) in [
            (FftOpKind::Fu2D, MemoCase::FailedMemo),
            (FftOpKind::Fu2D, MemoCase::DbHit),
            (FftOpKind::Fu1D, MemoCase::CacheHit),
            (FftOpKind::F2D, MemoCase::Computed),
        ] {
            table.record(op, case);
            map.record(op, case);
        }
        table.add_compute_time(FftOpKind::Fu2D, 0.5);
        map.add_compute_time(FftOpKind::Fu2D, 0.5);
        table.add_encoded_key(FftOpKind::Fu1D);
        map.add_encoded_key(FftOpKind::Fu1D);
        table.add_remote_bytes(FftOpKind::Fu2D, 64);
        map.add_remote_bytes(FftOpKind::Fu2D, 64);
        assert_eq!(table.to_stats(), map);
        assert_eq!(table.op(FftOpKind::Fu2D), map.op(FftOpKind::Fu2D));
        // Untouched operations are omitted from the map, as before.
        assert_eq!(table.op(FftOpKind::Fu2DAdj), OpStats::default());
        assert_eq!(table.to_stats().total().total(), map.total().total());
        // The snapshot itself is a plain copy.
        let snapshot = table;
        assert_eq!(snapshot.to_stats(), table.to_stats());
    }

    #[test]
    fn record_and_query() {
        let mut s = MemoStats::new();
        s.record(FftOpKind::Fu2D, MemoCase::FailedMemo);
        s.record(FftOpKind::Fu2D, MemoCase::DbHit);
        s.record(FftOpKind::Fu2D, MemoCase::CacheHit);
        s.record(FftOpKind::Fu1D, MemoCase::Computed);
        s.record(FftOpKind::Fu1D, MemoCase::Prefiltered);
        let fu2d = s.op(FftOpKind::Fu2D);
        assert_eq!(fu2d.total(), 3);
        assert!((fu2d.avoided_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.op(FftOpKind::Fu1D).prefiltered, 1);
        assert_eq!(s.total().total(), 5);
        // Prefiltered chunks run the exact FFT: they never count as avoided.
        assert_eq!(s.op(FftOpKind::Fu1D).avoided_fraction(), 0.0);
    }

    #[test]
    fn case_distribution_sums_to_one() {
        let mut s = MemoStats::new();
        for _ in 0..53 {
            s.record(FftOpKind::Fu2D, MemoCase::FailedMemo);
        }
        for _ in 0..19 {
            s.record(FftOpKind::Fu2D, MemoCase::DbHit);
        }
        for _ in 0..28 {
            s.record(FftOpKind::Fu2D, MemoCase::CacheHit);
        }
        let (f, d, c) = s.case_distribution();
        assert!((f + d + c - 1.0).abs() < 1e-12);
        assert!((f - 0.53).abs() < 1e-12);
        assert!((c - 0.28).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let s = MemoStats::new();
        assert_eq!(s.case_distribution(), (0.0, 0.0, 0.0));
        assert_eq!(s.op(FftOpKind::Fu1D).total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MemoStats::new();
        a.record(FftOpKind::Fu1D, MemoCase::DbHit);
        a.add_compute_time(FftOpKind::Fu1D, 1.5);
        let mut b = MemoStats::new();
        b.record(FftOpKind::Fu1D, MemoCase::DbHit);
        b.add_remote_bytes(FftOpKind::Fu1D, 100);
        b.add_encoded_key(FftOpKind::Fu1D);
        a.merge(&b);
        let s = a.op(FftOpKind::Fu1D);
        assert_eq!(s.db_hits, 2);
        assert_eq!(s.remote_bytes, 100);
        assert_eq!(s.keys_encoded, 1);
        assert!((s.compute_seconds - 1.5).abs() < 1e-12);
    }
}
