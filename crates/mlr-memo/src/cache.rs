//! The compute-node memoization cache.
//!
//! To avoid a round trip to the memory node on every query, the compute node
//! keeps a small cache of recently retrieved values. The paper's design
//! decision — and the subject of Figure 12 — is that this cache is *private
//! per chunk location*: each chunk location holds exactly one cached entry
//! (FIFO replacement), because the same location in neighbouring iterations
//! tends to produce similar FFT results (temporal locality). A *global*
//! cache shared across locations reaches essentially the same hit rate but
//! has to run a similarity comparison against every resident entry, costing
//! ~64× more comparisons on a 1K³ problem.

use mlr_lamino::FftOpKind;
use mlr_math::norms::scale_aware_similarity;
use mlr_math::Complex64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Which cache organisation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheKind {
    /// One single-entry FIFO cache per (operation, chunk location) — the
    /// paper's design.
    Private,
    /// One shared pool searched in full on every lookup.
    Global,
}

/// One cached entry: the encoded key it was stored under and the value.
#[derive(Debug, Clone)]
struct CacheEntry {
    key: Vec<f64>,
    /// Shared payload buffer — the cache holds a reference into the same
    /// allocation the database serves, never a private copy.
    value: Arc<[Complex64]>,
    /// Outer ADMM iteration in which the entry was inserted; entries are only
    /// served to *later* iterations (reuse across iterations is the paper's
    /// premise; reuse within one LSP solve would short-circuit the CG).
    iteration: usize,
}

/// Statistics of cache behaviour (feeds Figure 12 and the §4.4 comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that returned a value.
    pub hits: u64,
    /// Total similarity comparisons executed across all lookups.
    pub comparisons: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The memoization cache.
#[derive(Debug, Default)]
pub struct MemoCache {
    kind_is_global: bool,
    /// Private organisation: one entry per (op, location).
    private: HashMap<(FftOpKind, usize), CacheEntry>,
    /// Global organisation: a flat pool (capacity bounded to the number of
    /// distinct (op, location) pairs seen, mirroring the paper's "overall
    /// cache size equal to the original output size").
    global: Vec<CacheEntry>,
    global_capacity: usize,
    stats: CacheStats,
}

impl MemoCache {
    /// Creates a cache of the given kind. `global_capacity` bounds the pool
    /// size for the global organisation (ignored for the private one).
    pub fn new(kind: CacheKind, global_capacity: usize) -> Self {
        Self {
            kind_is_global: kind == CacheKind::Global,
            private: HashMap::new(),
            global: Vec::new(),
            global_capacity: global_capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// The cache organisation.
    pub fn kind(&self) -> CacheKind {
        if self.kind_is_global {
            CacheKind::Global
        } else {
            CacheKind::Private
        }
    }

    /// Looks up a value for `key` at `(op, loc)`. A cached entry is returned
    /// only when the cosine similarity between `key` and the entry's key
    /// exceeds `tau`.
    pub fn lookup(
        &mut self,
        op: FftOpKind,
        loc: usize,
        key: &[f64],
        tau: f64,
        current_iteration: usize,
    ) -> Option<Arc<[Complex64]>> {
        self.stats.lookups += 1;
        if self.kind_is_global {
            for entry in &self.global {
                if entry.iteration >= current_iteration {
                    continue;
                }
                self.stats.comparisons += 1;
                if scale_aware_similarity(key, &entry.key) > tau {
                    self.stats.hits += 1;
                    return Some(Arc::clone(&entry.value));
                }
            }
            None
        } else {
            if let Some(entry) = self.private.get(&(op, loc)) {
                if entry.iteration >= current_iteration {
                    return None;
                }
                self.stats.comparisons += 1;
                if scale_aware_similarity(key, &entry.key) > tau {
                    self.stats.hits += 1;
                    return Some(Arc::clone(&entry.value));
                }
            }
            None
        }
    }

    /// Read-only lookup for the parallel phase of the batched executor: like
    /// [`MemoCache::lookup`] but with *no* statistics side effects, so many
    /// chunks can peek concurrently under a shared lock. Returns the value
    /// (if any) and the number of similarity comparisons performed; the
    /// caller folds both into the statistics during its ordered commit via
    /// [`MemoCache::note_lookup`].
    pub fn peek(
        &self,
        op: FftOpKind,
        loc: usize,
        key: &[f64],
        tau: f64,
        current_iteration: usize,
    ) -> (Option<Arc<[Complex64]>>, u64) {
        if self.kind_is_global {
            let mut comparisons = 0;
            for entry in &self.global {
                if entry.iteration >= current_iteration {
                    continue;
                }
                comparisons += 1;
                if scale_aware_similarity(key, &entry.key) > tau {
                    return (Some(Arc::clone(&entry.value)), comparisons);
                }
            }
            (None, comparisons)
        } else {
            if let Some(entry) = self.private.get(&(op, loc)) {
                if entry.iteration >= current_iteration {
                    return (None, 0);
                }
                if scale_aware_similarity(key, &entry.key) > tau {
                    return (Some(Arc::clone(&entry.value)), 1);
                }
                return (None, 1);
            }
            (None, 0)
        }
    }

    /// Folds the outcome of a [`MemoCache::peek`] into the statistics (the
    /// ordered-commit counterpart of the accounting `lookup` does inline).
    pub fn note_lookup(&mut self, hit: bool, comparisons: u64) {
        self.stats.lookups += 1;
        self.stats.comparisons += comparisons;
        if hit {
            self.stats.hits += 1;
        }
    }

    /// Inserts (or replaces, FIFO) the value fetched from the memoization
    /// database for `(op, loc)`.
    pub fn insert(
        &mut self,
        op: FftOpKind,
        loc: usize,
        key: Vec<f64>,
        value: Arc<[Complex64]>,
        iteration: usize,
    ) {
        self.stats.insertions += 1;
        let entry = CacheEntry {
            key,
            value,
            iteration,
        };
        if self.kind_is_global {
            if self.global.len() >= self.global_capacity {
                // FIFO: drop the oldest entry.
                self.global.remove(0);
            }
            self.global.push(entry);
        } else {
            // Single-entry FIFO per location: replace unconditionally.
            self.private.insert((op, loc), entry);
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        if self.kind_is_global {
            self.global.len()
        } else {
            self.private.len()
        }
    }

    /// Returns `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident bytes (keys + values).
    pub fn bytes(&self) -> u64 {
        let entry_bytes = |e: &CacheEntry| (e.key.len() * 8 + e.value.len() * 16) as u64;
        if self.kind_is_global {
            self.global.iter().map(entry_bytes).sum()
        } else {
            self.private.values().map(entry_bytes).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: f64) -> Vec<f64> {
        vec![v, 2.0 * v, -v, 0.5]
    }

    fn value(n: usize) -> Arc<[Complex64]> {
        vec![Complex64::new(n as f64, 0.0); n].into()
    }

    #[test]
    fn private_cache_hit_and_miss() {
        let mut c = MemoCache::new(CacheKind::Private, 0);
        assert!(c.lookup(FftOpKind::Fu2D, 3, &key(1.0), 0.9, 1).is_none());
        c.insert(FftOpKind::Fu2D, 3, key(1.0), value(4), 0);
        // Same key: similarity 1 > tau.
        assert!(c.lookup(FftOpKind::Fu2D, 3, &key(1.0), 0.9, 1).is_some());
        // Rescaled key: same direction but double the magnitude — the
        // scale-aware similarity is only 0.5, so it must miss.
        assert!(c.lookup(FftOpKind::Fu2D, 3, &key(2.0), 0.9, 1).is_none());
        // Different location or op: miss.
        assert!(c.lookup(FftOpKind::Fu2D, 4, &key(1.0), 0.9, 1).is_none());
        assert!(c.lookup(FftOpKind::Fu1D, 3, &key(1.0), 0.9, 1).is_none());
        // Dissimilar key at the same location: miss.
        assert!(c
            .lookup(FftOpKind::Fu2D, 3, &[1.0, -2.0, 1.0, -0.5], 0.9, 1)
            .is_none());
    }

    #[test]
    fn private_cache_is_single_entry_fifo() {
        let mut c = MemoCache::new(CacheKind::Private, 0);
        c.insert(FftOpKind::Fu1D, 0, key(1.0), value(2), 0);
        c.insert(FftOpKind::Fu1D, 0, vec![0.0, 0.0, 1.0, 0.0], value(3), 0);
        assert_eq!(c.len(), 1);
        // The original key has been evicted.
        assert!(c.lookup(FftOpKind::Fu1D, 0, &key(1.0), 0.99, 1).is_none());
        assert!(c
            .lookup(FftOpKind::Fu1D, 0, &[0.0, 0.0, 1.0, 0.0], 0.99, 1)
            .is_some());
    }

    #[test]
    fn global_cache_shares_across_locations() {
        let mut c = MemoCache::new(CacheKind::Global, 64);
        c.insert(FftOpKind::Fu2D, 0, key(1.0), value(2), 0);
        // A lookup at a *different* location can still hit.
        assert!(c.lookup(FftOpKind::Fu2D, 9, &key(1.0), 0.9, 1).is_some());
    }

    #[test]
    fn global_cache_costs_more_comparisons() {
        let locations = 16usize;
        let mut private = MemoCache::new(CacheKind::Private, 0);
        let mut global = MemoCache::new(CacheKind::Global, locations);
        for loc in 0..locations {
            let k = vec![loc as f64 + 1.0, 1.0, 0.0, 0.0];
            private.insert(FftOpKind::Fu2D, loc, k.clone(), value(2), 0);
            global.insert(FftOpKind::Fu2D, loc, k, value(2), 0);
        }
        // One lookup per location with a key orthogonal to everything stored,
        // forcing full scans in the global cache.
        let probe = vec![0.0, 0.0, 0.0, 1.0];
        for loc in 0..locations {
            let _ = private.lookup(FftOpKind::Fu2D, loc, &probe, 0.9, 1);
            let _ = global.lookup(FftOpKind::Fu2D, loc, &probe, 0.9, 1);
        }
        assert!(global.stats().comparisons >= locations as u64 * locations as u64);
        assert_eq!(private.stats().comparisons, locations as u64);
    }

    #[test]
    fn global_cache_respects_capacity() {
        let mut c = MemoCache::new(CacheKind::Global, 4);
        for i in 0..10 {
            c.insert(FftOpKind::Fu1D, i, key(i as f64 + 1.0), value(1), 0);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn peek_matches_lookup_without_stats_side_effects() {
        let mut c = MemoCache::new(CacheKind::Private, 0);
        c.insert(FftOpKind::Fu2D, 3, key(1.0), value(4), 0);
        // Peek agrees with lookup on hit/miss but leaves the stats alone.
        let (hit, comparisons) = c.peek(FftOpKind::Fu2D, 3, &key(1.0), 0.9, 1);
        assert!(hit.is_some());
        assert_eq!(comparisons, 1);
        let (miss, _) = c.peek(FftOpKind::Fu2D, 4, &key(1.0), 0.9, 1);
        assert!(miss.is_none());
        // Same-iteration entries are invisible to peek, as to lookup.
        assert!(c.peek(FftOpKind::Fu2D, 3, &key(1.0), 0.9, 0).0.is_none());
        assert_eq!(c.stats().lookups, 0);
        c.note_lookup(true, 1);
        c.note_lookup(false, 1);
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.comparisons, 2);
    }

    #[test]
    fn stats_and_bytes() {
        let mut c = MemoCache::new(CacheKind::Private, 0);
        c.insert(FftOpKind::Fu2D, 1, key(1.0), value(8), 0);
        let _ = c.lookup(FftOpKind::Fu2D, 1, &key(1.0), 0.5, 1);
        let _ = c.lookup(FftOpKind::Fu2D, 2, &key(1.0), 0.5, 1);
        let s = c.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.bytes(), (4 * 8 + 8 * 16) as u64);
        assert!(!c.is_empty());
        assert_eq!(c.kind(), CacheKind::Private);
    }
}
