//! The index database: a cluster-based approximate-nearest-neighbour index.
//!
//! The paper builds its index database with Faiss and chooses the
//! *cluster-based* (inverted-file, IVF) organisation over the graph-based one
//! because IVF supports cheap dynamic insertion — new keys arrive on every
//! memoization miss. This module is a from-scratch IVF index: keys are
//! assigned to the nearest of `nlist` k-means centroids; a query scans the
//! `nprobe` nearest clusters and returns the closest stored key by L2
//! distance. Batched queries scan in parallel, which is what makes the
//! key-coalescing optimisation pay off on the memory node.
//!
//! # Storage layout and the probe hot path
//!
//! Inverted lists are stored **structure-of-arrays**: one contiguous
//! `Vec<f64>` of key data per list (fixed stride = the key dimension), a
//! parallel id array, and precomputed squared norms. A probe therefore walks
//! cache-friendly flat memory instead of jagged `Vec<Vec<f64>>` posting
//! lists, and performs **zero allocations**: the per-query centroid ranking
//! lives in a reusable [`SearchScratch`] (leased thread-locally by
//! [`IvfIndex::search`], or passed explicitly via
//! [`IvfIndex::search_with`]). Two prunes cut the scanned key data —
//! a norm-triangle lower bound and early-abandon partial distances — both
//! engineered to return **exactly** the hit a full scan in list order would
//! (same id, same distance bits), which the determinism contracts of the
//! memo store rely on.

use mlr_math::norms::l2_distance;
use mlr_math::rng::seeded;
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Result of one nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier supplied at insertion time.
    pub id: u64,
    /// L2 distance between the query and the stored key.
    pub distance: f64,
}

/// Configuration of the IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of clusters (inverted lists).
    pub nlist: usize,
    /// Number of clusters scanned per query.
    pub nprobe: usize,
    /// Number of insertions after which centroids are re-trained.
    pub retrain_interval: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            retrain_interval: 1024,
        }
    }
}

/// One inverted list in structure-of-arrays layout: ids, precomputed squared
/// norms and the flat key data (stride = key dimension). List order is
/// insertion order, preserved across removals — search tie-breaking (first
/// encountered wins at equal distance) depends on it.
#[derive(Debug, Clone, Default)]
struct FlatList {
    ids: Vec<u64>,
    norms_sq: Vec<f64>,
    data: Vec<f64>,
}

impl FlatList {
    fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    fn key(&self, i: usize, dim: usize) -> &[f64] {
        &self.data[i * dim..(i + 1) * dim]
    }

    fn push(&mut self, id: u64, key: &[f64]) {
        self.ids.push(id);
        self.norms_sq.push(key.iter().map(|x| x * x).sum());
        self.data.extend_from_slice(key);
    }

    /// Removes entry `i`, shifting the tail down so order is preserved.
    fn remove(&mut self, i: usize, dim: usize) {
        self.ids.remove(i);
        self.norms_sq.remove(i);
        self.data.drain(i * dim..(i + 1) * dim);
    }
}

/// Reusable per-query probe scratch: the centroid ranking a query builds to
/// pick its `nprobe` lists. One instance per worker thread makes the probe
/// path allocation-free; contents never influence results (fully rebuilt per
/// query), so sharing a scratch across queries is numerically invisible.
#[derive(Debug, Default)]
pub struct SearchScratch {
    centroid_dists: Vec<(usize, f64)>,
    probes: Vec<usize>,
}

thread_local! {
    static PROBE_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

/// A cluster-based approximate-nearest-neighbour index over fixed-dimension
/// float vectors.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    /// Flat centroid matrix, `centroid_count × dim`.
    centroids: Vec<f64>,
    centroid_count: usize,
    lists: Vec<FlatList>,
    len: usize,
    inserts_since_train: usize,
    seed: u64,
}

impl IvfIndex {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or the config is degenerate.
    pub fn new(dim: usize, config: IvfConfig, seed: u64) -> Self {
        assert!(dim > 0, "key dimension must be positive");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe > 0, "nprobe must be positive");
        Self {
            dim,
            config,
            centroids: Vec::new(),
            centroid_count: 0,
            lists: vec![FlatList::default(); config.nlist],
            len: 0,
            inserts_since_train: 0,
            seed,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn centroid(&self, i: usize) -> &[f64] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Inserts a key with the given identifier. Until enough keys exist to
    /// train centroids, keys accumulate in a single list (exact search).
    ///
    /// # Panics
    /// Panics when the key dimension is wrong.
    pub fn add(&mut self, id: u64, key: Vec<f64>) {
        assert_eq!(key.len(), self.dim, "key dimension mismatch");
        let list = if self.centroid_count == 0 {
            0
        } else {
            nearest_flat(&self.centroids, self.centroid_count, self.dim, &key)
        };
        self.lists[list].push(id, &key);
        self.len += 1;
        self.inserts_since_train += 1;
        let should_train = (self.centroid_count == 0 && self.len >= 4 * self.config.nlist)
            || (self.centroid_count > 0
                && self.inserts_since_train >= self.config.retrain_interval);
        if should_train {
            self.train();
        }
    }

    /// Removes the key stored under `id`, if present; returns whether a key
    /// was removed. List order is preserved so search tie-breaking (first
    /// encountered wins at equal distance) stays deterministic across
    /// removals — capacity eviction depends on that.
    pub fn remove(&mut self, id: u64) -> bool {
        let dim = self.dim;
        for list in &mut self.lists {
            if let Some(pos) = list.ids.iter().position(|&stored| stored == id) {
                list.remove(pos, dim);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Finds the nearest stored key to `query`, if any, over a thread-local
    /// [`SearchScratch`] (zero allocations in steady state).
    pub fn search(&self, query: &[f64]) -> Option<SearchHit> {
        PROBE_SCRATCH.with(|s| self.search_with(query, &mut s.borrow_mut()))
    }

    /// [`Self::search`] with an explicit reusable scratch.
    pub fn search_with(&self, query: &[f64], scratch: &mut SearchScratch) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.len == 0 {
            return None;
        }
        self.probe_lists(query, scratch);
        let q_norm_sq: f64 = query.iter().map(|x| x * x).sum();
        let q_norm = q_norm_sq.sqrt();
        // Best candidate: `best_d` is the reported (sqrt-domain) distance,
        // compared with the same strict `<` as a plain scan; `best_sum` is
        // the winning candidate's raw squared sum, the pruning threshold.
        let mut best: Option<SearchHit> = None;
        let mut best_sum = f64::INFINITY;
        for pi in 0..scratch.probes.len() {
            let li = scratch.probes[pi];
            let list = &self.lists[li];
            for i in 0..list.len() {
                // Norm-triangle lower bound: ‖q − x‖² ≥ (‖q‖ − ‖x‖)². The
                // tiny relative margin keeps the prune conservative against
                // floating-point rounding of the precomputed norms, so a
                // candidate the exact scan would pick is never skipped.
                let lb = q_norm - list.norms_sq[i].sqrt();
                if lb * lb > best_sum * (1.0 + 1e-9) {
                    continue;
                }
                let Some(sum) = distance_sq_early_abandon(query, list.key(i, self.dim), best_sum)
                else {
                    continue;
                };
                let d = sum.sqrt();
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: list.ids[i],
                        distance: d,
                    });
                    best_sum = sum;
                }
            }
        }
        best
    }

    /// Batched search: one result slot per query, computed in parallel (the
    /// memory node's multi-threaded batched lookup enabled by key
    /// coalescing). Each worker thread reuses its own thread-local scratch.
    pub fn search_batch(&self, queries: &[Vec<f64>]) -> Vec<Option<SearchHit>> {
        queries.par_iter().map(|q| self.search(q)).collect()
    }

    /// Exact (exhaustive) nearest-neighbour search — the ground truth used by
    /// recall tests.
    pub fn search_exact(&self, query: &[f64]) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut best: Option<SearchHit> = None;
        for list in &self.lists {
            for i in 0..list.len() {
                let d = l2_distance(query, list.key(i, self.dim));
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: list.ids[i],
                        distance: d,
                    });
                }
            }
        }
        best
    }

    /// Number of stored keys a query would compare against (the paper's
    /// "similarity comparison" cost; used to contrast private vs. global
    /// caches and to price queries in the cost model).
    pub fn comparisons_per_query(&self) -> usize {
        if self.centroid_count == 0 {
            return self.len;
        }
        // nprobe lists of average occupancy, plus the centroid scan.
        let avg = self.len / self.config.nlist.max(1);
        self.config.nlist + self.config.nprobe * avg.max(1)
    }

    /// Ranks centroids by distance into the scratch and selects the `nprobe`
    /// nearest list indices (ties broken by centroid index — the sort is
    /// stable over the index-ordered distance table, exactly as the jagged
    /// implementation behaved).
    fn probe_lists(&self, query: &[f64], scratch: &mut SearchScratch) {
        scratch.probes.clear();
        if self.centroid_count == 0 {
            scratch.probes.push(0);
            return;
        }
        scratch.centroid_dists.clear();
        for i in 0..self.centroid_count {
            scratch
                .centroid_dists
                .push((i, l2_distance(query, self.centroid(i))));
        }
        scratch
            .centroid_dists
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("non-finite distance"));
        scratch.probes.extend(
            scratch
                .centroid_dists
                .iter()
                .take(self.config.nprobe)
                .map(|&(i, _)| i),
        );
    }

    /// Re-trains centroids with a few Lloyd iterations over all stored keys
    /// and redistributes the inverted lists. The rebuild moves the flat key
    /// storage through one concatenated arena — no per-key clones (the
    /// jagged implementation cloned every stored key twice per retrain).
    fn train(&mut self) {
        if self.len < self.config.nlist {
            return;
        }
        let dim = self.dim;
        let total = self.len;
        // Concatenate the lists' flat storage (list order, as the jagged
        // implementation's `flatten` did).
        let old_lists = std::mem::take(&mut self.lists);
        let mut all_ids: Vec<u64> = Vec::with_capacity(total);
        let mut all_data: Vec<f64> = Vec::with_capacity(total * dim);
        for mut list in old_lists {
            all_ids.append(&mut list.ids);
            all_data.append(&mut list.data);
        }
        let key_at = |i: usize| &all_data[i * dim..(i + 1) * dim];

        let mut rng = seeded(self.seed ^ self.len as u64);
        // k-means++ style: random distinct initial centroids.
        let mut indices: Vec<usize> = (0..total).collect();
        indices.shuffle(&mut rng);
        let mut centroids: Vec<f64> = Vec::with_capacity(self.config.nlist * dim);
        for &i in indices.iter().take(self.config.nlist) {
            centroids.extend_from_slice(key_at(i));
        }
        let centroid_count = self.config.nlist;

        for _ in 0..5 {
            let mut sums = vec![0.0; centroid_count * dim];
            let mut counts = vec![0usize; centroid_count];
            for i in 0..total {
                let key = key_at(i);
                let c = nearest_flat(&centroids, centroid_count, dim, key);
                counts[c] += 1;
                for (s, k) in sums[c * dim..(c + 1) * dim].iter_mut().zip(key) {
                    *s += k;
                }
            }
            for (c, count) in counts.iter().enumerate() {
                if *count > 0 {
                    for (cv, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *cv = s / *count as f64;
                    }
                }
            }
        }

        let mut lists = vec![FlatList::default(); self.config.nlist];
        for (i, &id) in all_ids.iter().enumerate() {
            let key = key_at(i);
            let c = nearest_flat(&centroids, centroid_count, dim, key);
            lists[c].push(id, key);
        }
        self.centroids = centroids;
        self.centroid_count = centroid_count;
        self.lists = lists;
        self.inserts_since_train = 0;
    }
}

/// Nearest centroid in a flat `count × dim` matrix (first wins on ties, as
/// the jagged scan did).
fn nearest_flat(centroids: &[f64], count: usize, dim: usize, key: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for i in 0..count {
        let d = l2_distance(key, &centroids[i * dim..(i + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Squared L2 distance with early abandonment: accumulates `(a-b)²` in index
/// order — the exact summation `l2_distance` performs — and gives up once
/// the running sum can no longer beat `threshold_sum` (the current best
/// candidate's full squared sum). Returns `None` when abandoned. Because
/// partial sums are monotone non-decreasing prefixes of the exact sum, an
/// abandoned candidate provably could not have won under the caller's strict
/// sqrt-domain comparison, so pruning never changes the selected hit.
#[inline]
fn distance_sq_early_abandon(a: &[f64], b: &[f64], threshold_sum: f64) -> Option<f64> {
    let mut sum = 0.0;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let stop = (i + 8).min(n);
        while i < stop {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        if sum >= threshold_sum && i < n {
            return None;
        }
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_keys(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = IvfIndex::new(8, IvfConfig::default(), 1);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 8]).is_none());
    }

    #[test]
    fn exact_match_found() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 2);
        for (i, key) in random_keys(200, 4, 3).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 200);
        // Query with a stored key: distance must be ~0 and id correct under
        // exact search; ANN search should find it too since it is its own
        // cluster member.
        let probe = random_keys(200, 4, 3)[57].clone();
        let exact = idx.search_exact(&probe).unwrap();
        assert_eq!(exact.id, 57);
        assert!(exact.distance < 1e-12);
        let approx = idx.search(&probe).unwrap();
        assert!(approx.distance < 1e-12);
    }

    #[test]
    fn recall_against_exact_search() {
        let dim = 16;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 8,
                nprobe: 3,
                retrain_interval: 256,
            },
            4,
        );
        for (i, key) in random_keys(500, dim, 5).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(100, dim, 6);
        let mut hits = 0;
        for q in &queries {
            let approx = idx.search(q).unwrap();
            let exact = idx.search_exact(q).unwrap();
            if approx.id == exact.id || (approx.distance - exact.distance).abs() < 1e-9 {
                hits += 1;
            }
        }
        // IVF with nprobe 3/8 should find the true neighbour most of the time.
        assert!(hits >= 70, "recall too low: {hits}/100");
    }

    #[test]
    fn pruned_search_is_identical_to_full_probe_scan() {
        // The property the memo determinism contracts rely on: with
        // `nprobe == nlist` (every list probed) the pruned SoA search must
        // return the *identical* SearchHit as the exhaustive scan — same id,
        // same distance bits — on seeded workloads, across insert sizes,
        // retrains and removals.
        for seed in 0..6u64 {
            let dim = 12;
            let mut idx = IvfIndex::new(
                dim,
                IvfConfig {
                    nlist: 8,
                    nprobe: 8,
                    retrain_interval: 64,
                },
                seed,
            );
            for (i, key) in random_keys(300, dim, 100 + seed).into_iter().enumerate() {
                idx.add(i as u64, key);
            }
            // A few removals exercise order preservation.
            for id in [3u64, 77, 150, 299] {
                assert!(idx.remove(id));
            }
            let mut scratch = SearchScratch::default();
            for q in &random_keys(50, dim, 200 + seed) {
                let pruned = idx.search_with(q, &mut scratch).unwrap();
                let exact = idx.search_exact(q).unwrap();
                assert_eq!(pruned.id, exact.id, "seed {seed}");
                assert_eq!(
                    pruned.distance.to_bits(),
                    exact.distance.to_bits(),
                    "seed {seed}: distance bits diverged"
                );
            }
        }
    }

    #[test]
    fn early_abandon_prefixes_match_full_sum() {
        // With an infinite threshold the early-abandon sum equals the plain
        // squared distance bit for bit (same accumulation order).
        let a = random_keys(1, 37, 9)[0].clone();
        let b = random_keys(1, 37, 10)[0].clone();
        let full = distance_sq_early_abandon(&a, &b, f64::INFINITY).unwrap();
        assert_eq!(full.sqrt().to_bits(), l2_distance(&a, &b).to_bits());
        // A threshold below the true distance abandons.
        assert!(distance_sq_early_abandon(&a, &b, full / 2.0).is_none());
    }

    #[test]
    fn batched_search_matches_single() {
        let dim = 8;
        let mut idx = IvfIndex::new(dim, IvfConfig::default(), 7);
        for (i, key) in random_keys(300, dim, 8).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(20, dim, 9);
        let batch = idx.search_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = idx.search(q);
            assert_eq!(single.map(|h| h.id), b.map(|h| h.id));
        }
    }

    #[test]
    fn comparisons_shrink_after_training() {
        let dim = 8;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 16,
                nprobe: 2,
                retrain_interval: 10_000,
            },
            10,
        );
        for (i, key) in random_keys(63, dim, 11).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        // Below the training threshold: exhaustive.
        assert_eq!(idx.comparisons_per_query(), 63);
        for (i, key) in random_keys(500, dim, 12).into_iter().enumerate() {
            idx.add(1000 + i as u64, key);
        }
        // After training, far fewer comparisons than the full database.
        assert!(idx.comparisons_per_query() < idx.len());
    }

    #[test]
    fn remove_deletes_exactly_one_key() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 20);
        for (i, key) in random_keys(120, 4, 21).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 120);
        // Removing a present id shrinks the index and makes it unfindable.
        let probe = random_keys(120, 4, 21)[33].clone();
        assert_eq!(idx.search_exact(&probe).unwrap().id, 33);
        assert!(idx.remove(33));
        assert_eq!(idx.len(), 119);
        assert_ne!(idx.search_exact(&probe).unwrap().id, 33);
        // Removing an absent id is a no-op.
        assert!(!idx.remove(33));
        assert_eq!(idx.len(), 119);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 13);
        idx.add(0, vec![1.0; 5]);
    }
}
