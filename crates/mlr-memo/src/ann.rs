//! The index database: a cluster-based approximate-nearest-neighbour index.
//!
//! The paper builds its index database with Faiss and chooses the
//! *cluster-based* (inverted-file, IVF) organisation over the graph-based one
//! because IVF supports cheap dynamic insertion — new keys arrive on every
//! memoization miss. This module is a from-scratch IVF index: keys are
//! assigned to the nearest of `nlist` k-means centroids; a query scans the
//! `nprobe` nearest clusters and returns the closest stored key by L2
//! distance. Batched queries scan in parallel, which is what makes the
//! key-coalescing optimisation pay off on the memory node.
//!
//! # Storage layout and the probe hot path
//!
//! Inverted lists are stored **structure-of-arrays**: one contiguous
//! `Vec<f64>` of key data per list (fixed stride = the key dimension), a
//! parallel id array, and precomputed squared norms. A probe therefore walks
//! cache-friendly flat memory instead of jagged `Vec<Vec<f64>>` posting
//! lists, and performs **zero allocations**: the per-query centroid ranking
//! lives in a reusable [`SearchScratch`] (leased thread-locally by
//! [`IvfIndex::search`], or passed explicitly via
//! [`IvfIndex::search_with`]). Two prunes cut the scanned key data —
//! a norm-triangle lower bound and early-abandon partial distances — both
//! engineered to return **exactly** the hit a full scan in list order would
//! (same id, same distance bits), which the determinism contracts of the
//! memo store rely on.

use mlr_math::norms::l2_distance;
use mlr_math::rng::seeded;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch for quantize-stage timing. Off by default so the
/// disabled hot path pays one relaxed load per probed list and zero clock
/// reads; the engine flips it per batch when telemetry is enabled.
static QUANTIZE_TIMING: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Nanoseconds spent in the fixed-point shortlist kernel on this thread
    /// since the last drain. Probes run on the calling thread, so the engine
    /// drains this right after each probe with no cross-thread traffic.
    static QUANTIZE_NS: Cell<u64> = const { Cell::new(0) };
}

/// Enables or disables quantize-stage timing for subsequent probes.
pub(crate) fn set_quantize_timing(on: bool) {
    QUANTIZE_TIMING.store(on, Ordering::Relaxed);
}

/// Drains the calling thread's accumulated quantize-kernel nanoseconds.
pub(crate) fn take_quantize_ns() -> u64 {
    QUANTIZE_NS.with(|c| c.replace(0))
}

#[inline]
fn add_quantize_ns(ns: u64) {
    QUANTIZE_NS.with(|c| c.set(c.get() + ns));
}

/// Result of one nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier supplied at insertion time.
    pub id: u64,
    /// L2 distance between the query and the stored key.
    pub distance: f64,
}

/// Configuration of the IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of clusters (inverted lists).
    pub nlist: usize,
    /// Number of clusters scanned per query.
    pub nprobe: usize,
    /// Number of insertions after which centroids are re-trained.
    pub retrain_interval: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            retrain_interval: 1024,
        }
    }
}

/// One inverted list in structure-of-arrays layout: ids, precomputed squared
/// norms and the flat key data (stride = key dimension). List order is
/// insertion order, preserved across removals — search tie-breaking (first
/// encountered wins at equal distance) depends on it.
///
/// Alongside the exact `f64` keys the list keeps a symmetric i8-quantised
/// mirror (`qdata`, shared per-list `scale`) plus each key's exact
/// quantisation residual `‖k − scale·k8‖₂`. A probe shortlists candidates
/// with a fixed-point i32 kernel over `qdata` and only rescores the
/// shortlist with the exact `f64` kernel; the residuals make the shortlist
/// bound provably conservative, so the rescored winner is bit-identical to
/// a full `f64` scan.
#[derive(Debug, Clone, Default)]
struct FlatList {
    ids: Vec<u64>,
    norms_sq: Vec<f64>,
    data: Vec<f64>,
    /// i8-quantised mirror of `data` (same stride).
    qdata: Vec<i8>,
    /// Exact per-key quantisation residual `‖k − scale·k8‖₂`.
    residuals: Vec<f64>,
    /// Symmetric quantisation scale shared by every key in the list; grows
    /// monotonically (keys are requantised when a new key exceeds the
    /// representable `scale·127` range).
    scale: f64,
}

impl FlatList {
    fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    fn key(&self, i: usize, dim: usize) -> &[f64] {
        &self.data[i * dim..(i + 1) * dim]
    }

    fn push(&mut self, id: u64, key: &[f64]) {
        self.ids.push(id);
        self.norms_sq.push(key.iter().map(|x| x * x).sum());
        self.data.extend_from_slice(key);
        let maxabs = key.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        if maxabs > self.scale * 127.0 {
            self.rescale(maxabs / 127.0, key.len());
        } else {
            append_quantised(key, self.scale, &mut self.qdata, &mut self.residuals);
        }
    }

    /// Requantises every stored key at a new, larger scale (including the
    /// just-pushed tail key). The scale only grows, so requantisation cost
    /// is amortised across inserts.
    fn rescale(&mut self, scale: f64, dim: usize) {
        self.scale = scale;
        self.qdata.clear();
        self.residuals.clear();
        for key in self.data.chunks_exact(dim) {
            append_quantised(key, scale, &mut self.qdata, &mut self.residuals);
        }
    }

    /// Removes entry `i`, shifting the tail down so order is preserved.
    fn remove(&mut self, i: usize, dim: usize) {
        self.ids.remove(i);
        self.norms_sq.remove(i);
        self.residuals.remove(i);
        self.data.drain(i * dim..(i + 1) * dim);
        self.qdata.drain(i * dim..(i + 1) * dim);
    }
}

/// Quantises one key at `scale`, appending the i8 codes to `qdata` and the
/// exact residual `‖key − scale·k8‖₂` to `residuals`. A zero scale (empty
/// or all-zero list) quantises everything to 0 with the full norm as
/// residual — weak but still conservative bounds.
fn append_quantised(key: &[f64], scale: f64, qdata: &mut Vec<i8>, residuals: &mut Vec<f64>) {
    let mut resid_sq = 0.0;
    for &x in key {
        let q = if scale > 0.0 {
            (x / scale).round().clamp(-127.0, 127.0)
        } else {
            0.0
        };
        let r = x - q * scale;
        resid_sq += r * r;
        qdata.push(q as i8);
    }
    residuals.push(resid_sq.sqrt());
}

/// Reusable per-query probe scratch: the centroid ranking a query builds to
/// pick its `nprobe` lists. One instance per worker thread makes the probe
/// path allocation-free; contents never influence results (fully rebuilt per
/// query), so sharing a scratch across queries is numerically invisible.
#[derive(Debug, Default)]
pub struct SearchScratch {
    centroid_dists: Vec<(usize, f64)>,
    probes: Vec<usize>,
    /// The query quantised at the current list's scale.
    q8: Vec<i8>,
    /// Fixed-point squared distances `Σ(q8−k8)²` for the current list.
    qdists: Vec<i32>,
}

thread_local! {
    static PROBE_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

/// Reusable scratch for [`IvfIndex::search_batch_with`]: the per-batch
/// centroid distance matrix, per-query centroid ranking, and the per-list
/// buckets of `(query index, probe rank)` pairs the list-major scan walks.
/// Contents never influence results (fully rebuilt per batch).
#[derive(Debug, Default)]
pub struct BatchSearchScratch {
    /// Flat `queries × centroids` distance matrix, filled centroid-major.
    dists: Vec<f64>,
    /// Per-query centroid ranking, rebuilt per query.
    order: Vec<(usize, f64)>,
    /// For each posting list, the `(query index, probe rank)` pairs that
    /// probe it this batch.
    list_queries: Vec<Vec<(usize, usize)>>,
    /// The single-query probe scratch reused for quantised shortlisting.
    probe: SearchScratch,
}

/// A cluster-based approximate-nearest-neighbour index over fixed-dimension
/// float vectors.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    /// Flat centroid matrix, `centroid_count × dim`.
    centroids: Vec<f64>,
    centroid_count: usize,
    lists: Vec<FlatList>,
    len: usize,
    inserts_since_train: usize,
    seed: u64,
}

impl IvfIndex {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or the config is degenerate.
    pub fn new(dim: usize, config: IvfConfig, seed: u64) -> Self {
        assert!(dim > 0, "key dimension must be positive");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe > 0, "nprobe must be positive");
        Self {
            dim,
            config,
            centroids: Vec::new(),
            centroid_count: 0,
            lists: vec![FlatList::default(); config.nlist],
            len: 0,
            inserts_since_train: 0,
            seed,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn centroid(&self, i: usize) -> &[f64] {
        &self.centroids[i * self.dim..(i + 1) * self.dim]
    }

    /// Inserts a key with the given identifier. Until enough keys exist to
    /// train centroids, keys accumulate in a single list (exact search).
    ///
    /// # Panics
    /// Panics when the key dimension is wrong.
    pub fn add(&mut self, id: u64, key: Vec<f64>) {
        assert_eq!(key.len(), self.dim, "key dimension mismatch");
        let list = if self.centroid_count == 0 {
            0
        } else {
            nearest_flat(&self.centroids, self.centroid_count, self.dim, &key)
        };
        self.lists[list].push(id, &key);
        self.len += 1;
        self.inserts_since_train += 1;
        let should_train = (self.centroid_count == 0 && self.len >= 4 * self.config.nlist)
            || (self.centroid_count > 0
                && self.inserts_since_train >= self.config.retrain_interval);
        if should_train {
            self.train();
        }
    }

    /// Removes the key stored under `id`, if present; returns whether a key
    /// was removed. List order is preserved so search tie-breaking (first
    /// encountered wins at equal distance) stays deterministic across
    /// removals — capacity eviction depends on that.
    pub fn remove(&mut self, id: u64) -> bool {
        let dim = self.dim;
        for list in &mut self.lists {
            if let Some(pos) = list.ids.iter().position(|&stored| stored == id) {
                list.remove(pos, dim);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Finds the nearest stored key to `query`, if any, over a thread-local
    /// [`SearchScratch`] (zero allocations in steady state).
    pub fn search(&self, query: &[f64]) -> Option<SearchHit> {
        PROBE_SCRATCH.with(|s| self.search_with(query, &mut s.borrow_mut()))
    }

    /// [`Self::search`] with an explicit reusable scratch.
    pub fn search_with(&self, query: &[f64], scratch: &mut SearchScratch) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.len == 0 {
            return None;
        }
        self.probe_lists(query, scratch);
        let q_norm_sq: f64 = query.iter().map(|x| x * x).sum();
        let q_norm = q_norm_sq.sqrt();
        // Best candidate: `best_d` is the reported (sqrt-domain) distance,
        // compared with the same strict `<` as a plain scan; `best_sum` is
        // the winning candidate's raw squared sum, the pruning threshold.
        let mut best: Option<SearchHit> = None;
        let mut best_sum = f64::INFINITY;
        for pi in 0..scratch.probes.len() {
            let li = scratch.probes[pi];
            let list = &self.lists[li];
            if list.len() == 0 {
                continue;
            }
            let eq = self.quantise_probe(query, list, scratch);
            for i in 0..list.len() {
                // Norm-triangle lower bound: ‖q − x‖² ≥ (‖q‖ − ‖x‖)². The
                // tiny relative margin keeps the prune conservative against
                // floating-point rounding of the precomputed norms, so a
                // candidate the exact scan would pick is never skipped.
                let lb = q_norm - list.norms_sq[i].sqrt();
                if lb * lb > best_sum * (1.0 + 1e-9) {
                    continue;
                }
                // Fixed-point shortlist bound (triangle inequality around
                // the quantised images): ‖q − k‖ ≥ scale·‖q8 − k8‖ − eq − ek.
                // Candidates whose bound already exceeds the incumbent skip
                // the exact f64 rescore entirely.
                let qlb = list.scale * (scratch.qdists[i] as f64).sqrt() - eq - list.residuals[i];
                if qlb > 0.0 && qlb * qlb > best_sum * (1.0 + 1e-9) {
                    continue;
                }
                let Some(sum) = distance_sq_early_abandon(query, list.key(i, self.dim), best_sum)
                else {
                    continue;
                };
                let d = sum.sqrt();
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: list.ids[i],
                        distance: d,
                    });
                    best_sum = sum;
                }
            }
        }
        best
    }

    /// Quantises `query` at `list`'s scale into `scratch.q8`, streams the
    /// whole list's i8 codes through the fixed-point i32 distance kernel
    /// into `scratch.qdists`, and returns the query's exact quantisation
    /// residual `‖q − scale·q8‖₂`. This branch-free SoA pass is the
    /// autovectorizable heart of the shortlist; its wall time feeds the
    /// `quantize` telemetry stage when timing is enabled.
    fn quantise_probe(&self, query: &[f64], list: &FlatList, scratch: &mut SearchScratch) -> f64 {
        let t0 = QUANTIZE_TIMING
            .load(Ordering::Relaxed)
            .then(std::time::Instant::now); // mlr-check: allow(wall-clock) — decoration only: quantize-stage telemetry timing
        let scale = list.scale;
        scratch.q8.clear();
        let mut resid_sq = 0.0;
        for &x in query {
            let q = if scale > 0.0 {
                (x / scale).round().clamp(-127.0, 127.0)
            } else {
                0.0
            };
            let r = x - q * scale;
            resid_sq += r * r;
            scratch.q8.push(q as i8);
        }
        scratch.qdists.clear();
        for krow in list.qdata.chunks_exact(self.dim) {
            let mut acc = 0i32;
            for (&a, &b) in scratch.q8.iter().zip(krow) {
                let d = a as i32 - b as i32;
                acc += d * d;
            }
            scratch.qdists.push(acc);
        }
        if let Some(t0) = t0 {
            add_quantize_ns(t0.elapsed().as_nanos() as u64);
        }
        resid_sq.sqrt()
    }

    /// Batched search: one result slot per query, amortizing centroid scans
    /// and posting-list traversal across the batch (the memory node's
    /// batched lookup enabled by key coalescing). Each slot is bit-identical
    /// to [`IvfIndex::search`] on the same query.
    pub fn search_batch(&self, queries: &[Vec<f64>]) -> Vec<Option<SearchHit>> {
        thread_local! {
            static BATCH_SCRATCH: RefCell<BatchSearchScratch> =
                RefCell::new(BatchSearchScratch::default());
        }
        BATCH_SCRATCH.with(|s| self.search_batch_with(queries, &mut s.borrow_mut()))
    }

    /// [`Self::search_batch`] with an explicit reusable scratch.
    ///
    /// The batch is processed centroid-major then list-major: every centroid
    /// row is streamed once against all queries, and every posting list is
    /// scanned once while its key data is cache-hot for all queries probing
    /// it — instead of re-walking centroids and lists per query. Per-query
    /// winners are tracked as the lexicographic minimum of
    /// `(distance, probe rank, list position)`, which is exactly the first
    /// candidate the probe-ordered scan of [`IvfIndex::search_with`] would
    /// have kept, so every result slot is bit-identical (id and distance
    /// bits) to the single-query path.
    pub fn search_batch_with(
        &self,
        queries: &[Vec<f64>],
        scratch: &mut BatchSearchScratch,
    ) -> Vec<Option<SearchHit>> {
        for q in queries {
            assert_eq!(q.len(), self.dim, "query dimension mismatch");
        }
        let mut results: Vec<Option<SearchHit>> = vec![None; queries.len()];
        if self.len == 0 || queries.is_empty() {
            return results;
        }

        // Phase 1: rank centroids for every query. The distance matrix is
        // filled centroid-major (each centroid row loaded once, streamed
        // against the whole batch); the per-query ranking then reproduces
        // `probe_lists` exactly (stable sort over the index-ordered table).
        scratch.list_queries.resize_with(self.lists.len(), Vec::new);
        for bucket in &mut scratch.list_queries {
            bucket.clear();
        }
        if self.centroid_count == 0 {
            for qi in 0..queries.len() {
                scratch.list_queries[0].push((qi, 0));
            }
        } else {
            let c = self.centroid_count;
            scratch.dists.clear();
            scratch.dists.resize(queries.len() * c, 0.0);
            for ci in 0..c {
                let cent = self.centroid(ci);
                for (qi, q) in queries.iter().enumerate() {
                    scratch.dists[qi * c + ci] = l2_distance(q, cent);
                }
            }
            for qi in 0..queries.len() {
                scratch.order.clear();
                scratch
                    .order
                    .extend((0..c).map(|ci| (ci, scratch.dists[qi * c + ci])));
                scratch.order.sort_by(|a, b| a.1.total_cmp(&b.1));
                for (rank, &(ci, _)) in scratch.order.iter().take(self.config.nprobe).enumerate() {
                    scratch.list_queries[ci].push((qi, rank));
                }
            }
        }

        // Phase 2: scan each posting list once for all queries probing it.
        let q_norms: Vec<f64> = queries
            .iter()
            .map(|q| q.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        let mut best_order = vec![(usize::MAX, usize::MAX); queries.len()];
        let mut best_sums = vec![f64::INFINITY; queries.len()];
        for (li, list) in self.lists.iter().enumerate() {
            if list.len() == 0 || scratch.list_queries[li].is_empty() {
                continue;
            }
            for bi in 0..scratch.list_queries[li].len() {
                let (qi, rank) = scratch.list_queries[li][bi];
                let query = &queries[qi];
                let eq = self.quantise_probe(query, list, &mut scratch.probe);
                for i in 0..list.len() {
                    let best_sum = best_sums[qi];
                    let lb = q_norms[qi] - list.norms_sq[i].sqrt();
                    if lb * lb > best_sum * (1.0 + 1e-9) {
                        continue;
                    }
                    let qlb = list.scale * (scratch.probe.qdists[i] as f64).sqrt()
                        - eq
                        - list.residuals[i];
                    if qlb > 0.0 && qlb * qlb > best_sum * (1.0 + 1e-9) {
                        continue;
                    }
                    // Slightly inflated abandon threshold: candidates whose
                    // exact sum *ties* the incumbent must survive to the
                    // comparison below, because out-of-probe-order scanning
                    // resolves ties by (rank, position), not arrival.
                    let Some(sum) = distance_sq_early_abandon(
                        query,
                        list.key(i, self.dim),
                        best_sum * (1.0 + 1e-9) + f64::MIN_POSITIVE,
                    ) else {
                        continue;
                    };
                    let d = sum.sqrt();
                    let wins = match &results[qi] {
                        None => true,
                        Some(b) => {
                            d < b.distance || (d == b.distance && (rank, i) < best_order[qi])
                        }
                    };
                    if wins {
                        results[qi] = Some(SearchHit {
                            id: list.ids[i],
                            distance: d,
                        });
                        best_order[qi] = (rank, i);
                        best_sums[qi] = best_sums[qi].min(sum);
                    }
                }
            }
        }
        results
    }

    /// Exact (exhaustive) nearest-neighbour search — the ground truth used by
    /// recall tests.
    pub fn search_exact(&self, query: &[f64]) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut best: Option<SearchHit> = None;
        for list in &self.lists {
            for i in 0..list.len() {
                let d = l2_distance(query, list.key(i, self.dim));
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: list.ids[i],
                        distance: d,
                    });
                }
            }
        }
        best
    }

    /// Number of stored keys a query would compare against (the paper's
    /// "similarity comparison" cost; used to contrast private vs. global
    /// caches and to price queries in the cost model).
    pub fn comparisons_per_query(&self) -> usize {
        if self.centroid_count == 0 {
            return self.len;
        }
        // nprobe lists of average occupancy, plus the centroid scan.
        let avg = self.len / self.config.nlist.max(1);
        self.config.nlist + self.config.nprobe * avg.max(1)
    }

    /// Ranks centroids by distance into the scratch and selects the `nprobe`
    /// nearest list indices (ties broken by centroid index — the sort is
    /// stable over the index-ordered distance table, exactly as the jagged
    /// implementation behaved).
    fn probe_lists(&self, query: &[f64], scratch: &mut SearchScratch) {
        scratch.probes.clear();
        if self.centroid_count == 0 {
            scratch.probes.push(0);
            return;
        }
        scratch.centroid_dists.clear();
        for i in 0..self.centroid_count {
            scratch
                .centroid_dists
                .push((i, l2_distance(query, self.centroid(i))));
        }
        scratch.centroid_dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        scratch.probes.extend(
            scratch
                .centroid_dists
                .iter()
                .take(self.config.nprobe)
                .map(|&(i, _)| i),
        );
    }

    /// Re-trains centroids with a few Lloyd iterations over all stored keys
    /// and redistributes the inverted lists. The rebuild moves the flat key
    /// storage through one concatenated arena — no per-key clones (the
    /// jagged implementation cloned every stored key twice per retrain).
    fn train(&mut self) {
        if self.len < self.config.nlist {
            return;
        }
        let dim = self.dim;
        let total = self.len;
        // Concatenate the lists' flat storage (list order, as the jagged
        // implementation's `flatten` did).
        let old_lists = std::mem::take(&mut self.lists);
        let mut all_ids: Vec<u64> = Vec::with_capacity(total);
        let mut all_data: Vec<f64> = Vec::with_capacity(total * dim);
        for mut list in old_lists {
            all_ids.append(&mut list.ids);
            all_data.append(&mut list.data);
        }
        let key_at = |i: usize| &all_data[i * dim..(i + 1) * dim];

        let mut rng = seeded(self.seed ^ self.len as u64);
        // k-means++ style: random distinct initial centroids.
        let mut indices: Vec<usize> = (0..total).collect();
        indices.shuffle(&mut rng);
        let mut centroids: Vec<f64> = Vec::with_capacity(self.config.nlist * dim);
        for &i in indices.iter().take(self.config.nlist) {
            centroids.extend_from_slice(key_at(i));
        }
        let centroid_count = self.config.nlist;

        for _ in 0..5 {
            let mut sums = vec![0.0; centroid_count * dim];
            let mut counts = vec![0usize; centroid_count];
            for i in 0..total {
                let key = key_at(i);
                let c = nearest_flat(&centroids, centroid_count, dim, key);
                counts[c] += 1;
                for (s, k) in sums[c * dim..(c + 1) * dim].iter_mut().zip(key) {
                    *s += k;
                }
            }
            for (c, count) in counts.iter().enumerate() {
                if *count > 0 {
                    for (cv, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *cv = s / *count as f64;
                    }
                }
            }
        }

        let mut lists = vec![FlatList::default(); self.config.nlist];
        for (i, &id) in all_ids.iter().enumerate() {
            let key = key_at(i);
            let c = nearest_flat(&centroids, centroid_count, dim, key);
            lists[c].push(id, key);
        }
        self.centroids = centroids;
        self.centroid_count = centroid_count;
        self.lists = lists;
        self.inserts_since_train = 0;
    }
}

/// Nearest centroid in a flat `count × dim` matrix (first wins on ties, as
/// the jagged scan did).
fn nearest_flat(centroids: &[f64], count: usize, dim: usize, key: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for i in 0..count {
        let d = l2_distance(key, &centroids[i * dim..(i + 1) * dim]);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Squared L2 distance with early abandonment: accumulates `(a-b)²` in index
/// order — the exact summation `l2_distance` performs — and gives up once
/// the running sum can no longer beat `threshold_sum` (the current best
/// candidate's full squared sum). Returns `None` when abandoned. Because
/// partial sums are monotone non-decreasing prefixes of the exact sum, an
/// abandoned candidate provably could not have won under the caller's strict
/// sqrt-domain comparison, so pruning never changes the selected hit.
#[inline]
fn distance_sq_early_abandon(a: &[f64], b: &[f64], threshold_sum: f64) -> Option<f64> {
    let mut sum = 0.0;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let stop = (i + 8).min(n);
        while i < stop {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        if sum >= threshold_sum && i < n {
            return None;
        }
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_keys(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = IvfIndex::new(8, IvfConfig::default(), 1);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 8]).is_none());
    }

    #[test]
    fn exact_match_found() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 2);
        for (i, key) in random_keys(200, 4, 3).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 200);
        // Query with a stored key: distance must be ~0 and id correct under
        // exact search; ANN search should find it too since it is its own
        // cluster member.
        let probe = random_keys(200, 4, 3)[57].clone();
        let exact = idx.search_exact(&probe).unwrap();
        assert_eq!(exact.id, 57);
        assert!(exact.distance < 1e-12);
        let approx = idx.search(&probe).unwrap();
        assert!(approx.distance < 1e-12);
    }

    #[test]
    fn recall_against_exact_search() {
        let dim = 16;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 8,
                nprobe: 3,
                retrain_interval: 256,
            },
            4,
        );
        for (i, key) in random_keys(500, dim, 5).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(100, dim, 6);
        let mut hits = 0;
        for q in &queries {
            let approx = idx.search(q).unwrap();
            let exact = idx.search_exact(q).unwrap();
            if approx.id == exact.id || (approx.distance - exact.distance).abs() < 1e-9 {
                hits += 1;
            }
        }
        // IVF with nprobe 3/8 should find the true neighbour most of the time.
        assert!(hits >= 70, "recall too low: {hits}/100");
    }

    #[test]
    fn pruned_search_is_identical_to_full_probe_scan() {
        // The property the memo determinism contracts rely on: with
        // `nprobe == nlist` (every list probed) the pruned SoA search must
        // return the *identical* SearchHit as the exhaustive scan — same id,
        // same distance bits — on seeded workloads, across insert sizes,
        // retrains and removals.
        for seed in 0..6u64 {
            let dim = 12;
            let mut idx = IvfIndex::new(
                dim,
                IvfConfig {
                    nlist: 8,
                    nprobe: 8,
                    retrain_interval: 64,
                },
                seed,
            );
            for (i, key) in random_keys(300, dim, 100 + seed).into_iter().enumerate() {
                idx.add(i as u64, key);
            }
            // A few removals exercise order preservation.
            for id in [3u64, 77, 150, 299] {
                assert!(idx.remove(id));
            }
            let mut scratch = SearchScratch::default();
            for q in &random_keys(50, dim, 200 + seed) {
                let pruned = idx.search_with(q, &mut scratch).unwrap();
                let exact = idx.search_exact(q).unwrap();
                assert_eq!(pruned.id, exact.id, "seed {seed}");
                assert_eq!(
                    pruned.distance.to_bits(),
                    exact.distance.to_bits(),
                    "seed {seed}: distance bits diverged"
                );
            }
        }
    }

    #[test]
    fn quantised_shortlist_rescore_matches_exact_bits() {
        // The quantized-shortlist + exact-rescore path must return the
        // bit-identical SearchHit (id and distance bits) a full f64 scan
        // would, across key distributions that stress the quantiser: wildly
        // mixed magnitudes (worst-case shared per-list scale), duplicated
        // keys (exact distance ties), and near-duplicates (shortlist bounds
        // close to the incumbent).
        for seed in 0..8u64 {
            let dim = 20;
            let mut idx = IvfIndex::new(
                dim,
                IvfConfig {
                    nlist: 6,
                    nprobe: 6,
                    retrain_interval: 48,
                },
                seed,
            );
            let mut keys = random_keys(240, dim, 300 + seed);
            for (i, key) in keys.iter_mut().enumerate() {
                // Scales spanning 6 orders of magnitude within one index.
                let scale = 10f64.powi((i % 7) as i32 - 3);
                for v in key.iter_mut() {
                    *v = (*v - 0.5) * scale;
                }
            }
            // Exact duplicates force distance ties: first-inserted must win.
            let dup = keys[17].clone();
            keys.push(dup.clone());
            keys.push(dup);
            for (i, key) in keys.iter().enumerate() {
                idx.add(i as u64, key.clone());
            }
            let mut scratch = SearchScratch::default();
            let mut queries = random_keys(40, dim, 400 + seed);
            queries.push(keys[17].clone()); // exact-match tie between 3 copies
            for q in &queries {
                let pruned = idx.search_with(q, &mut scratch).unwrap();
                let exact = idx.search_exact(q).unwrap();
                assert_eq!(pruned.id, exact.id, "seed {seed}");
                assert_eq!(
                    pruned.distance.to_bits(),
                    exact.distance.to_bits(),
                    "seed {seed}: distance bits diverged"
                );
            }
        }
    }

    #[test]
    fn batched_search_is_bit_identical_to_single() {
        // The centroid-major batched scan must fill every result slot with
        // the bit-identical hit the single-query probe-ordered scan returns
        // — including on exact-duplicate keys where ties are resolved by
        // (probe rank, list position) rather than arrival order.
        for seed in 0..6u64 {
            let dim = 12;
            let mut idx = IvfIndex::new(
                dim,
                IvfConfig {
                    nlist: 8,
                    nprobe: 3,
                    retrain_interval: 96,
                },
                seed,
            );
            let mut keys = random_keys(260, dim, 500 + seed);
            let dup = keys[41].clone();
            keys.push(dup);
            for (i, key) in keys.iter().enumerate() {
                idx.add(i as u64, key.clone());
            }
            let mut queries = random_keys(30, dim, 600 + seed);
            queries.push(keys[41].clone());
            let mut batch_scratch = BatchSearchScratch::default();
            let batch = idx.search_batch_with(&queries, &mut batch_scratch);
            let mut scratch = SearchScratch::default();
            for (q, b) in queries.iter().zip(&batch) {
                let single = idx.search_with(q, &mut scratch);
                assert_eq!(single.map(|h| h.id), b.map(|h| h.id), "seed {seed}");
                assert_eq!(
                    single.map(|h| h.distance.to_bits()),
                    b.map(|h| h.distance.to_bits()),
                    "seed {seed}: distance bits diverged"
                );
            }
        }
    }

    #[test]
    fn early_abandon_prefixes_match_full_sum() {
        // With an infinite threshold the early-abandon sum equals the plain
        // squared distance bit for bit (same accumulation order).
        let a = random_keys(1, 37, 9)[0].clone();
        let b = random_keys(1, 37, 10)[0].clone();
        let full = distance_sq_early_abandon(&a, &b, f64::INFINITY).unwrap();
        assert_eq!(full.sqrt().to_bits(), l2_distance(&a, &b).to_bits());
        // A threshold below the true distance abandons.
        assert!(distance_sq_early_abandon(&a, &b, full / 2.0).is_none());
    }

    #[test]
    fn batched_search_matches_single() {
        let dim = 8;
        let mut idx = IvfIndex::new(dim, IvfConfig::default(), 7);
        for (i, key) in random_keys(300, dim, 8).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(20, dim, 9);
        let batch = idx.search_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = idx.search(q);
            assert_eq!(single.map(|h| h.id), b.map(|h| h.id));
        }
    }

    #[test]
    fn comparisons_shrink_after_training() {
        let dim = 8;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 16,
                nprobe: 2,
                retrain_interval: 10_000,
            },
            10,
        );
        for (i, key) in random_keys(63, dim, 11).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        // Below the training threshold: exhaustive.
        assert_eq!(idx.comparisons_per_query(), 63);
        for (i, key) in random_keys(500, dim, 12).into_iter().enumerate() {
            idx.add(1000 + i as u64, key);
        }
        // After training, far fewer comparisons than the full database.
        assert!(idx.comparisons_per_query() < idx.len());
    }

    #[test]
    fn remove_deletes_exactly_one_key() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 20);
        for (i, key) in random_keys(120, 4, 21).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 120);
        // Removing a present id shrinks the index and makes it unfindable.
        let probe = random_keys(120, 4, 21)[33].clone();
        assert_eq!(idx.search_exact(&probe).unwrap().id, 33);
        assert!(idx.remove(33));
        assert_eq!(idx.len(), 119);
        assert_ne!(idx.search_exact(&probe).unwrap().id, 33);
        // Removing an absent id is a no-op.
        assert!(!idx.remove(33));
        assert_eq!(idx.len(), 119);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 13);
        idx.add(0, vec![1.0; 5]);
    }
}
