//! The index database: a cluster-based approximate-nearest-neighbour index.
//!
//! The paper builds its index database with Faiss and chooses the
//! *cluster-based* (inverted-file, IVF) organisation over the graph-based one
//! because IVF supports cheap dynamic insertion — new keys arrive on every
//! memoization miss. This module is a from-scratch IVF index: keys are
//! assigned to the nearest of `nlist` k-means centroids; a query scans the
//! `nprobe` nearest clusters and returns the closest stored key by L2
//! distance. Batched queries scan in parallel, which is what makes the
//! key-coalescing optimisation pay off on the memory node.

use mlr_math::norms::l2_distance;
use mlr_math::rng::seeded;
use rand::seq::SliceRandom;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of one nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Identifier supplied at insertion time.
    pub id: u64,
    /// L2 distance between the query and the stored key.
    pub distance: f64,
}

/// Configuration of the IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of clusters (inverted lists).
    pub nlist: usize,
    /// Number of clusters scanned per query.
    pub nprobe: usize,
    /// Number of insertions after which centroids are re-trained.
    pub retrain_interval: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 16,
            nprobe: 4,
            retrain_interval: 1024,
        }
    }
}

/// A cluster-based approximate-nearest-neighbour index over fixed-dimension
/// float vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    centroids: Vec<Vec<f64>>,
    /// Per-cluster lists of (id, key).
    lists: Vec<Vec<(u64, Vec<f64>)>>,
    len: usize,
    inserts_since_train: usize,
    seed: u64,
}

impl IvfIndex {
    /// Creates an empty index for keys of dimension `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or the config is degenerate.
    pub fn new(dim: usize, config: IvfConfig, seed: u64) -> Self {
        assert!(dim > 0, "key dimension must be positive");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe > 0, "nprobe must be positive");
        Self {
            dim,
            config,
            centroids: Vec::new(),
            lists: vec![Vec::new(); config.nlist],
            len: 0,
            inserts_since_train: 0,
            seed,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Inserts a key with the given identifier. Until enough keys exist to
    /// train centroids, keys accumulate in a single list (exact search).
    ///
    /// # Panics
    /// Panics when the key dimension is wrong.
    pub fn add(&mut self, id: u64, key: Vec<f64>) {
        assert_eq!(key.len(), self.dim, "key dimension mismatch");
        let list = if self.centroids.is_empty() {
            0
        } else {
            self.nearest_centroid(&key)
        };
        self.lists[list].push((id, key));
        self.len += 1;
        self.inserts_since_train += 1;
        let should_train = (self.centroids.is_empty() && self.len >= 4 * self.config.nlist)
            || (!self.centroids.is_empty()
                && self.inserts_since_train >= self.config.retrain_interval);
        if should_train {
            self.train();
        }
    }

    /// Removes the key stored under `id`, if present; returns whether a key
    /// was removed. List order is preserved so search tie-breaking (first
    /// encountered wins at equal distance) stays deterministic across
    /// removals — capacity eviction depends on that.
    pub fn remove(&mut self, id: u64) -> bool {
        for list in &mut self.lists {
            if let Some(pos) = list.iter().position(|(stored, _)| *stored == id) {
                list.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Finds the nearest stored key to `query`, if any.
    pub fn search(&self, query: &[f64]) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if self.len == 0 {
            return None;
        }
        let lists = self.probe_lists(query);
        let mut best: Option<SearchHit> = None;
        for &li in &lists {
            for (id, key) in &self.lists[li] {
                let d = l2_distance(query, key);
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: *id,
                        distance: d,
                    });
                }
            }
        }
        best
    }

    /// Batched search: one result slot per query, computed in parallel (the
    /// memory node's multi-threaded batched lookup enabled by key coalescing).
    pub fn search_batch(&self, queries: &[Vec<f64>]) -> Vec<Option<SearchHit>> {
        queries.par_iter().map(|q| self.search(q)).collect()
    }

    /// Exact (exhaustive) nearest-neighbour search — the ground truth used by
    /// recall tests.
    pub fn search_exact(&self, query: &[f64]) -> Option<SearchHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut best: Option<SearchHit> = None;
        for list in &self.lists {
            for (id, key) in list {
                let d = l2_distance(query, key);
                if best.is_none_or(|b| d < b.distance) {
                    best = Some(SearchHit {
                        id: *id,
                        distance: d,
                    });
                }
            }
        }
        best
    }

    /// Number of stored keys a query would compare against (the paper's
    /// "similarity comparison" cost; used to contrast private vs. global
    /// caches and to price queries in the cost model).
    pub fn comparisons_per_query(&self) -> usize {
        if self.centroids.is_empty() {
            return self.len;
        }
        // nprobe lists of average occupancy, plus the centroid scan.
        let avg = self.len / self.config.nlist.max(1);
        self.config.nlist + self.config.nprobe * avg.max(1)
    }

    fn nearest_centroid(&self, key: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = l2_distance(key, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn probe_lists(&self, query: &[f64]) -> Vec<usize> {
        if self.centroids.is_empty() {
            return vec![0];
        }
        let mut dists: Vec<(usize, f64)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, l2_distance(query, c)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("non-finite distance"));
        dists
            .iter()
            .take(self.config.nprobe)
            .map(|&(i, _)| i)
            .collect()
    }

    /// Re-trains centroids with a few Lloyd iterations over all stored keys
    /// and redistributes the inverted lists.
    fn train(&mut self) {
        let all: Vec<(u64, Vec<f64>)> = self.lists.iter().flatten().cloned().collect();
        if all.len() < self.config.nlist {
            return;
        }
        let mut rng = seeded(self.seed ^ self.len as u64);
        // k-means++ style: random distinct initial centroids.
        let mut indices: Vec<usize> = (0..all.len()).collect();
        indices.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = indices
            .iter()
            .take(self.config.nlist)
            .map(|&i| all[i].1.clone())
            .collect();

        for _ in 0..5 {
            let mut sums = vec![vec![0.0; self.dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (_, key) in &all {
                let c = nearest_of(&centroids, key);
                counts[c] += 1;
                for (s, k) in sums[c].iter_mut().zip(key) {
                    *s += k;
                }
            }
            for (c, (sum, count)) in sums.iter().zip(&counts).enumerate() {
                if *count > 0 {
                    centroids[c] = sum.iter().map(|s| s / *count as f64).collect();
                }
            }
        }

        let mut lists = vec![Vec::new(); self.config.nlist];
        for (id, key) in all {
            let c = nearest_of(&centroids, &key);
            lists[c].push((id, key));
        }
        self.centroids = centroids;
        self.lists = lists;
        self.inserts_since_train = 0;
    }
}

fn nearest_of(centroids: &[Vec<f64>], key: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = l2_distance(key, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_keys(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = IvfIndex::new(8, IvfConfig::default(), 1);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 8]).is_none());
    }

    #[test]
    fn exact_match_found() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 2);
        for (i, key) in random_keys(200, 4, 3).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 200);
        // Query with a stored key: distance must be ~0 and id correct under
        // exact search; ANN search should find it too since it is its own
        // cluster member.
        let probe = random_keys(200, 4, 3)[57].clone();
        let exact = idx.search_exact(&probe).unwrap();
        assert_eq!(exact.id, 57);
        assert!(exact.distance < 1e-12);
        let approx = idx.search(&probe).unwrap();
        assert!(approx.distance < 1e-12);
    }

    #[test]
    fn recall_against_exact_search() {
        let dim = 16;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 8,
                nprobe: 3,
                retrain_interval: 256,
            },
            4,
        );
        for (i, key) in random_keys(500, dim, 5).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(100, dim, 6);
        let mut hits = 0;
        for q in &queries {
            let approx = idx.search(q).unwrap();
            let exact = idx.search_exact(q).unwrap();
            if approx.id == exact.id || (approx.distance - exact.distance).abs() < 1e-9 {
                hits += 1;
            }
        }
        // IVF with nprobe 3/8 should find the true neighbour most of the time.
        assert!(hits >= 70, "recall too low: {hits}/100");
    }

    #[test]
    fn batched_search_matches_single() {
        let dim = 8;
        let mut idx = IvfIndex::new(dim, IvfConfig::default(), 7);
        for (i, key) in random_keys(300, dim, 8).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        let queries = random_keys(20, dim, 9);
        let batch = idx.search_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = idx.search(q);
            assert_eq!(single.map(|h| h.id), b.map(|h| h.id));
        }
    }

    #[test]
    fn comparisons_shrink_after_training() {
        let dim = 8;
        let mut idx = IvfIndex::new(
            dim,
            IvfConfig {
                nlist: 16,
                nprobe: 2,
                retrain_interval: 10_000,
            },
            10,
        );
        for (i, key) in random_keys(63, dim, 11).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        // Below the training threshold: exhaustive.
        assert_eq!(idx.comparisons_per_query(), 63);
        for (i, key) in random_keys(500, dim, 12).into_iter().enumerate() {
            idx.add(1000 + i as u64, key);
        }
        // After training, far fewer comparisons than the full database.
        assert!(idx.comparisons_per_query() < idx.len());
    }

    #[test]
    fn remove_deletes_exactly_one_key() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 20);
        for (i, key) in random_keys(120, 4, 21).into_iter().enumerate() {
            idx.add(i as u64, key);
        }
        assert_eq!(idx.len(), 120);
        // Removing a present id shrinks the index and makes it unfindable.
        let probe = random_keys(120, 4, 21)[33].clone();
        assert_eq!(idx.search_exact(&probe).unwrap().id, 33);
        assert!(idx.remove(33));
        assert_eq!(idx.len(), 119);
        assert_ne!(idx.search_exact(&probe).unwrap().id, 33);
        // Removing an absent id is a no-op.
        assert!(!idx.remove(33));
        assert_eq!(idx.len(), 119);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut idx = IvfIndex::new(4, IvfConfig::default(), 13);
        idx.add(0, vec![1.0; 5]);
    }
}
