//! # mlr-memo
//!
//! The distributed memoization system that is mLR's core contribution:
//! replace expensive unequally-spaced FFT operations with values computed in
//! earlier ADMM iterations whenever the operation's input chunk is
//! sufficiently similar (cosine similarity above a threshold `τ`) to a chunk
//! seen before.
//!
//! The crate mirrors the paper's architecture piece by piece:
//!
//! * [`encoder`] — the CNN key encoder (§4.3.1): complex chunks are split
//!   into real/imaginary planes, passed through a small convolutional network
//!   trained with a contrastive loss so that chunks with similar content land
//!   close together in a ~60-dimensional embedding space; weights can be
//!   quantised to INT8 for cheap CPU inference.
//! * [`fingerprint`] — the norm prefilter's O(n) chunk fingerprints and the
//!   per-scope doorkeeper table: chunks with no fingerprint neighbor inside
//!   the τ-derived band skip the CNN encoder (and the probe) entirely and go
//!   straight to the exact FFT.
//! * [`ann`] — the index database (§4.3.2): a from-scratch cluster-based
//!   (IVF) approximate-nearest-neighbour index standing in for Faiss,
//!   supporting dynamic insertion and batched queries.
//! * [`kvstore`] — the value database: an in-memory sharded key-value store
//!   standing in for Redis, with asynchronous insertion.
//! * [`db`] — the memoization database combining encoder + index + values,
//!   with the τ-thresholded query/insert protocol.
//! * [`cache`] — the compute-node memoization cache (§4.4): a one-entry FIFO
//!   cache *private to each chunk location*, compared against a global cache.
//! * [`coalesce`] — key coalescing (§4.3.3): queries are buffered until the
//!   payload reaches the interconnect's saturating size (4 KB).
//! * [`engine`] — the [`MemoizedExecutor`], an implementation of
//!   `mlr_lamino::FftExecutor` that the ADMM solver can use in place of the
//!   direct executor; it accounts simulated time against `mlr-sim`'s cost
//!   model and records the per-case statistics behind Figures 10–12.
//! * [`eviction`] — capacity governance: [`CapacityBudget`] caps (bytes /
//!   entries, global and per stripe) enforced after every insert by a
//!   pluggable [`EvictionPolicy`] (FIFO, LRU, TTL in job-iterations, and a
//!   cost-aware benefit-density policy). Eviction runs on logical clocks
//!   (op ticks, epochs, stable entry ids) shared by every stripe, so it is
//!   deterministic given the schedule and independent of the shard layout.
//! * [`parallel`] — deterministic intra-job chunk parallelism: the
//!   [`ConcurrencyGovernor`] that keeps job-level workers × chunk-level
//!   threads from oversubscribing the machine, and the per-job
//!   [`ParallelStats`]. The engine's batched executor runs a two-phase
//!   protocol (parallel read-only probe/compute, then an ordered commit in
//!   chunk-index order), so reconstructions are bit-identical for every
//!   thread count.
//! * [`similarity`] — the chunk-similarity tracker behind Figure 4.
//! * [`store`] — the [`MemoStore`] seam: a thread-safe interface the
//!   executor talks to, so the database behind it can be a private
//!   [`MemoDatabase`] or a store shared by many concurrent jobs.
//! * [`sharded`] — the [`ShardedMemoDb`], a lock-striped concurrent store
//!   serving several reconstruction jobs at once (the in-process analogue
//!   of the paper's memory node under multi-job traffic).

#![warn(missing_docs)]

pub mod ann;
pub mod cache;
pub mod coalesce;
pub mod db;
pub mod distributed;
pub mod encoder;
pub mod engine;
pub mod eviction;
pub mod fingerprint;
pub mod kvstore;
pub mod parallel;
pub mod sharded;
pub mod similarity;
pub mod stats;
pub mod store;

pub use ann::IvfIndex;
pub use cache::{CacheKind, MemoCache};
pub use coalesce::KeyCoalescer;
pub use db::{MemoDatabase, MemoDbConfig, QueryOutcome};
pub use distributed::{DistributedMemoDb, DistributedStats, FaultStats, NodeStats, NodeTopology};
pub use encoder::{CnnEncoder, EncoderConfig, EncoderScratch};
pub use engine::{MemoConfig, MemoizedExecutor};
pub use eviction::{
    recompute_cost_estimate, CapacityBudget, CostAwarePolicy, EntryMeta, EvictionPolicy,
    EvictionPolicyKind, FifoPolicy, LruPolicy, StoreClock, TtlPolicy,
};
pub use fingerprint::{ChunkFingerprint, FingerprintTable, FINGERPRINT_HISTORY};
pub use kvstore::ValueStore;
pub use parallel::{ConcurrencyGovernor, CoreLease, ParallelStats};
pub use sharded::{ShardedMemoDb, ACCESS_OP_UNKNOWN, DEFAULT_SHARDS};
pub use similarity::SimilarityTracker;
pub use stats::{MemoCase, MemoStats, OpStats, OpStatsTable};
pub use store::{JobId, LocalMemoStore, MemoStore, ProbeOutcome, Provenance, StoreStats};
