//! The sharded, lock-striped concurrent memoization store.
//!
//! [`ShardedMemoDb`] is the multi-tenant counterpart of
//! [`MemoDatabase`]: one logical database whose
//! index scopes are distributed over `N` shards, each behind its own
//! `parking_lot` mutex, so concurrent reconstruction jobs contend only when
//! they touch the *same* chunk neighbourhood. It is the in-process analogue
//! of the paper's memory-node database (Figure 6) serving several compute
//! jobs at once: entries inserted by job A are served to job B (tracked by
//! the `cross_job_hits` counter), which is where a shared database beats
//! per-job isolation.
//!
//! Sharding is by index scope — `(operation, chunk location)` under the
//! default per-location scoping, operation only under global scoping — so a
//! scope never straddles shards and query semantics are *identical* to a
//! single [`MemoDatabase`]: the same inserts produce the same hit/miss
//! sequence regardless of the shard count (the per-scope ANN seeds are
//! derived from the scope, not from insertion order, for exactly this
//! reason). Key encoding goes through one shared encoder behind a `RwLock`
//! (reads only, after optional training), so every tenant speaks the same
//! key space.
//!
//! # Capacity governance
//!
//! When the configuration carries a bounded [`CapacityBudget`], the store
//! enforces it *globally*: after every insert it selects the store-wide
//! minimum `(rank, id)` victim across all stripes under one eviction lock,
//! so the resident footprint never exceeds the cap at any observable point
//! and — because every stripe shares one [`StoreClock`] (op ticks, epochs,
//! entry ids) — the evicted entries are exactly the ones a single
//! `MemoDatabase` with the same budget would evict. Per-stripe caps
//! (`stripe_max_*`) are additionally enforced inside each stripe. Published
//! resident counters are only updated *after* enforcement, so external
//! observers never see an over-budget store.

use crate::db::{scope_seed, MemoDatabase, MemoDbConfig, QueryOutcome, PRESSURE_THRESHOLD};
use crate::encoder::{CnnEncoder, EncoderConfig};
use crate::eviction::{CapacityBudget, EvictionPolicy, StoreClock};
use crate::store::{MemoStore, ProbeOutcome, Provenance, StoreStats};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use mlr_telemetry::{AccessKind, AccessRecord, AccessTrace};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Operator discriminant stamped on access records whose operator is
/// unknown at the record point (global eviction selects a victim by
/// `(rank, id)` across stripes, without knowing which operator owns it).
pub const ACCESS_OP_UNKNOWN: u8 = u8::MAX;

/// Default number of lock stripes. Enough to keep eight-ish concurrent jobs
/// off each other's locks without bloating small deployments.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent memoization store sharded by chunk-location hash.
pub struct ShardedMemoDb {
    config: MemoDbConfig,
    /// The shared key encoder. Write-locked only by `train_encoder`; every
    /// encode takes a read lock.
    encoder: RwLock<CnnEncoder>,
    shards: Vec<Mutex<MemoDatabase>>,
    /// Logical clock shared with every stripe (ticks, epochs, entry ids).
    clock: Arc<StoreClock>,
    /// The eviction policy, shared with every stripe (global enforcement
    /// notifies it of evictions directly).
    policy: Arc<dyn EvictionPolicy>,
    /// Serialises insert + global enforcement when the budget is bounded,
    /// so the budget invariant holds at every observable point.
    eviction_lock: Mutex<()>,
    /// Resident bytes/entries as of the last post-enforcement publish.
    published_resident: AtomicI64,
    published_entries: AtomicI64,
    /// High-water mark of the published resident bytes.
    peak_resident: AtomicU64,
    queries: AtomicU64,
    hits: AtomicU64,
    cross_job_hits: AtomicU64,
    inserts: AtomicU64,
    pressure_queries: AtomicU64,
    pressure_hits: AtomicU64,
    /// Optional store access-trace recorder (entry, op, stripe, kind,
    /// tick). Records are emitted only from the ordered-commit paths and
    /// stamped with [`StoreClock::current_tick`] (a read, never an
    /// advance), so the trace is deterministic and tracing cannot perturb
    /// eviction ranking. `None` (the default) costs one branch per commit.
    trace: Option<Arc<AccessTrace>>,
}

impl ShardedMemoDb {
    /// Creates an empty store with [`DEFAULT_SHARDS`] stripes.
    pub fn new(config: MemoDbConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        Self::with_shards(config, encoder_config, seed, DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count; eviction runs
    /// the built-in policy named by `config.eviction`.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn with_shards(
        config: MemoDbConfig,
        encoder_config: EncoderConfig,
        seed: u64,
        shards: usize,
    ) -> Self {
        Self::with_policy(
            config,
            encoder_config,
            seed,
            shards,
            config.eviction.build(),
        )
    }

    /// Creates an empty store governed by a *custom* eviction policy (the
    /// configuration's `eviction` kind is ignored for victim selection).
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn with_policy(
        config: MemoDbConfig,
        encoder_config: EncoderConfig,
        seed: u64,
        shards: usize,
        policy: Arc<dyn EvictionPolicy>,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let clock = StoreClock::new();
        // Every shard gets an encoder with the same seed so the whole store
        // is one consistent key space; only the top-level encoder is ever
        // used for encoding (the shards are driven exclusively through the
        // pre-encoded-key entry points). Shards share the clock and policy
        // so eviction is identical to a single unsharded database.
        let shard_dbs = (0..shards)
            .map(|_| {
                Mutex::new(MemoDatabase::stripe(
                    config,
                    encoder_config,
                    seed,
                    Arc::clone(&clock),
                    Arc::clone(&policy),
                ))
            })
            .collect();
        Self {
            config,
            encoder: RwLock::new(CnnEncoder::new(encoder_config, seed)),
            shards: shard_dbs,
            clock,
            policy,
            eviction_lock: Mutex::new(()),
            published_resident: AtomicI64::new(0),
            published_entries: AtomicI64::new(0),
            peak_resident: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cross_job_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            pressure_queries: AtomicU64::new(0),
            pressure_hits: AtomicU64::new(0),
            trace: None,
        }
    }

    /// Attaches an access-trace recorder (builder form). The store records
    /// hit/miss/insert/evict/expired events from its ordered-commit paths
    /// into the given ring, stamped with store-clock ticks.
    pub fn with_access_trace(mut self, trace: Arc<AccessTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches an access-trace recorder in place (before the store is
    /// shared behind an `Arc`).
    pub fn set_access_trace(&mut self, trace: Arc<AccessTrace>) {
        self.trace = Some(trace);
    }

    /// The attached access-trace recorder, if any.
    pub fn access_trace(&self) -> Option<&Arc<AccessTrace>> {
        self.trace.as_ref()
    }

    /// Records one access event when tracing is enabled; a single branch
    /// otherwise.
    #[inline]
    fn trace_access(&self, op: u8, stripe: usize, entry: u64, kind: AccessKind) {
        if let Some(trace) = &self.trace {
            trace.record(AccessRecord {
                entry,
                op,
                stripe: stripe as u32,
                kind,
                tick: self.clock.current_tick(),
            });
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The store clock's current op tick (a read, never an advance) — the
    /// deterministic timestamp access-trace records carry and the
    /// distributed tier maps to simulated arrival times.
    pub fn current_tick(&self) -> u64 {
        self.clock.current_tick()
    }

    /// The capacity budget this store enforces.
    pub fn budget(&self) -> CapacityBudget {
        self.config.budget
    }

    /// Index of the shard owning the index scope of `(op, loc)`.
    fn shard_index(&self, op: FftOpKind, loc: usize) -> usize {
        // Under global scoping all locations of an operation share one index
        // scope, which therefore must live in one shard.
        let scope_loc = if self.config.per_location {
            loc
        } else {
            usize::MAX
        };
        (scope_seed(op, scope_loc) % self.shards.len() as u64) as usize
    }

    /// Which shard owns the index scope of `(op, loc)`.
    fn shard_for(&self, op: FftOpKind, loc: usize) -> &Mutex<MemoDatabase> {
        &self.shards[self.shard_index(op, loc)]
    }

    /// Public view of the stripe owning `(op, loc)` — what the distributed
    /// tier's stripe→node placement and the trace-replay harness key on.
    /// Identical to the `stripe` field of the access-trace records this
    /// store emits.
    pub fn stripe_of(&self, op: FftOpKind, loc: usize) -> usize {
        self.shard_index(op, loc)
    }

    /// A copy of the eviction metadata of entry `entry` in the stripe
    /// owning `(op, loc)`, if the entry is still resident there. The
    /// distributed tier's replica promotion ranks hot entries by this
    /// metadata (hit counts, bytes, recompute cost).
    pub fn entry_meta(
        &self,
        op: FftOpKind,
        loc: usize,
        entry: u64,
    ) -> Option<crate::eviction::EntryMeta> {
        self.shard_for(op, loc).lock().meta_of(entry)
    }

    /// Per-shard entry counts (diagnostics; shows stripe balance).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }

    /// Purges every entry resident in `stripe` — the distributed tier calls
    /// this when the simulated memory node owning the stripe restarts after
    /// a crash (its contents are lost; warm-up starts from scratch). The
    /// removals bypass the eviction policy and count as neither evictions
    /// nor expirations; published resident counters are adjusted under the
    /// stripe lock, exactly like any other reclamation. Returns the lost
    /// entry ids in ascending order.
    ///
    /// # Panics
    /// Panics when `stripe >= shard_count()`.
    pub fn purge_stripe(&self, stripe: usize) -> Vec<u64> {
        let mut db = self.shards[stripe].lock();
        let ids = db.purge_all();
        let (freed_bytes, freed_entries) = db.drain_freed();
        if freed_bytes > 0 || freed_entries > 0 {
            self.published_resident
                .fetch_sub(freed_bytes as i64, Ordering::Relaxed);
            self.published_entries
                .fetch_sub(freed_entries as i64, Ordering::Relaxed);
        }
        drop(db);
        for &id in &ids {
            self.trace_access(ACCESS_OP_UNKNOWN, stripe, id, AccessKind::Lost);
        }
        ids
    }

    /// High-water mark of the resident footprint, observed only at
    /// post-enforcement points — with a byte cap set this never exceeds it.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// Entries evicted so far to satisfy the budget (all stripes).
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions()).sum()
    }

    /// Entries reclaimed so far because their TTL expired (all stripes).
    pub fn expirations(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().expirations()).sum()
    }

    /// The published `(resident bytes, entries)` totals, clamped at zero —
    /// delta accounting can transiently dip negative when a reclaim's
    /// subtraction lands before the matching (deferred) publication.
    fn published(&self) -> (u64, u64) {
        (
            self.published_resident.load(Ordering::Relaxed).max(0) as u64,
            self.published_entries.load(Ordering::Relaxed).max(0) as u64,
        )
    }

    /// Evicts store-wide minimum-`(rank, id)` victims until the global
    /// caps hold over the published totals plus the not-yet-published
    /// contribution of the insert being enforced. Caller must hold
    /// `eviction_lock`. Each eviction adjusts the published counters by the
    /// freed amount — no stripe re-summing on this path — and the pending
    /// contribution is only published by the caller once enforcement is
    /// done, so external observers never see an over-budget store.
    fn enforce_global(&self, pending_bytes: u64, pending_entries: u64) {
        let budget = self.config.budget;
        if budget.max_bytes.is_none() && budget.max_entries.is_none() {
            return;
        }
        let now_epoch = self.clock.epoch();
        loop {
            let (bytes, entries) = self.published();
            if !budget.exceeded(bytes + pending_bytes, entries + pending_entries) {
                break;
            }
            // Store-wide victim: the same entry a single unsharded database
            // would pick — minimum rank, ties on the smaller stable id.
            let mut best: Option<(f64, u64, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                if let Some((rank, id)) = shard.lock().peek_victim(now_epoch) {
                    let better = match best {
                        None => true,
                        Some((best_rank, best_id, _)) => {
                            (rank.total_cmp(&best_rank)).then(id.cmp(&best_id))
                                == std::cmp::Ordering::Less
                        }
                    };
                    if better {
                        best = Some((rank, id, i));
                    }
                }
            }
            match best {
                Some((rank, id, shard_idx)) => {
                    self.policy.on_evict(rank);
                    let mut db = self.shards[shard_idx].lock();
                    db.evict_id(id);
                    let (freed_bytes, freed_entries) = db.drain_freed();
                    self.published_resident
                        .fetch_sub(freed_bytes as i64, Ordering::Relaxed);
                    self.published_entries
                        .fetch_sub(freed_entries as i64, Ordering::Relaxed);
                    drop(db);
                    self.trace_access(ACCESS_OP_UNKNOWN, shard_idx, id, AccessKind::Evict);
                }
                None => break,
            }
        }
    }
}

impl MemoStore for ShardedMemoDb {
    fn config(&self) -> MemoDbConfig {
        self.config
    }

    fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.encoder.read().encode(input)
    }

    fn encode_batch(&self, inputs: &[&[Complex64]]) -> Vec<Vec<f64>> {
        // One reader lease and one thread-local scratch for the whole batch.
        self.encoder.read().encode_batch(inputs)
    }

    fn has_fingerprint_neighbor(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: &crate::fingerprint::ChunkFingerprint,
    ) -> bool {
        self.shard_for(op, loc)
            .lock()
            .has_fingerprint_neighbor(op, loc, fp)
    }

    fn note_fingerprint(
        &self,
        op: FftOpKind,
        loc: usize,
        fp: crate::fingerprint::ChunkFingerprint,
    ) {
        self.shard_for(op, loc).lock().note_fingerprint(op, loc, fp);
    }

    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (published_bytes, published_entries) = self.published();
        let under_pressure = self
            .config
            .budget
            .pressure(published_bytes, published_entries)
            >= PRESSURE_THRESHOLD;
        if under_pressure {
            self.pressure_queries.fetch_add(1, Ordering::Relaxed);
        }
        let mut db = self.shard_for(op, loc).lock();
        let outcome = db.query_with_key_from(op, loc, input, key, origin);
        // A query can lazily reclaim an expired entry; fold the freed bytes
        // into the published counters while the stripe lock is still held,
        // so the subtraction cannot race an insert's addition of the same
        // entry.
        let (freed_bytes, freed_entries) = db.drain_freed();
        if freed_bytes > 0 || freed_entries > 0 {
            self.published_resident
                .fetch_sub(freed_bytes as i64, Ordering::Relaxed);
            self.published_entries
                .fetch_sub(freed_entries as i64, Ordering::Relaxed);
        }
        drop(db);
        if let QueryOutcome::Hit {
            origin: entry_origin,
            ..
        } = &outcome
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if under_pressure {
                self.pressure_hits.fetch_add(1, Ordering::Relaxed);
            }
            if entry_origin.job != origin.job {
                self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn probe_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: &[f64],
        origin: Provenance,
    ) -> ProbeOutcome {
        // Pure read against the owning stripe: no counters, no reclamation,
        // no published-counter adjustments.
        self.shard_for(op, loc)
            .lock()
            .probe_with_key_from(op, loc, input, key, origin)
    }

    fn commit_hit(
        &self,
        op: FftOpKind,
        loc: usize,
        entry: u64,
        entry_origin: Provenance,
        origin: Provenance,
    ) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (published_bytes, published_entries) = self.published();
        if self
            .config
            .budget
            .pressure(published_bytes, published_entries)
            >= PRESSURE_THRESHOLD
        {
            self.pressure_queries.fetch_add(1, Ordering::Relaxed);
            self.pressure_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        if entry_origin.job != origin.job {
            self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
        }
        let stripe = self.shard_index(op, loc);
        self.shards[stripe]
            .lock()
            .commit_hit(entry, entry_origin, origin);
        self.trace_access(op as u8, stripe, entry, AccessKind::Hit);
    }

    fn commit_miss(&self, op: FftOpKind, loc: usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (published_bytes, published_entries) = self.published();
        if self
            .config
            .budget
            .pressure(published_bytes, published_entries)
            >= PRESSURE_THRESHOLD
        {
            self.pressure_queries.fetch_add(1, Ordering::Relaxed);
        }
        let stripe = self.shard_index(op, loc);
        self.shards[stripe].lock().commit_miss_query();
        self.trace_access(op as u8, stripe, 0, AccessKind::Miss);
    }

    fn reclaim_expired(&self, op: FftOpKind, loc: usize, entry: u64) {
        let stripe = self.shard_index(op, loc);
        let mut db = self.shards[stripe].lock();
        db.reclaim_expired(entry);
        let (freed_bytes, freed_entries) = db.drain_freed();
        if freed_bytes > 0 || freed_entries > 0 {
            self.published_resident
                .fetch_sub(freed_bytes as i64, Ordering::Relaxed);
            self.published_entries
                .fetch_sub(freed_entries as i64, Ordering::Relaxed);
        }
        drop(db);
        self.trace_access(op as u8, stripe, entry, AccessKind::Expired);
    }

    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
        recompute_cost: f64,
    ) -> u64 {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let bounded = self.config.budget.is_bounded();
        // One writer at a time when bounded: the budget invariant must hold
        // at every observable point, so insert + global enforcement are
        // atomic with respect to other inserts. Queries stay concurrent
        // (they only take their own stripe's lock).
        let _guard = bounded.then(|| self.eviction_lock.lock());
        let stripe = self.shard_index(op, loc);
        let mut db = self.shards[stripe].lock();
        let before = (db.resident_bytes(), db.len() as u64);
        let id = db.insert_from_with_cost(op, loc, input, key, output, origin, recompute_cost);
        let (freed_bytes, freed_entries) = db.drain_freed();
        let after = (db.resident_bytes(), db.len() as u64);
        // Split the stripe's delta: what stripe-cap eviction reclaimed from
        // already-published entries is subtracted immediately (still under
        // the stripe lock, so it cannot race that entry's own publication),
        // while the new entry's contribution is published only after global
        // enforcement — observers never see an over-budget store.
        let new_bytes = after.0 + freed_bytes - before.0;
        let new_entries = after.1 + freed_entries - before.1;
        if freed_bytes > 0 || freed_entries > 0 {
            self.published_resident
                .fetch_sub(freed_bytes as i64, Ordering::Relaxed);
            self.published_entries
                .fetch_sub(freed_entries as i64, Ordering::Relaxed);
        }
        drop(db);
        if bounded {
            self.enforce_global(new_bytes, new_entries);
        }
        self.published_resident
            .fetch_add(new_bytes as i64, Ordering::Relaxed);
        self.published_entries
            .fetch_add(new_entries as i64, Ordering::Relaxed);
        self.peak_resident
            .fetch_max(self.published().0, Ordering::Relaxed);
        self.trace_access(op as u8, stripe, id, AccessKind::Insert);
        id
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn value_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().value_bytes()).sum()
    }

    fn resident_bytes(&self) -> u64 {
        self.published().0
    }

    fn advance_epoch(&self) -> u64 {
        self.clock.advance_epoch()
    }

    fn epoch(&self) -> u64 {
        self.clock.epoch()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.len(),
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            cross_job_hits: self.cross_job_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            value_bytes: self.value_bytes(),
            evictions: self.evictions(),
            expirations: self.expirations(),
            resident_bytes: self.resident_bytes(),
            peak_resident_bytes: self.peak_resident_bytes(),
            pressure_queries: self.pressure_queries.load(Ordering::Relaxed),
            pressure_hits: self.pressure_hits.load(Ordering::Relaxed),
        }
    }

    fn comparisons_per_query(&self) -> f64 {
        let per_shard: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.lock().comparisons_per_query())
            .filter(|&c| c > 0.0)
            .collect();
        if per_shard.is_empty() {
            0.0
        } else {
            per_shard.iter().sum::<f64>() / per_shard.len() as f64
        }
    }

    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        let mut encoder = self.encoder.write();
        let loss = encoder.train_contrastive(samples, epochs);
        encoder.quantise_weights();
        // Keep the shards' own encoders in lockstep: all store traffic goes
        // through the pre-encoded-key entry points, but MemoDatabase's
        // `encode`/`query` are public, and a shard answering with a stale
        // (untrained) encoder would silently live in a different key space.
        for shard in &self.shards {
            *shard.lock().encoder_mut() = encoder.clone();
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::MemoDatabase;
    use crate::encoder::EncoderConfig;
    use crate::eviction::{recompute_cost_estimate, EvictionPolicyKind};
    use crate::store::LocalMemoStore;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn sharded(tau: f64, shards: usize) -> ShardedMemoDb {
        ShardedMemoDb::with_shards(
            MemoDbConfig {
                tau,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
            shards,
        )
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    fn insert_simple(
        store: &dyn MemoStore,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
    ) -> u64 {
        let cost = recompute_cost_estimate(op, input.len());
        store.insert(op, loc, input, key, output, origin, cost)
    }

    #[test]
    fn insert_then_query_hits_across_jobs() {
        let db = sharded(0.9, 4);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        let origin_a = Provenance {
            job: 1,
            iteration: 3,
        };
        insert_simple(
            &db,
            FftOpKind::Fu2D,
            5,
            &input,
            key.clone(),
            chunk(2.0, 1.0, 32),
            origin_a,
        );

        // Same job, same iteration: the freshness gate must refuse.
        match db.query_with_key(FftOpKind::Fu2D, 5, &input, key.clone(), origin_a) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("same-iteration reuse must be gated"),
        }
        // Different job at iteration 0: eligible, and counted as cross-job.
        let origin_b = Provenance {
            job: 2,
            iteration: 0,
        };
        match db.query_with_key(FftOpKind::Fu2D, 5, &input, key, origin_b) {
            QueryOutcome::Hit { origin, .. } => assert_eq!(origin, origin_a),
            QueryOutcome::Miss { .. } => panic!("cross-job hit expected"),
        }
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cross_job_hits, 1);
        assert_eq!(stats.inserts, 1);
        assert!(stats.cross_job_hit_rate() > 0.0);
    }

    #[test]
    fn outcome_is_independent_of_shard_count() {
        // The same insert/query trace against 1, 3 and 16 shards (and the
        // single-tenant LocalMemoStore) must produce identical hit/miss
        // sequences — the determinism contract the runtime relies on.
        let trace: Vec<(FftOpKind, usize, f64, f64)> = vec![
            (FftOpKind::Fu2D, 0, 1.0, 0.0),
            (FftOpKind::Fu2D, 1, 1.0, 0.4),
            (FftOpKind::Fu1D, 0, 0.7, 0.1),
            (FftOpKind::Fu2DAdj, 3, 1.3, 0.9),
            (FftOpKind::Fu2D, 0, 1.01, 0.01),
            (FftOpKind::Fu1D, 0, 0.72, 0.12),
        ];
        let run = |store: &dyn MemoStore| -> Vec<bool> {
            let mut outcomes = Vec::new();
            for (it, &(op, loc, scale, phase)) in trace.iter().enumerate() {
                let input = chunk(scale, phase, 256);
                let key = store.encode(&input);
                let origin = Provenance::solo(it + 1);
                match store.query_with_key(op, loc, &input, key.clone(), origin) {
                    QueryOutcome::Hit { .. } => outcomes.push(true),
                    QueryOutcome::Miss { key } => {
                        outcomes.push(false);
                        insert_simple(store, op, loc, &input, key, chunk(2.0, 0.5, 16), origin);
                    }
                }
            }
            outcomes
        };
        let local = LocalMemoStore::new(MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        ));
        let reference = run(&local);
        assert!(
            reference.iter().any(|&h| h),
            "trace never hits — test is vacuous"
        );
        for shards in [1, 3, 16] {
            assert_eq!(
                run(&sharded(0.9, shards)),
                reference,
                "{shards} shards diverged"
            );
        }
    }

    #[test]
    fn scopes_do_not_leak_across_locations() {
        let db = sharded(0.9, 8);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        insert_simple(
            &db,
            FftOpKind::Fu2D,
            0,
            &input,
            key.clone(),
            chunk(2.0, 1.0, 16),
            Provenance::solo(0),
        );
        match db.query_with_key(FftOpKind::Fu2D, 1, &input, key, Provenance::solo(1)) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("per-location scoping violated"),
        }
    }

    #[test]
    fn global_scope_stays_in_one_shard() {
        let config = MemoDbConfig {
            tau: 0.9,
            per_location: false,
            ..Default::default()
        };
        let db = ShardedMemoDb::with_shards(config, tiny_encoder_config(), 2, 8);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        insert_simple(
            &db,
            FftOpKind::Fu2D,
            0,
            &input,
            key,
            chunk(2.0, 1.0, 16),
            Provenance::solo(0),
        );
        // A different location must still hit: the whole operation shares one
        // index scope, which sharding must not split.
        let key2 = db.encode(&input);
        match db.query_with_key(FftOpKind::Fu2D, 77, &input, key2, Provenance::solo(1)) {
            QueryOutcome::Hit { .. } => {}
            QueryOutcome::Miss { .. } => panic!("global scope broken by sharding"),
        }
    }

    #[test]
    fn value_accounting_sums_over_shards() {
        let db = sharded(0.9, 4);
        for loc in 0..8 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = db.encode(&input);
            insert_simple(
                &db,
                FftOpKind::Fu2D,
                loc,
                &input,
                key,
                chunk(1.0, 0.0, 32),
                Provenance::solo(0),
            );
        }
        assert_eq!(db.len(), 8);
        assert_eq!(db.value_bytes(), 8 * 32 * 16);
        // Resident bytes additionally count raw inputs + keys and are
        // published after every insert.
        assert!(db.resident_bytes() > db.value_bytes());
        assert!(db.peak_resident_bytes() >= db.resident_bytes());
        assert_eq!(db.shard_sizes().iter().sum::<usize>(), 8);
        assert!(
            db.shard_sizes().iter().filter(|&&n| n > 0).count() > 1,
            "all in one stripe"
        );
    }

    #[test]
    fn global_entry_cap_is_enforced_across_shards() {
        let db = ShardedMemoDb::with_shards(
            MemoDbConfig {
                tau: 0.9,
                budget: CapacityBudget::entries(3),
                eviction: EvictionPolicyKind::Fifo,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
            4,
        );
        for loc in 0..10 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = db.encode(&input);
            insert_simple(
                &db,
                FftOpKind::Fu2D,
                loc,
                &input,
                key,
                chunk(1.0, 0.0, 32),
                Provenance::solo(0),
            );
            assert!(db.len() <= 3, "global cap violated after insert {loc}");
        }
        assert_eq!(db.len(), 3);
        assert_eq!(db.evictions(), 7);
        let stats = db.stats();
        assert_eq!(stats.evictions, 7);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn bounded_sharded_store_matches_unsharded_eviction() {
        // A byte-capped trace must produce identical hit/miss sequences and
        // identical surviving entries whether the store is one database or
        // striped — the shared clock + global victim selection guarantee.
        let run = |store: &dyn MemoStore| -> (Vec<bool>, usize, u64) {
            let mut outcomes = Vec::new();
            for round in 0..3usize {
                store.advance_epoch();
                for loc in 0..12usize {
                    let input = chunk(1.0 + loc as f64, 0.2 * loc as f64, 128);
                    let key = store.encode(&input);
                    let origin = Provenance::solo(round + 1);
                    match store.query_with_key(FftOpKind::Fu2D, loc, &input, key, origin) {
                        QueryOutcome::Hit { .. } => outcomes.push(true),
                        QueryOutcome::Miss { key } => {
                            outcomes.push(false);
                            insert_simple(
                                store,
                                FftOpKind::Fu2D,
                                loc,
                                &input,
                                key,
                                chunk(2.0, 0.5, 64),
                                origin,
                            );
                        }
                    }
                }
            }
            (outcomes, store.len(), store.stats().evictions)
        };
        let config = |budget| MemoDbConfig {
            tau: 0.9,
            budget,
            eviction: EvictionPolicyKind::Lru,
            ..Default::default()
        };
        // Measure the unbounded footprint, then cap at half of it.
        let probe = ShardedMemoDb::with_shards(
            config(CapacityBudget::unbounded()),
            tiny_encoder_config(),
            1,
            4,
        );
        let _ = run(&probe);
        let cap = probe.resident_bytes() / 2;
        assert!(cap > 0);

        let local = LocalMemoStore::new(MemoDatabase::new(
            config(CapacityBudget::bytes(cap)),
            tiny_encoder_config(),
            1,
        ));
        let reference = run(&local);
        assert!(reference.2 > 0, "cap at 50% must evict — test is vacuous");
        for shards in [1, 4, 16] {
            let store = ShardedMemoDb::with_shards(
                config(CapacityBudget::bytes(cap)),
                tiny_encoder_config(),
                1,
                shards,
            );
            assert_eq!(run(&store), reference, "{shards} shards diverged");
            assert!(store.peak_resident_bytes() <= cap);
        }
    }
}
