//! The sharded, lock-striped concurrent memoization store.
//!
//! [`ShardedMemoDb`] is the multi-tenant counterpart of
//! [`MemoDatabase`](crate::db::MemoDatabase): one logical database whose
//! index scopes are distributed over `N` shards, each behind its own
//! `parking_lot` mutex, so concurrent reconstruction jobs contend only when
//! they touch the *same* chunk neighbourhood. It is the in-process analogue
//! of the paper's memory-node database (Figure 6) serving several compute
//! jobs at once: entries inserted by job A are served to job B (tracked by
//! the `cross_job_hits` counter), which is where a shared database beats
//! per-job isolation.
//!
//! Sharding is by index scope — `(operation, chunk location)` under the
//! default per-location scoping, operation only under global scoping — so a
//! scope never straddles shards and query semantics are *identical* to a
//! single [`MemoDatabase`]: the same inserts produce the same hit/miss
//! sequence regardless of the shard count (the per-scope ANN seeds are
//! derived from the scope, not from insertion order, for exactly this
//! reason). Key encoding goes through one shared encoder behind a `RwLock`
//! (reads only, after optional training), so every tenant speaks the same
//! key space.

use crate::db::{scope_seed, MemoDatabase, MemoDbConfig, QueryOutcome};
use crate::encoder::{CnnEncoder, EncoderConfig};
use crate::store::{MemoStore, Provenance, StoreStats};
use mlr_lamino::FftOpKind;
use mlr_math::Complex64;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of lock stripes. Enough to keep eight-ish concurrent jobs
/// off each other's locks without bloating small deployments.
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent memoization store sharded by chunk-location hash.
pub struct ShardedMemoDb {
    config: MemoDbConfig,
    /// The shared key encoder. Write-locked only by `train_encoder`; every
    /// encode takes a read lock.
    encoder: RwLock<CnnEncoder>,
    shards: Vec<Mutex<MemoDatabase>>,
    queries: AtomicU64,
    hits: AtomicU64,
    cross_job_hits: AtomicU64,
    inserts: AtomicU64,
}

impl ShardedMemoDb {
    /// Creates an empty store with [`DEFAULT_SHARDS`] stripes.
    pub fn new(config: MemoDbConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        Self::with_shards(config, encoder_config, seed, DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn with_shards(
        config: MemoDbConfig,
        encoder_config: EncoderConfig,
        seed: u64,
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        // Every shard gets an encoder with the same seed so the whole store
        // is one consistent key space; only the top-level encoder is ever
        // used for encoding (the shards are driven exclusively through the
        // pre-encoded-key entry points).
        let shard_dbs = (0..shards)
            .map(|_| Mutex::new(MemoDatabase::new(config, encoder_config, seed)))
            .collect();
        Self {
            config,
            encoder: RwLock::new(CnnEncoder::new(encoder_config, seed)),
            shards: shard_dbs,
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cross_job_hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns the index scope of `(op, loc)`.
    fn shard_for(&self, op: FftOpKind, loc: usize) -> &Mutex<MemoDatabase> {
        // Under global scoping all locations of an operation share one index
        // scope, which therefore must live in one shard.
        let scope_loc = if self.config.per_location {
            loc
        } else {
            usize::MAX
        };
        let idx = (scope_seed(op, scope_loc) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Per-shard entry counts (diagnostics; shows stripe balance).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }
}

impl MemoStore for ShardedMemoDb {
    fn config(&self) -> MemoDbConfig {
        self.config
    }

    fn encode(&self, input: &[Complex64]) -> Vec<f64> {
        self.encoder.read().encode(input)
    }

    fn query_with_key(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        origin: Provenance,
    ) -> QueryOutcome {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let outcome = self
            .shard_for(op, loc)
            .lock()
            .query_with_key_from(op, loc, input, key, origin);
        if let QueryOutcome::Hit {
            origin: entry_origin,
            ..
        } = &outcome
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if entry_origin.job != origin.job {
                self.cross_job_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn insert(
        &self,
        op: FftOpKind,
        loc: usize,
        input: &[Complex64],
        key: Vec<f64>,
        output: Vec<Complex64>,
        origin: Provenance,
    ) -> u64 {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.shard_for(op, loc)
            .lock()
            .insert_from(op, loc, input, key, output, origin)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn value_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().value_bytes()).sum()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.len(),
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            cross_job_hits: self.cross_job_hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            value_bytes: self.value_bytes(),
        }
    }

    fn comparisons_per_query(&self) -> f64 {
        let per_shard: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.lock().comparisons_per_query())
            .filter(|&c| c > 0.0)
            .collect();
        if per_shard.is_empty() {
            0.0
        } else {
            per_shard.iter().sum::<f64>() / per_shard.len() as f64
        }
    }

    fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        let mut encoder = self.encoder.write();
        let loss = encoder.train_contrastive(samples, epochs);
        encoder.quantise_weights();
        // Keep the shards' own encoders in lockstep: all store traffic goes
        // through the pre-encoded-key entry points, but MemoDatabase's
        // `encode`/`query` are public, and a shard answering with a stale
        // (untrained) encoder would silently live in a different key space.
        for shard in &self.shards {
            *shard.lock().encoder_mut() = encoder.clone();
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;
    use crate::store::LocalMemoStore;

    fn tiny_encoder_config() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn sharded(tau: f64, shards: usize) -> ShardedMemoDb {
        ShardedMemoDb::with_shards(
            MemoDbConfig {
                tau,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
            shards,
        )
    }

    fn chunk(scale: f64, phase: f64, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex64::new(scale * (5.0 * t + phase).sin(), scale * (3.0 * t).cos())
            })
            .collect()
    }

    #[test]
    fn insert_then_query_hits_across_jobs() {
        let db = sharded(0.9, 4);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        let origin_a = Provenance {
            job: 1,
            iteration: 3,
        };
        db.insert(
            FftOpKind::Fu2D,
            5,
            &input,
            key.clone(),
            chunk(2.0, 1.0, 32),
            origin_a,
        );

        // Same job, same iteration: the freshness gate must refuse.
        match db.query_with_key(FftOpKind::Fu2D, 5, &input, key.clone(), origin_a) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("same-iteration reuse must be gated"),
        }
        // Different job at iteration 0: eligible, and counted as cross-job.
        let origin_b = Provenance {
            job: 2,
            iteration: 0,
        };
        match db.query_with_key(FftOpKind::Fu2D, 5, &input, key, origin_b) {
            QueryOutcome::Hit { origin, .. } => assert_eq!(origin, origin_a),
            QueryOutcome::Miss { .. } => panic!("cross-job hit expected"),
        }
        let stats = db.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cross_job_hits, 1);
        assert_eq!(stats.inserts, 1);
        assert!(stats.cross_job_hit_rate() > 0.0);
    }

    #[test]
    fn outcome_is_independent_of_shard_count() {
        // The same insert/query trace against 1, 3 and 16 shards (and the
        // single-tenant LocalMemoStore) must produce identical hit/miss
        // sequences — the determinism contract the runtime relies on.
        let trace: Vec<(FftOpKind, usize, f64, f64)> = vec![
            (FftOpKind::Fu2D, 0, 1.0, 0.0),
            (FftOpKind::Fu2D, 1, 1.0, 0.4),
            (FftOpKind::Fu1D, 0, 0.7, 0.1),
            (FftOpKind::Fu2DAdj, 3, 1.3, 0.9),
            (FftOpKind::Fu2D, 0, 1.01, 0.01),
            (FftOpKind::Fu1D, 0, 0.72, 0.12),
        ];
        let run = |store: &dyn MemoStore| -> Vec<bool> {
            let mut outcomes = Vec::new();
            for (it, &(op, loc, scale, phase)) in trace.iter().enumerate() {
                let input = chunk(scale, phase, 256);
                let key = store.encode(&input);
                let origin = Provenance::solo(it + 1);
                match store.query_with_key(op, loc, &input, key.clone(), origin) {
                    QueryOutcome::Hit { .. } => outcomes.push(true),
                    QueryOutcome::Miss { key } => {
                        outcomes.push(false);
                        store.insert(op, loc, &input, key, chunk(2.0, 0.5, 16), origin);
                    }
                }
            }
            outcomes
        };
        let local = LocalMemoStore::new(MemoDatabase::new(
            MemoDbConfig {
                tau: 0.9,
                ..Default::default()
            },
            tiny_encoder_config(),
            1,
        ));
        let reference = run(&local);
        assert!(
            reference.iter().any(|&h| h),
            "trace never hits — test is vacuous"
        );
        for shards in [1, 3, 16] {
            assert_eq!(
                run(&sharded(0.9, shards)),
                reference,
                "{shards} shards diverged"
            );
        }
    }

    #[test]
    fn scopes_do_not_leak_across_locations() {
        let db = sharded(0.9, 8);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        db.insert(
            FftOpKind::Fu2D,
            0,
            &input,
            key.clone(),
            chunk(2.0, 1.0, 16),
            Provenance::solo(0),
        );
        match db.query_with_key(FftOpKind::Fu2D, 1, &input, key, Provenance::solo(1)) {
            QueryOutcome::Miss { .. } => {}
            QueryOutcome::Hit { .. } => panic!("per-location scoping violated"),
        }
    }

    #[test]
    fn global_scope_stays_in_one_shard() {
        let config = MemoDbConfig {
            tau: 0.9,
            per_location: false,
            ..Default::default()
        };
        let db = ShardedMemoDb::with_shards(config, tiny_encoder_config(), 2, 8);
        let input = chunk(1.0, 0.0, 256);
        let key = db.encode(&input);
        db.insert(
            FftOpKind::Fu2D,
            0,
            &input,
            key,
            chunk(2.0, 1.0, 16),
            Provenance::solo(0),
        );
        // A different location must still hit: the whole operation shares one
        // index scope, which sharding must not split.
        let key2 = db.encode(&input);
        match db.query_with_key(FftOpKind::Fu2D, 77, &input, key2, Provenance::solo(1)) {
            QueryOutcome::Hit { .. } => {}
            QueryOutcome::Miss { .. } => panic!("global scope broken by sharding"),
        }
    }

    #[test]
    fn value_accounting_sums_over_shards() {
        let db = sharded(0.9, 4);
        for loc in 0..8 {
            let input = chunk(1.0 + loc as f64, 0.0, 64);
            let key = db.encode(&input);
            db.insert(
                FftOpKind::Fu2D,
                loc,
                &input,
                key,
                chunk(1.0, 0.0, 32),
                Provenance::solo(0),
            );
        }
        assert_eq!(db.len(), 8);
        assert_eq!(db.value_bytes(), 8 * 32 * 16);
        assert_eq!(db.shard_sizes().iter().sum::<usize>(), 8);
        assert!(
            db.shard_sizes().iter().filter(|&&n| n > 0).count() > 1,
            "all in one stripe"
        );
    }
}
