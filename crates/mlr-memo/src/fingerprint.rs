//! O(n) chunk fingerprints for the norm prefilter (the "doorkeeper" in
//! front of the CNN encoder).
//!
//! The hot-path telemetry of Figure 22 showed that a memo *miss* on a
//! cold/unique chunk still pays the full CNN encode (~93 % of the hit cost)
//! before discovering there is nothing to reuse. The prefilter removes that
//! cost: each chunk is summarised by a [`ChunkFingerprint`] — a handful of
//! norm/moment features computable in one O(n) pass — and the engine keeps a
//! small per-scope history of the fingerprints of recently committed chunks.
//! A new chunk whose fingerprint is not [within the τ-derived
//! band](ChunkFingerprint::within_band) of *any* remembered fingerprint
//! cannot pass the raw similarity gate against those chunks, so the engine
//! skips encode + cache peek + ANN probe entirely and goes straight to the
//! exact FFT.
//!
//! # Soundness
//!
//! Every feature is 1-Lipschitz with respect to the chunk's complex L2
//! distance, so the ∞-distance between two fingerprints lower-bounds
//! `‖a − b‖₂`. The raw memo gate accepts only when
//! `scale_aware_similarity_c(a, b) > τ`, i.e. `cos(a, b) · ratio > τ` with
//! `ratio = min(‖a‖,‖b‖)/max(‖a‖,‖b‖)`, which implies
//! `‖a − b‖² < ‖a‖² + ‖b‖² − 2‖a‖‖b‖·(τ/ratio)`. [`within_band`] rejects
//! only when the fingerprint ∞-distance already exceeds that bound, so a
//! rejection can never discard a pair the full path would have admitted
//! (no false negatives). False *positives* merely fall through to the
//! ordinary encode/probe path.
//!
//! [`within_band`]: ChunkFingerprint::within_band

use mlr_math::Complex64;
use serde::{Deserialize, Serialize};

/// Number of scalar features in a [`ChunkFingerprint`].
pub const FINGERPRINT_FEATURES: usize = 8;

/// An O(n) summary of a complex chunk used by the norm prefilter.
///
/// Features (all 1-Lipschitz in the chunk's L2 metric):
///
/// | index | feature |
/// |-------|---------|
/// | 0     | global L2 norm `‖x‖₂` |
/// | 1–4   | L2 norms of the four disjoint contiguous quarters |
/// | 5     | `Σ Re xᵢ / √n` (signed mean, scaled) |
/// | 6     | `Σ Im xᵢ / √n` (signed mean, scaled) |
/// | 7     | `Σ (\|Re xᵢ\| + \|Im xᵢ\|) / √(2n)` (scaled real L1 norm) |
///
/// Indices 1–4 are restrictions (Lipschitz by the reverse triangle
/// inequality on a sub-vector), 5–6 by Cauchy–Schwarz, and 7 because the
/// real L1 norm of the flattened `2n`-vector satisfies
/// `‖x‖₁ ≤ √(2n) · ‖x‖₂` — and, unlike the complex-modulus L1 norm, it
/// needs no per-element square root on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkFingerprint {
    /// Number of complex elements in the summarised chunk.
    pub len: usize,
    /// The feature vector (see the type-level table).
    pub features: [f64; FINGERPRINT_FEATURES],
}

impl ChunkFingerprint {
    /// Compute the fingerprint of a chunk in a single pass over the data.
    pub fn compute(chunk: &[Complex64]) -> Self {
        let n = chunk.len();
        let mut features = [0.0f64; FINGERPRINT_FEATURES];
        let mut sum_re = 0.0f64;
        let mut sum_im = 0.0f64;
        let mut l1 = 0.0f64;
        let mut total_sq = 0.0f64;
        for (q, bounds) in quarter_bounds(n).iter().enumerate() {
            let mut quarter_sq = 0.0f64;
            for z in &chunk[bounds.0..bounds.1] {
                quarter_sq += z.norm_sqr();
                l1 += z.re.abs() + z.im.abs();
                sum_re += z.re;
                sum_im += z.im;
            }
            total_sq += quarter_sq;
            features[1 + q] = quarter_sq.sqrt();
        }
        features[0] = total_sq.sqrt();
        let inv_sqrt_n = if n == 0 { 0.0 } else { 1.0 / (n as f64).sqrt() };
        features[5] = sum_re * inv_sqrt_n;
        features[6] = sum_im * inv_sqrt_n;
        features[7] = l1 * inv_sqrt_n * std::f64::consts::FRAC_1_SQRT_2;
        ChunkFingerprint { len: n, features }
    }

    /// The chunk's global L2 norm (feature 0).
    pub fn norm(&self) -> f64 {
        self.features[0]
    }

    /// ∞-distance between two feature vectors; a lower bound on the L2
    /// distance between the underlying chunks (when their lengths match).
    pub fn feature_distance(&self, other: &Self) -> f64 {
        self.features
            .iter()
            .zip(&other.features)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Conservative test: could a chunk with fingerprint `self` pass the raw
    /// memo gate `scale_aware_similarity_c(·,·) > tau` against a chunk with
    /// fingerprint `other`?
    ///
    /// Returns `true` whenever a hit is possible (including degenerate and
    /// incomparable cases); returns `false` only when the fingerprints prove
    /// the similarity cannot exceed `tau`.
    pub fn within_band(&self, other: &Self, tau: f64) -> bool {
        if self.len != other.len {
            // Different lengths never meet in the same gate comparison;
            // admit so the full path decides.
            return true;
        }
        let na = self.norm();
        let nb = other.norm();
        if na == 0.0 && nb == 0.0 {
            // scale_aware_similarity_c defines the all-zero pair as 1.0.
            return true;
        }
        if na == 0.0 || nb == 0.0 {
            // One zero vector: similarity is exactly 0.0.
            return tau < 0.0;
        }
        let ratio = na.min(nb) / na.max(nb);
        let cos_floor = tau / ratio;
        if cos_floor >= 1.0 {
            // Even perfectly aligned vectors cannot beat tau at this
            // norm ratio.
            return false;
        }
        // A hit implies ‖a−b‖² < na² + nb² − 2·na·nb·cos_floor.
        let dist_sq_bound = na * na + nb * nb - 2.0 * na * nb * cos_floor;
        let bound = dist_sq_bound.max(0.0).sqrt();
        // Small conservative margin absorbs floating-point rounding in the
        // feature computation.
        self.feature_distance(other) <= bound + 1e-9 * (na + nb)
    }
}

/// The four disjoint contiguous quarter index ranges of a length-`n` chunk.
fn quarter_bounds(n: usize) -> [(usize, usize); 4] {
    [
        (0, n / 4),
        (n / 4, n / 2),
        (n / 2, 3 * n / 4),
        (3 * n / 4, n),
    ]
}

/// A bounded ring of recently observed fingerprints for one memo scope.
///
/// Acts as a doorkeeper: the engine notes the fingerprint of every committed
/// chunk (hit, miss, or prefiltered), and a new chunk is only sent through
/// the encode/probe path when at least one remembered fingerprint is within
/// the τ-band. Overflow of the ring can cost reuse (a chunk computes the
/// exact FFT when a match existed) but never correctness.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FingerprintTable {
    ring: Vec<ChunkFingerprint>,
    next: usize,
}

/// Capacity of each per-scope [`FingerprintTable`] ring.
pub const FINGERPRINT_HISTORY: usize = 64;

impl FingerprintTable {
    /// Record a fingerprint, evicting the oldest once the ring is full.
    pub fn note(&mut self, fp: ChunkFingerprint) {
        if self.ring.len() < FINGERPRINT_HISTORY {
            if self.ring.capacity() == 0 {
                // Size the ring once at scope creation so steady-state
                // notes never reallocate (the fig22/fig23 hit-path
                // allocation gates count every byte).
                self.ring.reserve_exact(FINGERPRINT_HISTORY);
            }
            self.ring.push(fp);
        } else {
            self.ring[self.next] = fp;
            self.next = (self.next + 1) % FINGERPRINT_HISTORY;
        }
    }

    /// Does any remembered fingerprint lie within the τ-band of `fp`?
    pub fn has_neighbor(&self, fp: &ChunkFingerprint, tau: f64) -> bool {
        self.ring.iter().any(|g| fp.within_band(g, tau))
    }

    /// Number of fingerprints currently remembered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the table holds no fingerprints yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_math::norms::{l2_distance_c, scale_aware_similarity_c};
    use mlr_math::rng::seeded;
    use rand::Rng;

    fn random_chunk(rng: &mut impl Rng, n: usize, scale: f64) -> Vec<Complex64> {
        (0..n)
            .map(|_| {
                Complex64::new(
                    (rng.gen::<f64>() - 0.5) * scale,
                    (rng.gen::<f64>() - 0.5) * scale,
                )
            })
            .collect()
    }

    #[test]
    fn features_are_lipschitz_in_chunk_distance() {
        let mut rng = seeded(0xF1);
        for _ in 0..200 {
            let n = 1 + rng.gen_range(0..96usize);
            let a = random_chunk(&mut rng, n, 2.0);
            // Perturbations from tiny to large.
            let eps = 10f64.powi(rng.gen_range(-6..2));
            let b: Vec<Complex64> = a
                .iter()
                .map(|z| {
                    Complex64::new(
                        z.re + (rng.gen::<f64>() - 0.5) * eps,
                        z.im + (rng.gen::<f64>() - 0.5) * eps,
                    )
                })
                .collect();
            let fa = ChunkFingerprint::compute(&a);
            let fb = ChunkFingerprint::compute(&b);
            let dist = l2_distance_c(&a, &b);
            assert!(
                fa.feature_distance(&fb) <= dist * (1.0 + 1e-9) + 1e-12,
                "feature distance {} exceeds chunk distance {}",
                fa.feature_distance(&fb),
                dist
            );
        }
    }

    #[test]
    fn within_band_never_rejects_a_gate_hit() {
        // The core no-false-negative property: for any pair that passes the
        // raw gate at tau, within_band must admit.
        let mut rng = seeded(0xF2);
        let mut admitted_hits = 0usize;
        for _ in 0..400 {
            let n = 1 + rng.gen_range(0..64usize);
            let a = random_chunk(&mut rng, n, 4.0);
            // Mix of near-duplicates, rescales, and unrelated chunks.
            let b: Vec<Complex64> = match rng.gen_range(0..4) {
                0 => a
                    .iter()
                    .map(|z| {
                        Complex64::new(
                            z.re + (rng.gen::<f64>() - 0.5) * 0.01,
                            z.im + (rng.gen::<f64>() - 0.5) * 0.01,
                        )
                    })
                    .collect(),
                1 => {
                    let s = 0.5 + rng.gen::<f64>();
                    a.iter().map(|z| z.scale(s)).collect()
                }
                2 => a.clone(),
                _ => random_chunk(&mut rng, n, 4.0),
            };
            for tau in [0.5, 0.8, 0.92, 0.99] {
                let sim = scale_aware_similarity_c(&a, &b);
                let fa = ChunkFingerprint::compute(&a);
                let fb = ChunkFingerprint::compute(&b);
                if sim > tau {
                    assert!(
                        fa.within_band(&fb, tau),
                        "prefilter rejected a gate hit: sim={sim} tau={tau} n={n}"
                    );
                    admitted_hits += 1;
                }
            }
        }
        assert!(admitted_hits > 100, "workload produced too few gate hits");
    }

    #[test]
    fn within_band_rejects_clear_mismatches() {
        // The filter must have teeth: disjoint norms outside the band are
        // rejected without touching the encoder.
        let a = ChunkFingerprint::compute(&[Complex64::new(1.0, 0.0); 16]);
        let b = ChunkFingerprint::compute(&[Complex64::new(100.0, 0.0); 16]);
        assert!(!a.within_band(&b, 0.92));
        // Norm ratio alone kills this pair: 1/100 < 0.92.
        let c = ChunkFingerprint::compute(&[Complex64::new(-1.0, 0.0); 16]);
        // Same norms, opposite direction: cos = -1, feature distance large.
        assert!(!a.within_band(&c, 0.92));
    }

    #[test]
    fn degenerate_cases_are_conservative() {
        let zero = ChunkFingerprint::compute(&[Complex64::ZERO; 8]);
        let one = ChunkFingerprint::compute(&[Complex64::new(1.0, 0.0); 8]);
        let other_len = ChunkFingerprint::compute(&[Complex64::new(1.0, 0.0); 4]);
        // zero/zero has similarity 1.0 — always admitted.
        assert!(zero.within_band(&zero, 0.99));
        // zero/non-zero has similarity 0.0.
        assert!(!zero.within_band(&one, 0.5));
        assert!(zero.within_band(&one, -0.1));
        // Length mismatch: incomparable, admit.
        assert!(one.within_band(&other_len, 0.99));
        // Empty chunk is well-defined.
        let empty = ChunkFingerprint::compute(&[]);
        assert_eq!(empty.len, 0);
        assert_eq!(empty.norm(), 0.0);
    }

    #[test]
    fn table_ring_evicts_oldest() {
        let mut table = FingerprintTable::default();
        assert!(table.is_empty());
        let mk = |v: f64| ChunkFingerprint::compute(&[Complex64::new(v, 0.0); 4]);
        for i in 0..FINGERPRINT_HISTORY + 8 {
            table.note(mk(1.0 + i as f64 * 1e-4));
        }
        assert_eq!(table.len(), FINGERPRINT_HISTORY);
        // Oldest entries (i < 8) were evicted; a probe equal to entry 0
        // still matches later near-duplicates, but an exact-norm outlier
        // matching only evicted slots must not.
        assert!(table.has_neighbor(&mk(1.0), 0.92));
        assert!(!table.has_neighbor(&mk(500.0), 0.92));
    }
}
