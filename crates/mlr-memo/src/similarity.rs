//! Chunk-similarity tracking across ADMM iterations.
//!
//! Figure 4 of the paper motivates memoization: at a fixed chunk location,
//! the FFT input of the current iteration is often similar (cosine
//! similarity above τ) to inputs seen in *previous* iterations, and the
//! number of such similar prior chunks grows as ADMM converges. The tracker
//! records the chunk at each location every iteration and reports exactly
//! that count.

use mlr_math::norms::cosine_similarity_c;
use mlr_math::Complex64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Record of similarity counts for one (location, iteration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityPoint {
    /// Chunk location.
    pub location: usize,
    /// ADMM iteration index.
    pub iteration: usize,
    /// Number of prior iterations whose chunk at this location was similar
    /// (cosine similarity > τ).
    pub similar_prior_chunks: usize,
}

/// Tracks per-location chunk history and counts similar prior chunks.
#[derive(Debug, Default)]
pub struct SimilarityTracker {
    tau: f64,
    history: HashMap<usize, Vec<Vec<Complex64>>>,
    points: Vec<SimilarityPoint>,
}

impl SimilarityTracker {
    /// Creates a tracker with similarity threshold `tau` (the paper uses
    /// τ = 0.93 for Figure 4).
    pub fn new(tau: f64) -> Self {
        Self {
            tau,
            history: HashMap::new(),
            points: Vec::new(),
        }
    }

    /// The similarity threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Records the chunk observed at `location` in `iteration` and returns
    /// the number of similar chunks in prior iterations at that location.
    pub fn record(&mut self, location: usize, iteration: usize, chunk: &[Complex64]) -> usize {
        let history = self.history.entry(location).or_default();
        let similar = history
            .iter()
            .filter(|prev| cosine_similarity_c(chunk, prev) > self.tau)
            .count();
        history.push(chunk.to_vec());
        self.points.push(SimilarityPoint {
            location,
            iteration,
            similar_prior_chunks: similar,
        });
        similar
    }

    /// All recorded points, in recording order.
    pub fn points(&self) -> &[SimilarityPoint] {
        &self.points
    }

    /// The similarity series for one location: `(iteration, count)` pairs.
    pub fn series(&self, location: usize) -> Vec<(usize, usize)> {
        self.points
            .iter()
            .filter(|p| p.location == location)
            .map(|p| (p.iteration, p.similar_prior_chunks))
            .collect()
    }

    /// Fraction of recorded iterations (excluding each location's first) in
    /// which at least one similar prior chunk existed — the paper reports
    /// ~70 %.
    pub fn fraction_with_similar(&self) -> f64 {
        let eligible: Vec<&SimilarityPoint> =
            self.points.iter().filter(|p| p.iteration > 0).collect();
        if eligible.is_empty() {
            return 0.0;
        }
        eligible
            .iter()
            .filter(|p| p.similar_prior_chunks > 0)
            .count() as f64
            / eligible.len() as f64
    }

    /// Number of distinct locations tracked.
    pub fn locations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(scale: f64, phase: f64) -> Vec<Complex64> {
        (0..64)
            .map(|i| {
                let t = i as f64 / 64.0;
                Complex64::new(scale * (4.0 * t + phase).sin(), scale * t)
            })
            .collect()
    }

    #[test]
    fn converging_sequence_accumulates_similar_chunks() {
        let mut tracker = SimilarityTracker::new(0.93);
        // Simulate convergence: the chunk changes less and less.
        let mut counts = Vec::new();
        for it in 0..10 {
            let scale = 1.0 + 1.0 / (1.0 + it as f64);
            let c = chunk(scale, 0.02 / (1.0 + it as f64));
            counts.push(tracker.record(7, it, &c));
        }
        assert_eq!(counts[0], 0);
        // Later iterations see more similar prior chunks than early ones.
        assert!(counts[9] > counts[1], "counts {counts:?}");
        assert_eq!(tracker.locations(), 1);
        assert_eq!(tracker.series(7).len(), 10);
        assert!(tracker.fraction_with_similar() > 0.5);
    }

    #[test]
    fn dissimilar_sequence_never_matches() {
        let mut tracker = SimilarityTracker::new(0.99);
        for it in 0..5 {
            // Wildly different phases each iteration.
            let c = chunk(1.0, it as f64 * 1.7);
            let similar = tracker.record(0, it, &c);
            assert_eq!(similar, 0, "iteration {it}");
        }
        assert_eq!(tracker.fraction_with_similar(), 0.0);
    }

    #[test]
    fn locations_are_independent() {
        let mut tracker = SimilarityTracker::new(0.9);
        tracker.record(0, 0, &chunk(1.0, 0.0));
        let similar_other_loc = tracker.record(1, 1, &chunk(1.0, 0.0));
        assert_eq!(similar_other_loc, 0);
        let similar_same_loc = tracker.record(0, 1, &chunk(1.0, 0.0));
        assert_eq!(similar_same_loc, 1);
        assert_eq!(tracker.tau(), 0.9);
        assert_eq!(tracker.points().len(), 3);
    }
}
