//! Key coalescing.
//!
//! Each memoization query ships an encoded key of well under 1 KB to the
//! memory node. Sending them one by one wastes the interconnect (low payload
//! utilisation, per-message RDMA setup). The coalescer buffers keys from
//! *different chunks* — keys within one chunk have data dependencies and must
//! not be delayed (§4.3.3) — and flushes a batch once the accumulated payload
//! reaches the saturating size (4 KB on Slingshot-11), enabling batched
//! lookups on the memory node.

use mlr_lamino::FftOpKind;
use serde::{Deserialize, Serialize};

/// A key queued for transmission. Only the key's *shape* is buffered — the
/// coalescer exists for traffic accounting and batching decisions, so
/// retaining the dimension (and with it the wire size) is enough. Not
/// cloning the key itself keeps the submit path allocation-free, which
/// matters on the memo-hit hot path where `submit` runs once per chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingKey {
    /// Which FFT operation issued the query (so deferred flushes can be
    /// accounted against the right operation's traffic counters).
    pub op: FftOpKind,
    /// Which chunk location issued the query.
    pub location: usize,
    /// Dimension of the encoded key (fixed per encoder).
    pub key_dim: usize,
}

impl PendingKey {
    /// Size in bytes of this key on the wire.
    pub fn wire_bytes(&self) -> u64 {
        (self.key_dim * 8) as u64
    }
}

/// Statistics of coalescing behaviour (feeds Figure 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoalesceStats {
    /// Keys submitted.
    pub keys: u64,
    /// Messages (batches) actually sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

impl CoalesceStats {
    /// Mean payload size per message.
    pub fn mean_payload(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }

    /// Mean number of keys per message (batch size seen by the index DB).
    pub fn mean_batch(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.keys as f64 / self.messages as f64
        }
    }
}

/// Buffers keys until the payload reaches the target size.
#[derive(Debug)]
pub struct KeyCoalescer {
    target_payload_bytes: usize,
    enabled: bool,
    pending: Vec<PendingKey>,
    pending_bytes: usize,
    stats: CoalesceStats,
}

impl KeyCoalescer {
    /// Creates a coalescer flushing at `target_payload_bytes` (the paper uses
    /// 4 KB). When `enabled` is `false` every key is flushed immediately,
    /// which is the baseline of Figure 11.
    pub fn new(target_payload_bytes: usize, enabled: bool) -> Self {
        Self {
            target_payload_bytes: target_payload_bytes.max(1),
            enabled,
            pending: Vec::new(),
            pending_bytes: 0,
            stats: CoalesceStats::default(),
        }
    }

    /// Size in bytes of one key on the wire.
    fn key_bytes(key: &[f64]) -> usize {
        key.len() * 8
    }

    /// Submits a key (borrowed — the coalescer never clones it). Returns
    /// the batch to transmit when the payload target is reached (or
    /// immediately when coalescing is disabled), otherwise `None`.
    pub fn submit(
        &mut self,
        op: FftOpKind,
        location: usize,
        key: &[f64],
    ) -> Option<Vec<PendingKey>> {
        self.stats.keys += 1;
        let bytes = Self::key_bytes(key);
        self.pending.push(PendingKey {
            op,
            location,
            key_dim: key.len(),
        });
        self.pending_bytes += bytes;
        if !self.enabled || self.pending_bytes >= self.target_payload_bytes {
            Some(self.flush())
        } else {
            None
        }
    }

    /// Flushes whatever is pending (end of an iteration, or a dependency that
    /// cannot wait). Returns an empty batch when nothing is pending.
    pub fn flush(&mut self) -> Vec<PendingKey> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.stats.messages += 1;
        self.stats.bytes += self.pending_bytes as u64;
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }

    /// Number of keys waiting in the buffer.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoalesceStats {
        self.stats
    }

    /// Whether coalescing is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dim: usize) -> Vec<f64> {
        vec![1.0; dim]
    }

    #[test]
    fn disabled_coalescer_flushes_every_key() {
        let mut c = KeyCoalescer::new(4096, false);
        for loc in 0..5 {
            let batch = c
                .submit(FftOpKind::Fu2D, loc, &key(60))
                .expect("immediate flush");
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].location, loc);
        }
        let s = c.stats();
        assert_eq!(s.keys, 5);
        assert_eq!(s.messages, 5);
        assert!((s.mean_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enabled_coalescer_batches_to_payload_target() {
        // 60-d keys are 480 bytes; 4096/480 → flush on the 9th key.
        let mut c = KeyCoalescer::new(4096, true);
        let mut flushed = None;
        for loc in 0..9 {
            flushed = c.submit(FftOpKind::Fu2D, loc, &key(60));
            if loc < 8 {
                assert!(flushed.is_none(), "flushed too early at {loc}");
            }
        }
        let batch = flushed.expect("flush at payload target");
        assert_eq!(batch.len(), 9);
        let s = c.stats();
        assert_eq!(s.messages, 1);
        assert!(s.mean_payload() >= 4096.0);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn manual_flush_drains_pending() {
        let mut c = KeyCoalescer::new(1 << 20, true);
        assert!(c.submit(FftOpKind::Fu1D, 0, &key(8)).is_none());
        assert!(c.submit(FftOpKind::Fu1D, 1, &key(8)).is_none());
        assert_eq!(c.pending(), 2);
        let batch = c.flush();
        assert_eq!(batch.len(), 2);
        assert!(c.flush().is_empty());
        assert_eq!(c.stats().messages, 1);
    }

    #[test]
    fn mean_payload_zero_when_no_messages() {
        let c = KeyCoalescer::new(4096, true);
        assert_eq!(c.stats().mean_payload(), 0.0);
        assert!(c.enabled());
    }
}
