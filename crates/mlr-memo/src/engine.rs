//! The memoized FFT executor.
//!
//! [`MemoizedExecutor`] implements `mlr_lamino::FftExecutor`, so the ADMM
//! solver can run unmodified while every unequally-spaced FFT invocation goes
//! through the memoization protocol of Figure 6:
//!
//! 1. encode the input chunk into a key (CNN encoder, on the CPU);
//! 2. check the compute-node memoization cache (private per chunk location);
//! 3. on a cache miss, query the memoization database on the (simulated)
//!    memory node — key coalescing batches these queries;
//! 4. on a database hit whose similarity clears `τ`, reuse the stored value;
//! 5. otherwise compute the FFT exactly and insert the result asynchronously.
//!
//! Uniform-FFT operations (`F_2D`, `F*_2D`) are never memoized — after the
//! operation cancellation of Algorithm 2 they do not appear at all.

use crate::cache::{CacheKind, MemoCache};
use crate::coalesce::KeyCoalescer;
use crate::db::{MemoDatabase, MemoDbConfig, QueryOutcome};
use crate::encoder::EncoderConfig;
use crate::eviction::{recompute_cost_estimate, CapacityBudget, EvictionPolicyKind};
use crate::similarity::SimilarityTracker;
use crate::stats::{MemoCase, MemoStats};
use crate::store::{JobId, LocalMemoStore, MemoStore, Provenance};
use mlr_lamino::{FftExecutor, FftOpKind};
use mlr_math::Complex64;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoConfig {
    /// Similarity threshold `τ` (the paper's default is 0.92).
    pub tau: f64,
    /// Master switch: when `false` every invocation is computed exactly
    /// (useful for producing the reference reconstruction).
    pub enabled: bool,
    /// Use the compute-node memoization cache.
    pub use_cache: bool,
    /// Cache organisation (private per location vs. global).
    pub cache_kind: CacheKind,
    /// Coalesce query keys into ≥4 KB payloads.
    pub coalesce_keys: bool,
    /// Payload size at which coalesced batches are flushed.
    pub coalesce_payload_bytes: usize,
    /// Track per-location chunk similarity across iterations (Figure 4).
    pub track_similarity: bool,
    /// Memoize only the unequally-spaced operations (the paper's choice
    /// after operation cancellation). When `false`, all six operations are
    /// memoized.
    pub usfft_only: bool,
    /// Number of initial ADMM iterations during which memoization is not
    /// consulted: early iterates change too quickly for reuse to be safe, and
    /// the paper's own characterisation (Figure 4) shows similar chunks only
    /// start appearing after the first iterations.
    pub warmup_iterations: usize,
    /// Capacity caps for the memoization database (unbounded by default).
    /// When the executor builds its own private store, the budget flows into
    /// the database configuration; shared stores built by the runtime carry
    /// their own copy of the same caps.
    pub budget: CapacityBudget,
    /// Which eviction policy enforces the budget.
    pub eviction: EvictionPolicyKind,
}

impl Default for MemoConfig {
    fn default() -> Self {
        Self {
            tau: 0.92,
            enabled: true,
            use_cache: true,
            cache_kind: CacheKind::Private,
            coalesce_keys: true,
            coalesce_payload_bytes: 4096,
            track_similarity: false,
            usfft_only: true,
            warmup_iterations: 2,
            budget: CapacityBudget::unbounded(),
            eviction: EvictionPolicyKind::CostAware,
        }
    }
}

/// Per-executor mutable state behind one lock: the compute-node cache, key
/// coalescer and statistics are private to one job, and the protocol is
/// sequential per chunk within a job, so a single mutex keeps the
/// implementation simple without measurable contention. The memoization
/// database itself lives *outside* this lock, behind the [`MemoStore`] seam,
/// so several executors can share one store concurrently.
struct EngineState {
    cache: MemoCache,
    coalescer: KeyCoalescer,
    stats: MemoStats,
    similarity: SimilarityTracker,
    iteration: usize,
}

/// The memoized FFT executor.
pub struct MemoizedExecutor {
    config: MemoConfig,
    /// The job this executor runs on behalf of (0 for standalone use);
    /// stamped into every insert so shared stores can gate intra-job reuse
    /// and account cross-job hits.
    job: JobId,
    store: Arc<dyn MemoStore>,
    state: Mutex<EngineState>,
}

impl MemoizedExecutor {
    /// Creates an executor with the given configuration, database
    /// configuration, and encoder, backed by a private single-tenant store.
    pub fn new(config: MemoConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        let db_config = MemoDbConfig {
            tau: config.tau,
            budget: config.budget,
            eviction: config.eviction,
            ..Default::default()
        };
        let db = MemoDatabase::new(db_config, encoder_config, seed);
        Self::with_database(config, db)
    }

    /// Creates an executor around an existing database (e.g. with a
    /// pre-trained encoder).
    pub fn with_database(config: MemoConfig, db: MemoDatabase) -> Self {
        Self::with_store(config, Arc::new(LocalMemoStore::new(db)), 0)
    }

    /// Creates an executor on top of a (possibly shared) memo store, on
    /// behalf of job `job`. This is the multi-tenant entry point used by the
    /// runtime: several executors built over one `Arc<ShardedMemoDb>` reuse
    /// each other's entries.
    pub fn with_store(config: MemoConfig, store: Arc<dyn MemoStore>, job: JobId) -> Self {
        let cache_capacity = 4096;
        Self {
            config,
            job,
            store,
            state: Mutex::new(EngineState {
                cache: MemoCache::new(config.cache_kind, cache_capacity),
                coalescer: KeyCoalescer::new(config.coalesce_payload_bytes, config.coalesce_keys),
                stats: MemoStats::new(),
                similarity: SimilarityTracker::new(config.tau),
                iteration: 0,
            }),
        }
    }

    /// The executor configuration.
    pub fn config(&self) -> &MemoConfig {
        &self.config
    }

    /// The job this executor is attributed to.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The memo store backing this executor.
    pub fn store(&self) -> &Arc<dyn MemoStore> {
        &self.store
    }

    /// Marks the start of a new ADMM (outer) iteration; used by the
    /// similarity tracker and by reports. Also advances the store's epoch
    /// (the job-iteration clock TTL eviction ages by): each tenant ticks
    /// the shared store once per outer iteration.
    pub fn begin_iteration(&self, iteration: usize) {
        self.state.lock().iteration = iteration;
        self.store.advance_epoch();
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> MemoStats {
        self.state.lock().stats.clone()
    }

    /// Snapshot of the compute-node cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.state.lock().cache.stats()
    }

    /// Snapshot of the key-coalescing statistics.
    pub fn coalesce_stats(&self) -> crate::coalesce::CoalesceStats {
        self.state.lock().coalescer.stats()
    }

    /// Number of entries in the memoization database.
    pub fn db_len(&self) -> usize {
        self.store.len()
    }

    /// Resident bytes of the value database.
    pub fn db_value_bytes(&self) -> u64 {
        self.store.value_bytes()
    }

    /// Chunk-similarity series for a location (only populated when
    /// `track_similarity` is on).
    pub fn similarity_series(&self, location: usize) -> Vec<(usize, usize)> {
        self.state.lock().similarity.series(location)
    }

    /// Fraction of iterations in which a similar prior chunk existed.
    pub fn similarity_fraction(&self) -> f64 {
        self.state.lock().similarity.fraction_with_similar()
    }

    /// Trains the store's CNN encoder on the provided sample chunks using
    /// the contrastive objective.
    pub fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        self.store.train_encoder(samples, epochs)
    }

    fn should_memoize(&self, kind: FftOpKind) -> bool {
        self.config.enabled && (!self.config.usfft_only || kind.is_unequally_spaced())
    }
}

impl FftExecutor for MemoizedExecutor {
    fn begin_iteration(&self, iteration: usize) {
        MemoizedExecutor::begin_iteration(self, iteration);
    }

    fn execute(
        &self,
        kind: FftOpKind,
        loc: usize,
        input: &[Complex64],
        compute: &dyn Fn(&[Complex64]) -> Vec<Complex64>,
    ) -> Vec<Complex64> {
        let in_warmup = self.state.lock().iteration < self.config.warmup_iterations;
        if !self.should_memoize(kind) || in_warmup {
            let start = Instant::now();
            let out = compute(input);
            let mut state = self.state.lock();
            state.stats.record(kind, MemoCase::Computed);
            state
                .stats
                .add_compute_time(kind, start.elapsed().as_secs_f64());
            return out;
        }

        let mut state = self.state.lock();
        let iteration = state.iteration;
        if self.config.track_similarity {
            state.similarity.record(loc, iteration, input);
        }

        // 1. Encode the key once (through the store, so every tenant of a
        //    shared store uses the same encoder).
        let key = self.store.encode(input);
        state.stats.add_encoded_key(kind);

        // 2. Compute-node cache.
        if self.config.use_cache {
            if let Some(value) = state
                .cache
                .lookup(kind, loc, &key, self.config.tau, iteration)
            {
                state.stats.record(kind, MemoCase::CacheHit);
                return value.as_ref().clone();
            }
        }

        // 3. Key coalescing: the query key travels to the memory node as part
        //    of a batch. The batch boundary only affects *when* bytes cross
        //    the wire (accounted in the stats), not the query result.
        let key_bytes = (key.len() * 8) as u64;
        if let Some(batch) = state.coalescer.submit(loc, key.clone()) {
            let batch_bytes: u64 = batch.iter().map(|k| (k.key.len() * 8) as u64).sum();
            state.stats.add_remote_bytes(kind, batch_bytes);
        } else {
            // Buffered; bytes accounted when the batch flushes.
            let _ = key_bytes;
        }

        // 4. Query the memoization database.
        let origin = Provenance {
            job: self.job,
            iteration,
        };
        match self.store.query_with_key(kind, loc, input, key, origin) {
            QueryOutcome::Hit { value, key, .. } => {
                state.stats.record(kind, MemoCase::DbHit);
                state
                    .stats
                    .add_remote_bytes(kind, (value.len() * 16) as u64);
                if self.config.use_cache {
                    state.cache.insert(kind, loc, key, value.clone(), iteration);
                }
                value.as_ref().clone()
            }
            QueryOutcome::Miss { key } => {
                // 5. Compute exactly and insert (the insertion itself is
                //    overlapped with the next chunk's compute in the real
                //    system; here only its bytes are accounted).
                drop(state);
                let start = Instant::now();
                let out = compute(input);
                let elapsed = start.elapsed().as_secs_f64();
                let mut state = self.state.lock();
                state.stats.record(kind, MemoCase::FailedMemo);
                state.stats.add_compute_time(kind, elapsed);
                state.stats.add_remote_bytes(kind, (out.len() * 16) as u64);
                let origin = Provenance {
                    job: self.job,
                    iteration: state.iteration,
                };
                drop(state);
                // Price the entry with the deterministic analytic cost model
                // (the OpStats wall-clock timings corroborate its per-op
                // ratios but would make eviction irreproducible).
                let cost = recompute_cost_estimate(kind, input.len());
                self.store
                    .insert(kind, loc, input, key, out.clone(), origin, cost);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_lamino::DirectExecutor;
    use mlr_math::rng::seeded;
    use rand::Rng;

    /// Default config with warm-up disabled so the protocol is exercised
    /// from the first call.
    fn test_config() -> MemoConfig {
        MemoConfig {
            warmup_iterations: 0,
            ..Default::default()
        }
    }

    fn tiny_encoder() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn chunk(seed: u64, n: usize) -> Vec<Complex64> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// A deterministic stand-in FFT: negate and swap components.
    fn fake_fft(input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|z| Complex64::new(-z.im, z.re)).collect()
    }

    #[test]
    fn identical_inputs_hit_after_first_miss() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 1);
        let input = chunk(1, 128);
        exec.begin_iteration(0);
        let first = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
        exec.begin_iteration(1);
        let second = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
        assert_eq!(first, second);
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.failed_memo, 1);
        assert_eq!(stats.db_hits + stats.cache_hits, 1);
        assert_eq!(exec.db_len(), 1);
    }

    #[test]
    fn cache_hit_comes_from_compute_node_cache() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 2);
        let input = chunk(2, 128);
        exec.begin_iteration(0);
        let _ = exec.execute(FftOpKind::Fu1D, 5, &input, &fake_fft);
        // Later iterations with an identical chunk: the first goes to the DB
        // (and fills the cache), subsequent ones hit the cache.
        exec.begin_iteration(1);
        let _ = exec.execute(FftOpKind::Fu1D, 5, &input, &fake_fft);
        exec.begin_iteration(2);
        let _ = exec.execute(FftOpKind::Fu1D, 5, &input, &fake_fft);
        let stats = exec.stats().op(FftOpKind::Fu1D);
        assert_eq!(stats.failed_memo, 1);
        assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    }

    #[test]
    fn disabled_memoization_always_computes() {
        let config = MemoConfig {
            enabled: false,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 3);
        let input = chunk(3, 64);
        for _ in 0..3 {
            let out = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
            assert_eq!(out, fake_fft(&input));
        }
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.computed, 3);
        assert_eq!(stats.failed_memo + stats.db_hits + stats.cache_hits, 0);
        assert_eq!(exec.db_len(), 0);
    }

    #[test]
    fn uniform_fft_ops_are_not_memoized_by_default() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 4);
        let input = chunk(4, 64);
        let _ = exec.execute(FftOpKind::F2D, 0, &input, &fake_fft);
        let _ = exec.execute(FftOpKind::F2D, 0, &input, &fake_fft);
        let stats = exec.stats().op(FftOpKind::F2D);
        assert_eq!(stats.computed, 2);
        assert_eq!(exec.db_len(), 0);
    }

    #[test]
    fn results_match_direct_executor_when_inputs_differ() {
        // With completely different inputs every call, memoization never
        // hits, so outputs must equal the exact computation.
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 5);
        let direct = DirectExecutor;
        for i in 0..5 {
            let input = chunk(100 + i, 96);
            let memo_out = exec.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            let direct_out = direct.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            assert_eq!(memo_out, direct_out);
        }
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.failed_memo, 5);
        assert_eq!(stats.db_hits + stats.cache_hits, 0);
    }

    #[test]
    fn similar_inputs_reuse_stored_value_approximately() {
        let config = MemoConfig {
            tau: 0.90,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 6);
        let base = chunk(6, 256);
        exec.begin_iteration(0);
        let exact_base = exec.execute(FftOpKind::Fu2D, 0, &base, &fake_fft);
        // Slightly perturbed input in the next iteration: similar enough to
        // reuse.
        let perturbed: Vec<Complex64> = base
            .iter()
            .map(|z| *z + Complex64::new(0.01, -0.01))
            .collect();
        exec.begin_iteration(1);
        let reused = exec.execute(FftOpKind::Fu2D, 0, &perturbed, &fake_fft);
        // The reused value is the *stored* result, i.e. an approximation of
        // the exact result for the perturbed input.
        assert_eq!(reused, exact_base);
        let exact_perturbed = fake_fft(&perturbed);
        let err = mlr_math::norms::l2_distance_c(&reused, &exact_perturbed)
            / mlr_math::norms::l2_norm_c(&exact_perturbed);
        assert!(err < 0.05, "approximation error too large: {err}");
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.db_hits + stats.cache_hits, 1);
    }

    #[test]
    fn similarity_tracking_collects_series() {
        let config = MemoConfig {
            track_similarity: true,
            tau: 0.9,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 7);
        let base = chunk(7, 64);
        for it in 0..4 {
            exec.begin_iteration(it);
            let scaled: Vec<Complex64> = base
                .iter()
                .map(|z| z.scale(1.0 + 0.001 * it as f64))
                .collect();
            let _ = exec.execute(FftOpKind::Fu2D, 2, &scaled, &fake_fft);
        }
        let series = exec.similarity_series(2);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].1, 0);
        assert!(series[3].1 >= 1);
        assert!(exec.similarity_fraction() > 0.0);
    }

    #[test]
    fn coalesce_stats_accumulate() {
        let config = MemoConfig {
            coalesce_keys: true,
            coalesce_payload_bytes: 64,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 8);
        for i in 0..6 {
            let _ = exec.execute(FftOpKind::Fu2D, i, &chunk(200 + i as u64, 64), &fake_fft);
        }
        let cs = exec.coalesce_stats();
        assert_eq!(cs.keys, 6);
        assert!(cs.messages >= 1);
        assert!(exec.db_value_bytes() > 0);
        assert!(exec.cache_stats().lookups >= 6);
    }
}
