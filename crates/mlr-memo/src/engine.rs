//! The memoized FFT executor.
//!
//! [`MemoizedExecutor`] implements `mlr_lamino::FftExecutor`, so the ADMM
//! solver can run unmodified while every unequally-spaced FFT invocation goes
//! through the memoization protocol of Figure 6:
//!
//! 1. encode the input chunk into a key (CNN encoder, on the CPU);
//! 2. check the compute-node memoization cache (private per chunk location);
//! 3. on a cache miss, query the memoization database on the (simulated)
//!    memory node — key coalescing batches these queries;
//! 4. on a database hit whose similarity clears `τ`, reuse the stored value;
//! 5. otherwise compute the FFT exactly and insert the result asynchronously.
//!
//! Uniform-FFT operations (`F_2D`, `F*_2D`) are never memoized — after the
//! operation cancellation of Algorithm 2 they do not appear at all.

use crate::cache::{CacheKind, MemoCache};
use crate::coalesce::{KeyCoalescer, PendingKey};
use crate::db::{MemoDatabase, MemoDbConfig, QueryOutcome};
use crate::encoder::EncoderConfig;
use crate::eviction::{recompute_cost_estimate, CapacityBudget, EvictionPolicyKind};
use crate::fingerprint::ChunkFingerprint;
use crate::parallel::{ConcurrencyGovernor, ParallelStats};
use crate::similarity::SimilarityTracker;
use crate::stats::{MemoCase, MemoStats, OpStatsTable};
use crate::store::{JobId, LocalMemoStore, MemoStore, ProbeOutcome, Provenance};
use mlr_lamino::{ChunkRequest, FftExecutor, FftOpKind};
use mlr_math::Complex64;
use mlr_telemetry::{CounterId, CounterTable, SpanKind, StageId, StageTable, Telemetry};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Starts a stage clock only when telemetry is enabled, so disabled mode
/// performs zero `Instant::now()` calls per chunk.
#[inline]
fn stage_clock(enabled: bool) -> Option<Instant> {
    if enabled {
        Some(Instant::now()) // mlr-check: allow(wall-clock) — decoration only: stage clocks feed telemetry timing
    } else {
        None
    }
}

/// Elapsed nanoseconds of a stage clock (0 when telemetry is disabled).
#[inline]
fn stage_ns(start: Option<Instant>) -> u64 {
    start.map_or(0, |s| s.elapsed().as_nanos() as u64)
}

/// Deterministic yield storm for the schedule-perturbation checker: a
/// splitmix-style hash of `(seed, block, phase)` picks 0–96 scheduler
/// yields, so different seeds force different relative block start
/// (`phase = 0`) and completion (`phase = 1`) orderings without touching
/// what any block computes.
fn stagger(seed: u64, block: u64, phase: u64) {
    let mut h = seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ phase.wrapping_shl(32);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    for _ in 0..(h % 97) {
        std::thread::yield_now();
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoConfig {
    /// Similarity threshold `τ` (the paper's default is 0.92).
    pub tau: f64,
    /// Master switch: when `false` every invocation is computed exactly
    /// (useful for producing the reference reconstruction).
    pub enabled: bool,
    /// Use the compute-node memoization cache.
    pub use_cache: bool,
    /// Cache organisation (private per location vs. global).
    pub cache_kind: CacheKind,
    /// Coalesce query keys into ≥4 KB payloads.
    pub coalesce_keys: bool,
    /// Payload size at which coalesced batches are flushed.
    pub coalesce_payload_bytes: usize,
    /// Track per-location chunk similarity across iterations (Figure 4).
    pub track_similarity: bool,
    /// Memoize only the unequally-spaced operations (the paper's choice
    /// after operation cancellation). When `false`, all six operations are
    /// memoized.
    pub usfft_only: bool,
    /// Number of initial ADMM iterations during which memoization is not
    /// consulted: early iterates change too quickly for reuse to be safe, and
    /// the paper's own characterisation (Figure 4) shows similar chunks only
    /// start appearing after the first iterations.
    pub warmup_iterations: usize,
    /// Capacity caps for the memoization database (unbounded by default).
    /// When the executor builds its own private store, the budget flows into
    /// the database configuration; shared stores built by the runtime carry
    /// their own copy of the same caps.
    pub budget: CapacityBudget,
    /// Which eviction policy enforces the budget.
    pub eviction: EvictionPolicyKind,
    /// Norm prefilter in front of the CNN encoder: chunks whose O(n)
    /// fingerprint has no τ-band neighbor in the scope's recent history skip
    /// encode, cache peek and database probe entirely and go straight to the
    /// exact FFT. Only active when the backing store gates hits on raw
    /// inputs (`MemoDbConfig::gate_on_raw`, the default) — the fingerprint
    /// band bounds *raw* similarity, not key similarity.
    pub prefilter: bool,
}

impl Default for MemoConfig {
    fn default() -> Self {
        Self {
            tau: 0.92,
            enabled: true,
            use_cache: true,
            cache_kind: CacheKind::Private,
            coalesce_keys: true,
            coalesce_payload_bytes: 4096,
            track_similarity: false,
            usfft_only: true,
            warmup_iterations: 2,
            budget: CapacityBudget::unbounded(),
            eviction: EvictionPolicyKind::CostAware,
            prefilter: true,
        }
    }
}

/// Per-executor mutable state behind one lock: the key coalescer,
/// statistics and similarity tracker are private to one job and only
/// touched during the *ordered commit* phase (or the sequential
/// single-chunk path), so a single mutex suffices without ever serializing
/// chunk compute. The compute-node cache lives outside this lock, behind a
/// read-write lock, because the parallel phase peeks it concurrently. The
/// memoization database itself lives behind the [`MemoStore`] seam, so
/// several executors can share one store concurrently.
struct EngineState {
    coalescer: KeyCoalescer,
    /// Fixed-arity `Copy` counter table: `stats()` snapshots it with one
    /// memcpy under the lock and converts to the reporting shape outside.
    stats: OpStatsTable,
    similarity: SimilarityTracker,
    iteration: usize,
    parallel: ParallelStats,
}

/// Per-chunk result of the parallel phase, carried into the ordered commit.
enum ProbeCase {
    /// The compute-node cache held a similar-enough value (a shared buffer,
    /// never a copy — the commit memcpys it straight into the output slice).
    CacheHit { value: Arc<[Complex64]> },
    /// The database probe passed the τ gate.
    DbHit {
        value: Arc<[Complex64]>,
        entry: u64,
        entry_origin: Provenance,
    },
    /// Nothing reusable: the exact transform was computed in parallel.
    Computed {
        output: Vec<Complex64>,
        compute_seconds: f64,
        /// TTL-expired candidate to reclaim during the commit.
        expired: Option<u64>,
    },
    /// The norm prefilter found no τ-band fingerprint neighbor: the exact
    /// transform was computed without encoding, peeking, or probing.
    Prefiltered {
        output: Vec<Complex64>,
        compute_seconds: f64,
    },
}

/// Everything the parallel phase produces for one chunk: the encoded key,
/// how the chunk was satisfied, the compute-node-cache accounting to replay,
/// and the chunk's wall time (folded into `OpStats`/`ParallelStats` during
/// the ordered commit — never under the state lock while computing).
struct ChunkScratch {
    key: Vec<f64>,
    case: ProbeCase,
    /// The chunk's fingerprint, noted into the scope's doorkeeper history
    /// at ordered commit (`Some` whenever the prefilter is active).
    fingerprint: Option<ChunkFingerprint>,
    cache_checked: bool,
    cache_comparisons: u64,
    seconds: f64,
    /// Stage timings (ns), all zero when telemetry is disabled.
    encode_ns: u64,
    peek_ns: u64,
    probe_ns: u64,
    prefilter_ns: u64,
    /// Fixed-point shortlist time inside the probe (drained from the ANN
    /// kernel's thread-local accumulator on the probing thread).
    quantize_ns: u64,
}

/// The memoized FFT executor.
pub struct MemoizedExecutor {
    config: MemoConfig,
    /// The job this executor runs on behalf of (0 for standalone use);
    /// stamped into every insert so shared stores can gate intra-job reuse
    /// and account cross-job hits.
    job: JobId,
    store: Arc<dyn MemoStore>,
    /// Compute-node cache: peeked (read) concurrently by the parallel phase,
    /// written only during the ordered commit.
    cache: RwLock<MemoCache>,
    state: Mutex<EngineState>,
    /// Chunk-level threads this job may use per batch (≥ 1; 1 = sequential).
    threads: usize,
    /// Global arbiter of spare cores, shared with every other job of a
    /// runtime; `None` for standalone executors (full allowance).
    governor: Option<Arc<ConcurrencyGovernor>>,
    /// Telemetry recorder (disabled by default). Stage timers and span
    /// emission are gated on `telemetry.is_enabled()` captured once per
    /// batch, so the disabled form adds one branch per batch, not per chunk.
    telemetry: Telemetry,
    /// Seed of the schedule-perturbation checker (`None` = off): when set,
    /// every parallel-phase worker runs a deterministic yield storm derived
    /// from `(seed, block index)` before and after its block, forcing
    /// adversarial block start/completion orderings. The two-phase schedule
    /// must keep the commit bit-identical under every seed — the
    /// determinism harness sweeps this.
    perturb_seed: Option<u64>,
}

impl MemoizedExecutor {
    /// Creates an executor with the given configuration, database
    /// configuration, and encoder, backed by a private single-tenant store.
    pub fn new(config: MemoConfig, encoder_config: EncoderConfig, seed: u64) -> Self {
        let db_config = MemoDbConfig {
            tau: config.tau,
            budget: config.budget,
            eviction: config.eviction,
            ..Default::default()
        };
        let db = MemoDatabase::new(db_config, encoder_config, seed);
        Self::with_database(config, db)
    }

    /// Creates an executor around an existing database (e.g. with a
    /// pre-trained encoder).
    pub fn with_database(config: MemoConfig, db: MemoDatabase) -> Self {
        Self::with_store(config, Arc::new(LocalMemoStore::new(db)), 0)
    }

    /// Creates an executor on top of a (possibly shared) memo store, on
    /// behalf of job `job`. This is the multi-tenant entry point used by the
    /// runtime: several executors built over one `Arc<ShardedMemoDb>` reuse
    /// each other's entries.
    pub fn with_store(config: MemoConfig, store: Arc<dyn MemoStore>, job: JobId) -> Self {
        let cache_capacity = 4096;
        Self {
            config,
            job,
            store,
            cache: RwLock::new(MemoCache::new(config.cache_kind, cache_capacity)),
            state: Mutex::new(EngineState {
                coalescer: KeyCoalescer::new(config.coalesce_payload_bytes, config.coalesce_keys),
                stats: OpStatsTable::new(),
                similarity: SimilarityTracker::new(config.tau),
                iteration: 0,
                parallel: ParallelStats::default(),
            }),
            threads: 1,
            governor: None,
            telemetry: Telemetry::disabled(),
            perturb_seed: None,
        }
    }

    /// Configures the deterministic intra-job chunk parallelism: batches
    /// dispatched through [`FftExecutor::execute_batch_into`] run their parallel
    /// phase on up to `threads` threads (clamped to ≥ 1), leasing every
    /// thread beyond the first from `governor` when one is given (the
    /// runtime's shared core arbiter). Thread count never affects the
    /// reconstruction — only wall time.
    pub fn with_parallelism(
        mut self,
        threads: usize,
        governor: Option<Arc<ConcurrencyGovernor>>,
    ) -> Self {
        self.threads = threads.max(1);
        self.governor = governor;
        self
    }

    /// Arms the schedule-perturbation determinism checker: parallel-phase
    /// workers stagger their block start and completion with deterministic
    /// yield storms derived from `(seed, block index)`. This only reshuffles
    /// *when* blocks run relative to each other — never what they compute —
    /// so the reconstruction must stay bit-identical for every seed; any
    /// divergence means the read-only phase leaked schedule-dependent state.
    pub fn with_schedule_perturbation(mut self, seed: u64) -> Self {
        self.perturb_seed = Some(seed);
        self
    }

    /// Attaches a telemetry recorder: per-iteration and per-batch lifecycle
    /// spans, chunk counters, and hit-path stage histograms
    /// (encode / cache-peek / IVF-probe / payload-copy / miss-FFT). The
    /// default is [`Telemetry::disabled`], which records nothing and takes
    /// zero stage clock reads.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry recorder attached to this executor.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The executor configuration.
    pub fn config(&self) -> &MemoConfig {
        &self.config
    }

    /// The job this executor is attributed to.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The memo store backing this executor.
    pub fn store(&self) -> &Arc<dyn MemoStore> {
        &self.store
    }

    /// Marks the start of a new ADMM (outer) iteration; used by the
    /// similarity tracker and by reports. Flushes (and accounts) any keys
    /// still buffered in the coalescer from the previous iteration — a
    /// trailing partial batch must not carry its bytes unaccounted across
    /// the iteration boundary. Also advances the store's epoch (the
    /// job-iteration clock TTL eviction ages by): each tenant ticks the
    /// shared store once per outer iteration.
    pub fn begin_iteration(&self, iteration: usize) {
        let mut state = self.state.lock();
        Self::flush_coalescer(&mut state);
        state.iteration = iteration;
        drop(state);
        self.store.advance_epoch();
        self.telemetry.count(CounterId::IterationsStarted, 1);
        self.telemetry
            .span(self.job, SpanKind::Iteration, iteration as u64);
    }

    /// Marks the end of the job: flushes and accounts the coalescer's final
    /// trailing batch, so the per-op remote-byte counters cover every key
    /// that was ever submitted.
    pub fn finish(&self) {
        Self::flush_coalescer(&mut self.state.lock());
    }

    /// Drains the coalescer and charges the flushed keys' wire bytes to
    /// their operations (the accounting `submit` defers for buffered keys).
    fn flush_coalescer(state: &mut EngineState) {
        let flushed = state.coalescer.flush();
        Self::account_flush(&mut state.stats, &flushed);
    }

    /// Charges a flushed coalescer batch's wire bytes to each key's *own*
    /// operation — a batch crossing the payload target can carry keys
    /// buffered by earlier stages of the iteration, which must not be
    /// misattributed to the stage that happened to trigger the flush.
    fn account_flush(stats: &mut OpStatsTable, flushed: &[PendingKey]) {
        for pending in flushed {
            stats.add_remote_bytes(pending.op, pending.wire_bytes());
        }
    }

    /// Snapshot of the accumulated statistics. The state lock is held only
    /// for a plain copy of the fixed counter table; the conversion to the
    /// map-backed reporting shape happens outside it.
    pub fn stats(&self) -> MemoStats {
        let table = self.state.lock().stats;
        table.to_stats()
    }

    /// Snapshot of the intra-job parallel-scheduling statistics.
    pub fn parallel_stats(&self) -> ParallelStats {
        self.state.lock().parallel
    }

    /// Snapshot of the compute-node cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.read().stats()
    }

    /// Snapshot of the key-coalescing statistics.
    pub fn coalesce_stats(&self) -> crate::coalesce::CoalesceStats {
        self.state.lock().coalescer.stats()
    }

    /// Number of entries in the memoization database.
    pub fn db_len(&self) -> usize {
        self.store.len()
    }

    /// Resident bytes of the value database.
    pub fn db_value_bytes(&self) -> u64 {
        self.store.value_bytes()
    }

    /// Chunk-similarity series for a location (only populated when
    /// `track_similarity` is on).
    pub fn similarity_series(&self, location: usize) -> Vec<(usize, usize)> {
        self.state.lock().similarity.series(location)
    }

    /// Fraction of iterations in which a similar prior chunk existed.
    pub fn similarity_fraction(&self) -> f64 {
        self.state.lock().similarity.fraction_with_similar()
    }

    /// Trains the store's CNN encoder on the provided sample chunks using
    /// the contrastive objective.
    pub fn train_encoder(&self, samples: &[Vec<Complex64>], epochs: usize) -> f64 {
        self.store.train_encoder(samples, epochs)
    }

    fn should_memoize(&self, kind: FftOpKind) -> bool {
        self.config.enabled && (!self.config.usfft_only || kind.is_unequally_spaced())
    }

    /// Runs `f(0..n)` across the configured chunk threads (leasing extras
    /// from the governor, best-effort) and returns the results in index
    /// order plus the `(requested, used)` thread counts. The index space is
    /// split into contiguous blocks — the same deterministic partition the
    /// modeled schedule assumes — and since `f` is pure with respect to the
    /// commit-ordered state, the output is identical for every thread count.
    fn map_chunks<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> (Vec<T>, usize, usize) {
        self.map_chunk_blocks(n, |range| range.map(&f).collect())
    }

    /// Like [`Self::map_chunks`], but hands each worker its whole contiguous
    /// index block at once, so per-block work (batched key encoding, one
    /// store lock per block) can be amortized. The partition is the same
    /// deterministic contiguous split for any given thread count, and block
    /// results are concatenated in index order.
    fn map_chunk_blocks<T: Send>(
        &self,
        n: usize,
        f: impl Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
    ) -> (Vec<T>, usize, usize) {
        let requested = self.threads.min(n).max(1);
        let lease = self
            .governor
            .as_ref()
            .map(|g| g.acquire(requested.saturating_sub(1)));
        let used = 1 + lease
            .as_ref()
            .map_or(requested.saturating_sub(1), |l| l.granted());
        let out = if used <= 1 || n <= 1 {
            f(0..n)
        } else {
            let workers = used.min(n);
            let block = n.div_ceil(workers);
            let perturb = self.perturb_seed;
            let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let f = &f;
                        s.spawn(move || {
                            if let Some(seed) = perturb {
                                stagger(seed, w as u64, 0);
                            }
                            let start = w * block;
                            let end = ((w + 1) * block).min(n);
                            let out = f(start..end);
                            if let Some(seed) = perturb {
                                stagger(seed, w as u64, 1);
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(block) => blocks.push(block),
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
            });
            blocks.into_iter().flatten().collect()
        };
        (out, requested, used)
    }

    /// Folds one batch dispatch into the parallel statistics: thread
    /// accounting, measured times, and the deterministic modeled schedule
    /// (analytic per-chunk recompute cost over contiguous blocks at the
    /// *requested* thread count — the governor's grant varies with machine
    /// load, the model must not).
    fn note_batch(
        state: &mut EngineState,
        kind: FftOpKind,
        batch: &[ChunkRequest<'_>],
        requested: usize,
        used: usize,
        chunk_seconds: f64,
        phase_seconds: f64,
    ) {
        let p = &mut state.parallel;
        p.batches += 1;
        p.chunks += batch.len() as u64;
        p.threads_requested += requested as u64;
        p.threads_granted += used as u64;
        p.chunk_seconds += chunk_seconds;
        p.phase_seconds += phase_seconds;
        let costs: Vec<f64> = batch
            .iter()
            .map(|t| recompute_cost_estimate(kind, t.input.len()))
            .collect();
        p.modeled_serial_cost += costs.iter().sum::<f64>();
        let workers = requested.min(batch.len()).max(1);
        let block = batch.len().div_ceil(workers);
        let critical = costs
            .chunks(block)
            .map(|b| b.iter().sum::<f64>())
            .fold(0.0f64, f64::max);
        p.modeled_critical_cost += critical;
    }
}

impl FftExecutor for MemoizedExecutor {
    fn begin_iteration(&self, iteration: usize) {
        MemoizedExecutor::begin_iteration(self, iteration);
    }

    fn finish(&self) {
        MemoizedExecutor::finish(self);
    }

    fn execute(
        &self,
        kind: FftOpKind,
        loc: usize,
        input: &[Complex64],
        compute: &dyn Fn(&[Complex64]) -> Vec<Complex64>,
    ) -> Vec<Complex64> {
        let in_warmup = self.state.lock().iteration < self.config.warmup_iterations;
        if !self.should_memoize(kind) || in_warmup {
            let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
            let out = compute(input);
            let mut state = self.state.lock();
            state.stats.record(kind, MemoCase::Computed);
            state
                .stats
                .add_compute_time(kind, start.elapsed().as_secs_f64());
            return out;
        }

        let mut state = self.state.lock();
        let iteration = state.iteration;
        if self.config.track_similarity {
            state.similarity.record(loc, iteration, input);
        }

        // 0. Norm prefilter: an O(n) fingerprint consulted against the
        //    scope's doorkeeper history. No τ-band neighbor ⇒ the raw gate
        //    cannot pass ⇒ skip encode/peek/probe and compute exactly. The
        //    fingerprint is noted either way, so a repeating chunk is
        //    admitted (and inserted) on its second sighting.
        if self.config.prefilter && self.store.config().gate_on_raw {
            let fp = ChunkFingerprint::compute(input);
            let admitted = self.store.has_fingerprint_neighbor(kind, loc, &fp);
            self.store.note_fingerprint(kind, loc, fp);
            if !admitted {
                drop(state);
                let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                let out = compute(input);
                let elapsed = start.elapsed().as_secs_f64();
                let mut state = self.state.lock();
                state.stats.record(kind, MemoCase::Prefiltered);
                state.stats.add_compute_time(kind, elapsed);
                return out;
            }
        }

        // 1. Encode the key once (through the store, so every tenant of a
        //    shared store uses the same encoder).
        let key = self.store.encode(input);
        state.stats.add_encoded_key(kind);

        // 2. Compute-node cache.
        if self.config.use_cache {
            if let Some(value) =
                self.cache
                    .write()
                    .lookup(kind, loc, &key, self.config.tau, iteration)
            {
                state.stats.record(kind, MemoCase::CacheHit);
                // The payload copy into the caller's Vec happens outside the
                // state lock (the batch path avoids even that copy by
                // memcpying into the operator's grid buffer directly).
                drop(state);
                return value.as_ref().to_vec();
            }
        }

        // 3. Key coalescing: the query key travels to the memory node as part
        //    of a batch (borrowed — the coalescer never clones it). The batch
        //    boundary only affects *when* bytes cross the wire (accounted in
        //    the stats), not the query result.
        if let Some(batch) = state.coalescer.submit(kind, loc, &key) {
            Self::account_flush(&mut state.stats, &batch);
        }
        // Otherwise buffered; bytes accounted when the batch flushes.

        // 4. Query the memoization database.
        let origin = Provenance {
            job: self.job,
            iteration,
        };
        match self.store.query_with_key(kind, loc, input, key, origin) {
            QueryOutcome::Hit { value, key, .. } => {
                state.stats.record(kind, MemoCase::DbHit);
                state
                    .stats
                    .add_remote_bytes(kind, (value.len() * 16) as u64);
                drop(state);
                if self.config.use_cache {
                    self.cache
                        .write()
                        .insert(kind, loc, key, value.clone(), iteration);
                }
                value.as_ref().to_vec()
            }
            QueryOutcome::Miss { key } => {
                // 5. Compute exactly and insert (the insertion itself is
                //    overlapped with the next chunk's compute in the real
                //    system; here only its bytes are accounted).
                drop(state);
                let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                let out = compute(input);
                let elapsed = start.elapsed().as_secs_f64();
                let mut state = self.state.lock();
                state.stats.record(kind, MemoCase::FailedMemo);
                state.stats.add_compute_time(kind, elapsed);
                state.stats.add_remote_bytes(kind, (out.len() * 16) as u64);
                let origin = Provenance {
                    job: self.job,
                    iteration: state.iteration,
                };
                drop(state);
                // Price the entry with the deterministic analytic cost model
                // (the OpStats wall-clock timings corroborate its per-op
                // ratios but would make eviction irreproducible).
                let cost = recompute_cost_estimate(kind, input.len());
                self.store
                    .insert(kind, loc, input, key, out.clone(), origin, cost);
                out
            }
        }
    }

    /// The deterministic two-phase chunk-parallel schedule.
    ///
    /// **Phase 1 (parallel):** every chunk independently encodes its key,
    /// peeks the compute-node cache (read-only), probes the database
    /// (read-only) and — on a miss — computes the exact transform. All of
    /// this runs against the store/cache state *frozen at the start of the
    /// application*, so the phase is order-independent. Inserts from this
    /// application only become visible at the next one, which loses nothing:
    /// the provenance freshness gate already makes same-job entries of the
    /// current iteration ineligible.
    ///
    /// **Phase 2 (ordered commit):** in chunk-index order, replay every side
    /// effect — statistics, similarity tracking, key coalescing, cache
    /// updates, store hit/miss bookkeeping (logical ticks!) and inserts with
    /// their eviction enforcement. Commit order never depends on the thread
    /// schedule, so the reconstruction (and the eviction trace) is
    /// bit-identical for every `intra_job_threads`.
    fn execute_batch_into(
        &self,
        kind: FftOpKind,
        batch: &[ChunkRequest<'_>],
        outputs: &mut [&mut [Complex64]],
    ) {
        assert_eq!(batch.len(), outputs.len(), "batch/output arity mismatch");
        if batch.is_empty() {
            return;
        }
        let iteration = self.state.lock().iteration;
        let in_warmup = iteration < self.config.warmup_iterations;
        let tel_on = self.telemetry.is_enabled();
        if !self.should_memoize(kind) || in_warmup {
            // Non-memoized stage: parallel exact compute, ordered stats fold.
            let phase_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: phase timing feeds ParallelStats
            let (results, requested, used) = self.map_chunks(batch.len(), |i| {
                let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                let out = (batch[i].compute)(batch[i].input);
                (out, start.elapsed().as_secs_f64())
            });
            let phase_seconds = phase_start.elapsed().as_secs_f64();
            let mut state = self.state.lock();
            let mut chunk_seconds = 0.0;
            let mut stage_scratch = StageTable::new();
            for ((out, seconds), slot) in results.into_iter().zip(outputs.iter_mut()) {
                state.stats.record(kind, MemoCase::Computed);
                state.stats.add_compute_time(kind, seconds);
                chunk_seconds += seconds;
                slot.copy_from_slice(&out);
                if tel_on {
                    stage_scratch.record(StageId::MissFft, (seconds * 1e9) as u64);
                }
            }
            Self::note_batch(
                &mut state,
                kind,
                batch,
                requested,
                used,
                chunk_seconds,
                phase_seconds,
            );
            if tel_on {
                drop(state);
                let mut counter_scratch = CounterTable::new();
                counter_scratch.add(CounterId::OperatorBatches, 1);
                counter_scratch.add(CounterId::ChunksCommitted, batch.len() as u64);
                counter_scratch.add(CounterId::ComputedChunks, batch.len() as u64);
                self.telemetry.fold_counters(&counter_scratch);
                self.telemetry.fold_stages(&stage_scratch);
                self.telemetry
                    .span(self.job, SpanKind::Operator, batch.len() as u64);
            }
            return;
        }

        let origin = Provenance {
            job: self.job,
            iteration,
        };

        let prefilter_on = self.config.prefilter && self.store.config().gate_on_raw;
        // The ANN kernel's fixed-point shortlist times itself into a
        // thread-local accumulator, drained per chunk on the probing thread.
        crate::ann::set_quantize_timing(tel_on);

        // ------------------------------------------------- phase 1: parallel
        let phase_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: phase timing feeds ParallelStats
        let (scratch, requested, used) = self.map_chunk_blocks(batch.len(), |range| {
            let mut out: Vec<ChunkScratch> = Vec::with_capacity(range.len());
            // Pass A: fingerprint + doorkeeper decision per chunk, read-only
            // against the history frozen at the start of the application
            // (notes happen at ordered commit, so the decisions are
            // independent of the thread schedule).
            let mut pre: Vec<(Option<ChunkFingerprint>, bool, f64)> =
                Vec::with_capacity(range.len());
            for i in range.clone() {
                let task = &batch[i];
                let t = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                let (fp, admitted) = if prefilter_on {
                    let fp = ChunkFingerprint::compute(task.input);
                    let admitted = self.store.has_fingerprint_neighbor(kind, task.loc, &fp);
                    (Some(fp), admitted)
                } else {
                    (None, true)
                };
                pre.push((fp, admitted, t.elapsed().as_secs_f64()));
            }
            // Pass B: one batched encode for the block's admitted chunks —
            // one store lock and one encoder scratch for the whole block
            // instead of one per chunk.
            let admitted_inputs: Vec<&[Complex64]> = range
                .clone()
                .zip(&pre)
                .filter(|(_, (_, admitted, _))| *admitted)
                .map(|(i, _)| batch[i].input)
                .collect();
            let encode_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: encode timing feeds telemetry
            let mut keys = if admitted_inputs.is_empty() {
                Vec::new()
            } else {
                self.store.encode_batch(&admitted_inputs)
            }
            .into_iter();
            let encode_seconds = encode_start.elapsed().as_secs_f64();
            let n_admitted = admitted_inputs.len().max(1) as u64;
            // Per-chunk attribution of the block encode: even shares, the
            // integer remainder going to the first admitted chunk so the
            // stage-sum invariant loses nothing to rounding.
            let encode_share = encode_seconds / n_admitted as f64;
            let encode_total_ns = (encode_seconds * 1e9) as u64;
            let encode_share_ns = encode_total_ns / n_admitted;
            let mut encode_rem_ns = encode_total_ns % n_admitted;
            // Pass C: cache peek, database probe, and exact compute on miss.
            for (i, (fp, admitted, pre_seconds)) in range.clone().zip(pre) {
                let task = &batch[i];
                let prefilter_ns = if tel_on && prefilter_on {
                    (pre_seconds * 1e9) as u64
                } else {
                    0
                };
                if !admitted {
                    let compute_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                    let output = (task.compute)(task.input);
                    let compute_seconds = compute_start.elapsed().as_secs_f64();
                    out.push(ChunkScratch {
                        key: Vec::new(),
                        case: ProbeCase::Prefiltered {
                            output,
                            compute_seconds,
                        },
                        fingerprint: fp,
                        cache_checked: false,
                        cache_comparisons: 0,
                        seconds: pre_seconds + compute_seconds,
                        encode_ns: 0,
                        peek_ns: 0,
                        probe_ns: 0,
                        prefilter_ns,
                        quantize_ns: 0,
                    });
                    continue;
                }
                let key = keys.next().expect("one key per admitted chunk"); // mlr-check: allow(unwrap-expect) — invariant: encode_batch returns one key per admitted chunk
                let encode_ns = if tel_on {
                    encode_share_ns + std::mem::take(&mut encode_rem_ns)
                } else {
                    0
                };
                let start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                let mut cache_checked = false;
                let mut cache_comparisons = 0;
                let mut peek_ns = 0;
                if self.config.use_cache {
                    cache_checked = true;
                    let peek_clock = stage_clock(tel_on);
                    let (found, comparisons) =
                        self.cache
                            .read()
                            .peek(kind, task.loc, &key, self.config.tau, iteration);
                    peek_ns = stage_ns(peek_clock);
                    cache_comparisons = comparisons;
                    if let Some(value) = found {
                        out.push(ChunkScratch {
                            key,
                            case: ProbeCase::CacheHit { value },
                            fingerprint: fp,
                            cache_checked,
                            cache_comparisons,
                            seconds: pre_seconds + encode_share + start.elapsed().as_secs_f64(),
                            encode_ns,
                            peek_ns,
                            probe_ns: 0,
                            prefilter_ns,
                            quantize_ns: 0,
                        });
                        continue;
                    }
                }
                let probe_clock = stage_clock(tel_on);
                let probe = self
                    .store
                    .probe_with_key(kind, task.loc, task.input, &key, origin);
                let probe_ns = stage_ns(probe_clock);
                let quantize_ns = if tel_on {
                    crate::ann::take_quantize_ns()
                } else {
                    0
                };
                let case = match probe {
                    ProbeOutcome::Hit {
                        value,
                        entry,
                        origin: entry_origin,
                        ..
                    } => ProbeCase::DbHit {
                        value,
                        entry,
                        entry_origin,
                    },
                    outcome @ (ProbeOutcome::Miss | ProbeOutcome::Expired { .. }) => {
                        let expired = match outcome {
                            ProbeOutcome::Expired { entry } => Some(entry),
                            _ => None,
                        };
                        let compute_start = Instant::now(); // mlr-check: allow(wall-clock) — decoration only: feeds compute-time stats
                        let output = (task.compute)(task.input);
                        ProbeCase::Computed {
                            output,
                            compute_seconds: compute_start.elapsed().as_secs_f64(),
                            expired,
                        }
                    }
                };
                out.push(ChunkScratch {
                    key,
                    case,
                    fingerprint: fp,
                    cache_checked,
                    cache_comparisons,
                    seconds: pre_seconds + encode_share + start.elapsed().as_secs_f64(),
                    encode_ns,
                    peek_ns,
                    probe_ns,
                    prefilter_ns,
                    quantize_ns,
                });
            }
            out
        });
        let phase_seconds = phase_start.elapsed().as_secs_f64();

        // ------------------------------------------- phase 2: ordered commit
        let mut state = self.state.lock();
        let mut chunk_seconds = 0.0;
        // Telemetry scratch lives on this stack frame (`Copy` tables, zero
        // allocation) and folds into the shared registry once per batch —
        // the same discipline as `OpStatsTable`, preserving the fig22
        // allocation gate with telemetry enabled.
        let mut stage_scratch = StageTable::new();
        let mut counter_scratch = CounterTable::new();
        for ((task, chunk), slot) in batch.iter().zip(scratch).zip(outputs.iter_mut()) {
            chunk_seconds += chunk.seconds;
            if self.config.track_similarity {
                state.similarity.record(task.loc, iteration, task.input);
            }
            // Doorkeeper bookkeeping happens in chunk-index order, like
            // every other side effect: every committed chunk's fingerprint
            // is noted, including prefiltered ones — a repeating chunk is
            // admitted (and inserted) on its second sighting.
            if let Some(fp) = chunk.fingerprint {
                self.store.note_fingerprint(kind, task.loc, fp);
            }
            let prefiltered = matches!(chunk.case, ProbeCase::Prefiltered { .. });
            if !prefiltered {
                state.stats.add_encoded_key(kind);
            }
            if chunk.cache_checked {
                let hit = matches!(chunk.case, ProbeCase::CacheHit { .. });
                self.cache.write().note_lookup(hit, chunk.cache_comparisons);
            }
            if tel_on {
                if chunk.fingerprint.is_some() {
                    stage_scratch.record(StageId::Prefilter, chunk.prefilter_ns);
                }
                if !prefiltered {
                    stage_scratch.record(StageId::Encode, chunk.encode_ns);
                }
                if chunk.cache_checked {
                    stage_scratch.record(StageId::CachePeek, chunk.peek_ns);
                }
                if !prefiltered && !matches!(chunk.case, ProbeCase::CacheHit { .. }) {
                    // The quantize sub-stage is carved out of the probe so
                    // the stage set partitions hit-path time (no double
                    // counting in the stage-sum invariant).
                    stage_scratch.record(
                        StageId::IvfProbe,
                        chunk.probe_ns.saturating_sub(chunk.quantize_ns),
                    );
                    stage_scratch.record(StageId::Quantize, chunk.quantize_ns);
                }
            }
            match chunk.case {
                ProbeCase::CacheHit { value } => {
                    state.stats.record(kind, MemoCase::CacheHit);
                    // Zero-copy hit: one memcpy from the shared payload into
                    // the operator's grid window, no intermediate Vec.
                    let copy_clock = stage_clock(tel_on);
                    slot.copy_from_slice(&value);
                    if tel_on {
                        stage_scratch.record(StageId::PayloadCopy, stage_ns(copy_clock));
                        counter_scratch.add(CounterId::CacheHitChunks, 1);
                    }
                }
                ProbeCase::DbHit {
                    value,
                    entry,
                    entry_origin,
                } => {
                    if let Some(flushed) = state.coalescer.submit(kind, task.loc, &chunk.key) {
                        Self::account_flush(&mut state.stats, &flushed);
                    }
                    self.store
                        .commit_hit(kind, task.loc, entry, entry_origin, origin);
                    state.stats.record(kind, MemoCase::DbHit);
                    state
                        .stats
                        .add_remote_bytes(kind, (value.len() * 16) as u64);
                    let copy_clock = stage_clock(tel_on);
                    slot.copy_from_slice(&value);
                    if tel_on {
                        stage_scratch.record(StageId::PayloadCopy, stage_ns(copy_clock));
                        counter_scratch.add(CounterId::DbHitChunks, 1);
                    }
                    if self.config.use_cache {
                        // The cache shares the payload buffer (Arc) and takes
                        // ownership of the already-encoded key — no clones.
                        self.cache
                            .write()
                            .insert(kind, task.loc, chunk.key, value, iteration);
                    }
                }
                ProbeCase::Computed {
                    output,
                    compute_seconds,
                    expired,
                } => {
                    if let Some(flushed) = state.coalescer.submit(kind, task.loc, &chunk.key) {
                        Self::account_flush(&mut state.stats, &flushed);
                    }
                    if let Some(entry) = expired {
                        self.store.reclaim_expired(kind, task.loc, entry);
                    }
                    self.store.commit_miss(kind, task.loc);
                    state.stats.record(kind, MemoCase::FailedMemo);
                    state.stats.add_compute_time(kind, compute_seconds);
                    state
                        .stats
                        .add_remote_bytes(kind, (output.len() * 16) as u64);
                    slot.copy_from_slice(&output);
                    if tel_on {
                        stage_scratch.record(StageId::MissFft, (compute_seconds * 1e9) as u64);
                        counter_scratch.add(CounterId::ComputedChunks, 1);
                    }
                    let cost = recompute_cost_estimate(kind, task.input.len());
                    // The computed Vec moves into the store (one conversion
                    // into the shared payload buffer, no extra clone).
                    self.store
                        .insert(kind, task.loc, task.input, chunk.key, output, origin, cost);
                }
                ProbeCase::Prefiltered {
                    output,
                    compute_seconds,
                } => {
                    // No key traveled and no query was issued: nothing to
                    // coalesce, no store bookkeeping, no insert (there is no
                    // key to insert under — the chunk's fingerprint was
                    // noted above, so its next sighting takes the full
                    // path and inserts).
                    state.stats.record(kind, MemoCase::Prefiltered);
                    state.stats.add_compute_time(kind, compute_seconds);
                    slot.copy_from_slice(&output);
                    if tel_on {
                        stage_scratch.record(StageId::MissFft, (compute_seconds * 1e9) as u64);
                        counter_scratch.add(CounterId::PrefilteredChunks, 1);
                    }
                }
            }
        }
        Self::note_batch(
            &mut state,
            kind,
            batch,
            requested,
            used,
            chunk_seconds,
            phase_seconds,
        );
        if tel_on {
            drop(state);
            counter_scratch.add(CounterId::OperatorBatches, 1);
            counter_scratch.add(CounterId::ChunksCommitted, batch.len() as u64);
            self.telemetry.fold_counters(&counter_scratch);
            self.telemetry.fold_stages(&stage_scratch);
            self.telemetry
                .span(self.job, SpanKind::Operator, batch.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_lamino::DirectExecutor;
    use mlr_math::rng::seeded;
    use rand::Rng;

    /// Default config with warm-up disabled so the protocol is exercised
    /// from the first call.
    fn test_config() -> MemoConfig {
        MemoConfig {
            warmup_iterations: 0,
            ..Default::default()
        }
    }

    fn tiny_encoder() -> EncoderConfig {
        EncoderConfig {
            input_grid: 8,
            conv1_filters: 2,
            conv2_filters: 4,
            embedding_dim: 8,
            learning_rate: 1e-3,
        }
    }

    fn chunk(seed: u64, n: usize) -> Vec<Complex64> {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// A deterministic stand-in FFT: negate and swap components.
    fn fake_fft(input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|z| Complex64::new(-z.im, z.re)).collect()
    }

    #[test]
    fn identical_inputs_hit_after_first_miss() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 1);
        let input = chunk(1, 128);
        // First sighting: the doorkeeper prefilter has no history for the
        // scope, so the chunk goes straight to the exact FFT (no insert).
        exec.begin_iteration(0);
        let first = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
        // Second sighting: the noted fingerprint admits it — full path,
        // miss, insert.
        exec.begin_iteration(1);
        let second = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
        // Third sighting: served from memory.
        exec.begin_iteration(2);
        let third = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
        assert_eq!(first, second);
        assert_eq!(first, third);
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.prefiltered, 1);
        assert_eq!(stats.failed_memo, 1);
        assert_eq!(stats.db_hits + stats.cache_hits, 1);
        assert_eq!(exec.db_len(), 1);
    }

    #[test]
    fn cache_hit_comes_from_compute_node_cache() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 2);
        let input = chunk(2, 128);
        // Iteration 0 is prefiltered (first sighting), iteration 1 misses
        // and inserts, iteration 2 hits the DB (and fills the cache),
        // subsequent ones hit the cache.
        for it in 0..4 {
            exec.begin_iteration(it);
            let _ = exec.execute(FftOpKind::Fu1D, 5, &input, &fake_fft);
        }
        let stats = exec.stats().op(FftOpKind::Fu1D);
        assert_eq!(stats.prefiltered, 1);
        assert_eq!(stats.failed_memo, 1);
        assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    }

    #[test]
    fn disabled_memoization_always_computes() {
        let config = MemoConfig {
            enabled: false,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 3);
        let input = chunk(3, 64);
        for _ in 0..3 {
            let out = exec.execute(FftOpKind::Fu2D, 0, &input, &fake_fft);
            assert_eq!(out, fake_fft(&input));
        }
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.computed, 3);
        assert_eq!(stats.failed_memo + stats.db_hits + stats.cache_hits, 0);
        assert_eq!(exec.db_len(), 0);
    }

    #[test]
    fn uniform_fft_ops_are_not_memoized_by_default() {
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 4);
        let input = chunk(4, 64);
        let _ = exec.execute(FftOpKind::F2D, 0, &input, &fake_fft);
        let _ = exec.execute(FftOpKind::F2D, 0, &input, &fake_fft);
        let stats = exec.stats().op(FftOpKind::F2D);
        assert_eq!(stats.computed, 2);
        assert_eq!(exec.db_len(), 0);
    }

    #[test]
    fn results_match_direct_executor_when_inputs_differ() {
        // With completely different inputs every call, memoization never
        // hits, so outputs must equal the exact computation. Each chunk is
        // the first sighting in its own location scope, so the norm
        // prefilter routes all of them straight to the exact FFT — the
        // encoder is never consulted on this unique-chunk workload.
        let exec = MemoizedExecutor::new(test_config(), tiny_encoder(), 5);
        let direct = DirectExecutor;
        for i in 0..5 {
            let input = chunk(100 + i, 96);
            let memo_out = exec.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            let direct_out = direct.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            assert_eq!(memo_out, direct_out);
        }
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.prefiltered, 5);
        assert_eq!(stats.keys_encoded, 0);
        assert_eq!(stats.db_hits + stats.cache_hits, 0);
        assert_eq!(exec.db_len(), 0);

        // The same workload with the prefilter disabled pays the encoder
        // and the probe for every guaranteed miss.
        let unfiltered = MemoizedExecutor::new(
            MemoConfig {
                prefilter: false,
                ..test_config()
            },
            tiny_encoder(),
            5,
        );
        for i in 0..5 {
            let input = chunk(100 + i, 96);
            let memo_out = unfiltered.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            let direct_out = direct.execute(FftOpKind::Fu2D, i as usize, &input, &fake_fft);
            assert_eq!(memo_out, direct_out);
        }
        let stats = unfiltered.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.failed_memo, 5);
        assert_eq!(stats.keys_encoded, 5);
    }

    #[test]
    fn similar_inputs_reuse_stored_value_approximately() {
        let config = MemoConfig {
            tau: 0.90,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 6);
        let base = chunk(6, 256);
        // Iteration 0 primes the doorkeeper (prefiltered, nothing stored);
        // iteration 1 inserts the exact base result.
        exec.begin_iteration(0);
        let _ = exec.execute(FftOpKind::Fu2D, 0, &base, &fake_fft);
        exec.begin_iteration(1);
        let exact_base = exec.execute(FftOpKind::Fu2D, 0, &base, &fake_fft);
        // Slightly perturbed input in the next iteration: similar enough to
        // reuse.
        let perturbed: Vec<Complex64> = base
            .iter()
            .map(|z| *z + Complex64::new(0.01, -0.01))
            .collect();
        exec.begin_iteration(2);
        let reused = exec.execute(FftOpKind::Fu2D, 0, &perturbed, &fake_fft);
        // The reused value is the *stored* result, i.e. an approximation of
        // the exact result for the perturbed input.
        assert_eq!(reused, exact_base);
        let exact_perturbed = fake_fft(&perturbed);
        let err = mlr_math::norms::l2_distance_c(&reused, &exact_perturbed)
            / mlr_math::norms::l2_norm_c(&exact_perturbed);
        assert!(err < 0.05, "approximation error too large: {err}");
        let stats = exec.stats().op(FftOpKind::Fu2D);
        assert_eq!(stats.db_hits + stats.cache_hits, 1);
    }

    #[test]
    fn similarity_tracking_collects_series() {
        let config = MemoConfig {
            track_similarity: true,
            tau: 0.9,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 7);
        let base = chunk(7, 64);
        for it in 0..4 {
            exec.begin_iteration(it);
            let scaled: Vec<Complex64> = base
                .iter()
                .map(|z| z.scale(1.0 + 0.001 * it as f64))
                .collect();
            let _ = exec.execute(FftOpKind::Fu2D, 2, &scaled, &fake_fft);
        }
        let series = exec.similarity_series(2);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].1, 0);
        assert!(series[3].1 >= 1);
        assert!(exec.similarity_fraction() > 0.0);
    }

    #[test]
    fn single_chunk_execute_matches_one_element_batches() {
        // The sequential `execute` path and the batched scheduler are two
        // implementations of the same protocol; driving one executor chunk
        // by chunk and another with one-element batches (identical
        // semantics: a one-element batch has no intra-batch visibility
        // deferral) must produce the same outputs and the same case counts,
        // so the paths cannot silently drift apart.
        let sequential = MemoizedExecutor::new(test_config(), tiny_encoder(), 9);
        let batched = MemoizedExecutor::new(test_config(), tiny_encoder(), 9);
        for it in 0..4 {
            sequential.begin_iteration(it);
            batched.begin_iteration(it);
            for loc in 0..3usize {
                // Slowly drifting per-location inputs: exercises misses,
                // db hits and cache hits across iterations.
                let input: Vec<Complex64> = chunk(40 + loc as u64, 128)
                    .iter()
                    .map(|z| z.scale(1.0 + 0.001 * it as f64))
                    .collect();
                let a = sequential.execute(FftOpKind::Fu2D, loc, &input, &fake_fft);
                let compute = |x: &[Complex64]| fake_fft(x);
                let requests = [mlr_lamino::ChunkRequest {
                    loc,
                    input: &input,
                    compute: &compute,
                }];
                let mut b = vec![Complex64::ZERO; input.len()];
                batched.execute_batch_into(FftOpKind::Fu2D, &requests, &mut [&mut b[..]]);
                assert_eq!(a, b, "paths diverged at iteration {it}, loc {loc}");
            }
        }
        sequential.finish();
        batched.finish();
        let sa = sequential.stats().op(FftOpKind::Fu2D);
        let sb = batched.stats().op(FftOpKind::Fu2D);
        assert_eq!(
            (sa.failed_memo, sa.db_hits, sa.cache_hits, sa.keys_encoded),
            (sb.failed_memo, sb.db_hits, sb.cache_hits, sb.keys_encoded)
        );
        assert_eq!(sa.remote_bytes, sb.remote_bytes);
        assert!(sa.db_hits + sa.cache_hits > 0, "trace never hit — vacuous");
    }

    #[test]
    fn coalesce_stats_accumulate() {
        let config = MemoConfig {
            coalesce_keys: true,
            coalesce_payload_bytes: 64,
            // Unique chunks at unique locations would all be prefiltered
            // away (no keys would ever reach the coalescer); this test is
            // about the coalescer, so the prefilter stays off.
            prefilter: false,
            ..test_config()
        };
        let exec = MemoizedExecutor::new(config, tiny_encoder(), 8);
        for i in 0..6 {
            let _ = exec.execute(FftOpKind::Fu2D, i, &chunk(200 + i as u64, 64), &fake_fft);
        }
        let cs = exec.coalesce_stats();
        assert_eq!(cs.keys, 6);
        assert!(cs.messages >= 1);
        assert!(exec.db_value_bytes() > 0);
        assert!(exec.cache_stats().lookups >= 6);
    }
}
