//! Capacity governance for the memoization store: budgets, eviction
//! policies, and the deterministic logical clocks they run on.
//!
//! The paper's evaluation spends much of its time on memory breakdowns and
//! offloading precisely because the memoization database competes with the
//! reconstruction working sets for DRAM; a store that grows without bound
//! caps a multi-tenant runtime at toy workloads. This module adds the
//! missing governor:
//!
//! * [`CapacityBudget`] — optional byte and entry caps, globally and per
//!   lock stripe. A store enforces its budget *after every insert*, so the
//!   resident footprint never exceeds the cap at any observable point.
//! * [`EvictionPolicy`] — the pluggable victim-selection seam. Built-in
//!   policies: [`FifoPolicy`], [`LruPolicy`], [`TtlPolicy`] (age in
//!   job-iterations) and [`CostAwarePolicy`] (benefit density:
//!   `recompute_cost / bytes`, boosted by observed reuse).
//! * [`EvictionPolicyKind`] — the `Copy`able configuration-level selector
//!   carried inside [`MemoDbConfig`](crate::db::MemoDbConfig).
//!
//! # Determinism
//!
//! Eviction decisions must be reproducible: the runtime's contract is that
//! the same job schedule over the same budget produces bit-identical
//! reconstructions, and that sharding is semantics-free. Wall-clock time
//! would break both, so every input to a policy is *logical*:
//!
//! * the **op tick** — one monotone counter incremented per query/insert,
//!   shared by every stripe of a store (recency for LRU/FIFO);
//! * the **epoch** — advanced once per job ADMM iteration through
//!   [`MemoStore::advance_epoch`](crate::store::MemoStore::advance_epoch)
//!   (age for TTL);
//! * the **entry id** — globally unique insertion index, the stable
//!   tie-breaker whenever two entries rank equal.
//!
//! The cost-aware policy likewise scores with an *analytic* recompute-cost
//! estimate ([`recompute_cost_estimate`], an `n log n` model whose per-op
//! weights mirror the measured `OpStats` compute-second ratios) rather than
//! the measured timings themselves — measured seconds vary run to run and
//! would make victim selection nondeterministic.

use crate::store::Provenance;
use mlr_lamino::FftOpKind;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Byte/entry caps for a memoization store, globally and per lock stripe.
///
/// `None` means unbounded. Global caps are enforced over the whole store
/// (across every stripe of a [`ShardedMemoDb`](crate::ShardedMemoDb));
/// stripe caps bound each stripe individually, which limits how lopsided a
/// skewed scope distribution can make the stripes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CapacityBudget {
    /// Maximum resident bytes (values + retained raw inputs + keys).
    pub max_bytes: Option<u64>,
    /// Maximum number of stored entries.
    pub max_entries: Option<u64>,
    /// Per-stripe byte cap (enforced inside each stripe).
    pub stripe_max_bytes: Option<u64>,
    /// Per-stripe entry cap (enforced inside each stripe).
    pub stripe_max_entries: Option<u64>,
}

impl CapacityBudget {
    /// No caps: the store grows without bound (the pre-governance default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A global byte cap.
    pub fn bytes(max_bytes: u64) -> Self {
        Self {
            max_bytes: Some(max_bytes),
            ..Self::default()
        }
    }

    /// A global entry-count cap.
    pub fn entries(max_entries: u64) -> Self {
        Self {
            max_entries: Some(max_entries),
            ..Self::default()
        }
    }

    /// Adds a per-stripe byte cap.
    pub fn with_stripe_bytes(mut self, stripe_max_bytes: u64) -> Self {
        self.stripe_max_bytes = Some(stripe_max_bytes);
        self
    }

    /// Adds a per-stripe entry cap.
    pub fn with_stripe_entries(mut self, stripe_max_entries: u64) -> Self {
        self.stripe_max_entries = Some(stripe_max_entries);
        self
    }

    /// Whether any cap is set.
    pub fn is_bounded(&self) -> bool {
        self.max_bytes.is_some()
            || self.max_entries.is_some()
            || self.stripe_max_bytes.is_some()
            || self.stripe_max_entries.is_some()
    }

    /// Utilisation of the tightest *global* cap in `[0, 1]` (0 when
    /// unbounded). The runtime's admission control consults this as "store
    /// pressure".
    pub fn pressure(&self, resident_bytes: u64, entries: u64) -> f64 {
        let byte_pressure = self
            .max_bytes
            .map(|cap| resident_bytes as f64 / cap.max(1) as f64);
        let entry_pressure = self
            .max_entries
            .map(|cap| entries as f64 / cap.max(1) as f64);
        match (byte_pressure, entry_pressure) {
            (Some(b), Some(e)) => b.max(e),
            (Some(b), None) => b,
            (None, Some(e)) => e,
            (None, None) => 0.0,
        }
        .min(1.0)
    }

    /// `true` when `resident_bytes`/`entries` violate a global cap.
    pub fn exceeded(&self, resident_bytes: u64, entries: u64) -> bool {
        self.max_bytes.is_some_and(|cap| resident_bytes > cap)
            || self.max_entries.is_some_and(|cap| entries > cap)
    }

    /// `true` when `resident_bytes`/`entries` violate a stripe cap.
    pub fn stripe_exceeded(&self, resident_bytes: u64, entries: u64) -> bool {
        self.stripe_max_bytes
            .is_some_and(|cap| resident_bytes > cap)
            || self.stripe_max_entries.is_some_and(|cap| entries > cap)
    }
}

/// Everything a policy may rank an entry by. All fields are logical (see
/// the module docs): no wall-clock values, so ranking is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntryMeta {
    /// Globally unique insertion index — the stable tie-breaker.
    pub id: u64,
    /// Resident bytes attributable to the entry (value + raw input + key).
    pub bytes: u64,
    /// Op tick at insertion.
    pub inserted_tick: u64,
    /// Epoch (job-iteration clock) at insertion.
    pub inserted_epoch: u64,
    /// Op tick of the most recent hit (or the insertion tick).
    pub last_access_tick: u64,
    /// Epoch (job-iteration clock) of the most recent hit (or insertion).
    pub last_access_epoch: u64,
    /// Number of queries this entry has served.
    pub hits: u64,
    /// Of those, hits serving a *different* job than the inserter — the
    /// provenance signal that the entry survives content drift (replicated
    /// jobs re-produce similar chunks, so past cross-job service predicts
    /// future cross-job service).
    pub cross_hits: u64,
    /// Analytic recompute cost of the memoized operation (arbitrary units,
    /// comparable across entries).
    pub recompute_cost: f64,
    /// Which job/iteration inserted the entry.
    pub origin: Provenance,
    /// The memoized operation (lets policies weigh op classes differently).
    pub op: FftOpKind,
    /// Policy-maintained priority, refreshed by
    /// [`EvictionPolicy::charge`] on insert and on every hit (used by the
    /// cost-aware policy's aged benefit density; 0 for stateless policies).
    pub priority: f64,
}

/// Victim selection seam. Implementations must be pure functions of the
/// [`EntryMeta`] and the logical `now` — determinism of the whole store
/// rests on that.
pub trait EvictionPolicy: Send + Sync {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Eviction rank: the entry with the *lowest* rank is evicted first;
    /// ties break on the smaller entry id. `now_epoch` is the store's
    /// current job-iteration epoch.
    fn rank(&self, meta: &EntryMeta, now_epoch: u64) -> f64;

    /// Whether the entry is expired at `now_epoch` and must be unreachable
    /// regardless of capacity pressure. Expired entries are reclaimed
    /// lazily on lookup and eagerly during enforcement.
    fn is_expired(&self, meta: &EntryMeta, now_epoch: u64) -> bool {
        let _ = (meta, now_epoch);
        false
    }

    /// Refreshes `meta.priority`. Called once when the entry is inserted
    /// and again on every hit (after `hits`/`last_access_tick` are
    /// updated). Stateless policies leave the default no-op.
    fn charge(&self, meta: &mut EntryMeta) {
        let _ = meta;
    }

    /// Notifies the policy that an entry ranked `rank` was just evicted —
    /// the hook the cost-aware policy uses to advance its aging value.
    /// Called exactly once per eviction, in eviction order, under the
    /// store's enforcement lock.
    fn on_evict(&self, rank: f64) {
        let _ = rank;
    }
}

/// Evict the oldest insertion first.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl EvictionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn rank(&self, meta: &EntryMeta, _now_epoch: u64) -> f64 {
        meta.inserted_tick as f64
    }
}

/// Evict the least recently *used* entry first (hits refresh recency).
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn rank(&self, meta: &EntryMeta, _now_epoch: u64) -> f64 {
        meta.last_access_tick as f64
    }
}

/// Entries expire `ttl_epochs` job-iterations after insertion; under
/// pressure, oldest-epoch entries go first.
#[derive(Debug, Clone, Copy)]
pub struct TtlPolicy {
    /// Lifetime in epochs (job ADMM iterations across all tenants).
    pub ttl_epochs: u64,
}

impl EvictionPolicy for TtlPolicy {
    fn name(&self) -> &'static str {
        "ttl"
    }

    fn rank(&self, meta: &EntryMeta, _now_epoch: u64) -> f64 {
        meta.inserted_epoch as f64
    }

    fn is_expired(&self, meta: &EntryMeta, now_epoch: u64) -> bool {
        now_epoch.saturating_sub(meta.inserted_epoch) > self.ttl_epochs
    }
}

/// Cost-aware policy: aged benefit density in the Greedy-Dual-Size-
/// Frequency family. Every entry carries a priority
///
/// ```text
/// priority = inflation + (1 + hits) · recompute_cost / bytes
/// ```
///
/// refreshed on insert and on every hit; the store-wide `inflation` value
/// rises to each evicted victim's priority, and the eviction rank is this
/// priority plus a protected class for entries with cross-job serving
/// history (the `Provenance` signal that an entry survives content drift
/// in replicated workloads). The quotient is the paper-motivated benefit
/// density — how much USFFT recompute a resident byte buys — scaled by
/// demonstrated reuse, while the inflation term ages out entries whose
/// content has drifted past the τ gate (pure benefit density would pin
/// those forever). All inputs are logical, so victim selection stays
/// deterministic for a fixed schedule; the inflation value advances under
/// the store's enforcement lock, identically across shard layouts.
#[derive(Debug, Default)]
pub struct CostAwarePolicy {
    /// Aging value `L`: the highest victim priority evicted so far,
    /// stored as `f64` bits.
    inflation: AtomicU64,
}

impl CostAwarePolicy {
    /// The current aging value.
    fn inflation_value(&self) -> f64 {
        f64::from_bits(self.inflation.load(Ordering::Relaxed))
    }

    /// Benefit density of an entry: `(1 + hits) · recompute_cost / bytes`.
    pub fn benefit_density(meta: &EntryMeta) -> f64 {
        (1.0 + meta.hits as f64) * meta.recompute_cost / meta.bytes.max(1) as f64
    }
}

impl EvictionPolicy for CostAwarePolicy {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn rank(&self, meta: &EntryMeta, _now_epoch: u64) -> f64 {
        let class = if meta.cross_hits > 0 { 1u64 << 48 } else { 0 } as f64;
        class + meta.priority
    }

    fn charge(&self, meta: &mut EntryMeta) {
        meta.priority = self.inflation_value() + Self::benefit_density(meta);
    }

    fn on_evict(&self, rank: f64) {
        // Monotone aging: inflation only moves forward, and expired
        // victims (rank -∞) must not poison it.
        if rank.is_finite() && rank > self.inflation_value() {
            self.inflation.store(rank.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Configuration-level policy selector (`Copy`, serialisable) carried in
/// [`MemoDbConfig`](crate::db::MemoDbConfig). Custom policies plug in
/// through [`MemoDatabase::with_policy`](crate::MemoDatabase::with_policy)
/// / [`ShardedMemoDb::with_policy`](crate::ShardedMemoDb::with_policy).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// [`FifoPolicy`].
    Fifo,
    /// [`LruPolicy`].
    Lru,
    /// [`TtlPolicy`] with the given lifetime in epochs.
    Ttl {
        /// Lifetime in epochs.
        ttl_epochs: u64,
    },
    /// [`CostAwarePolicy`].
    #[default]
    CostAware,
}

impl EvictionPolicyKind {
    /// Instantiates the built-in policy this kind names.
    pub fn build(&self) -> Arc<dyn EvictionPolicy> {
        match *self {
            EvictionPolicyKind::Fifo => Arc::new(FifoPolicy),
            EvictionPolicyKind::Lru => Arc::new(LruPolicy),
            EvictionPolicyKind::Ttl { ttl_epochs } => Arc::new(TtlPolicy { ttl_epochs }),
            EvictionPolicyKind::CostAware => Arc::new(CostAwarePolicy::default()),
        }
    }
}

/// Analytic recompute-cost estimate for one memoized FFT invocation:
/// `weight(op) · n · log2(n)` over the input length. The per-op weights
/// mirror the measured `OpStats` compute-second ratios between the 1-D and
/// 2-D unequally-spaced stages (the 2-D USFFTs dominate); the analytic form
/// keeps eviction deterministic where raw timings would not be.
pub fn recompute_cost_estimate(op: FftOpKind, input_len: usize) -> f64 {
    let n = input_len.max(2) as f64;
    let weight = match op {
        FftOpKind::Fu2D | FftOpKind::Fu2DAdj => 4.0,
        FftOpKind::F2D | FftOpKind::F2DAdj => 2.0,
        FftOpKind::Fu1D | FftOpKind::Fu1DAdj => 1.0,
    };
    weight * n * n.log2()
}

/// The logical clocks of one store, shared by every stripe so tick, epoch
/// and id assignment are identical whether the scopes live in one
/// [`MemoDatabase`](crate::MemoDatabase) or are spread over the stripes of
/// a [`ShardedMemoDb`](crate::ShardedMemoDb) — the property that makes
/// eviction shard-layout-independent.
#[derive(Debug, Default)]
pub struct StoreClock {
    tick: AtomicU64,
    epoch: AtomicU64,
    next_id: AtomicU64,
}

impl StoreClock {
    /// A fresh clock at tick 0, epoch 0, id 0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Claims the next op tick.
    pub fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Reads the current op tick without advancing it. The access-trace
    /// recorder stamps records with this, so tracing never perturbs the
    /// tick stream that eviction ranking (and with it the bit-identity
    /// contracts) depends on.
    pub fn current_tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Claims the next entry id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The current epoch (job-iteration clock).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Advances the epoch by one job iteration; returns the new value.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, bytes: u64, hits: u64, cost: f64) -> EntryMeta {
        EntryMeta {
            id,
            bytes,
            inserted_tick: id,
            inserted_epoch: 0,
            last_access_tick: id,
            last_access_epoch: 0,
            cross_hits: 0,
            hits,
            recompute_cost: cost,
            origin: Provenance::solo(0),
            op: FftOpKind::Fu2D,
            priority: 0.0,
        }
    }

    #[test]
    fn budget_pressure_and_caps() {
        let b = CapacityBudget::bytes(1000).with_stripe_bytes(200);
        assert!(b.is_bounded());
        assert!((b.pressure(500, 10) - 0.5).abs() < 1e-12);
        assert!(!b.exceeded(1000, 10));
        assert!(b.exceeded(1001, 10));
        assert!(b.stripe_exceeded(201, 1));
        assert!(!b.stripe_exceeded(200, 1));

        let unbounded = CapacityBudget::unbounded();
        assert!(!unbounded.is_bounded());
        assert_eq!(unbounded.pressure(u64::MAX, u64::MAX), 0.0);

        let entries = CapacityBudget::entries(4);
        assert!(entries.exceeded(0, 5));
        assert!((entries.pressure(0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn policy_ranks_order_victims() {
        let old = meta(1, 100, 0, 50.0);
        let new = meta(9, 100, 0, 50.0);
        assert!(FifoPolicy.rank(&old, 0) < FifoPolicy.rank(&new, 0));
        assert!(LruPolicy.rank(&old, 0) < LruPolicy.rank(&new, 0));

        // Cost-aware: cheap-per-byte entries rank below expensive ones, and
        // hits make an entry sticky.
        let pol = CostAwarePolicy::default();
        let mut cheap = meta(1, 1000, 0, 10.0);
        let mut dear = meta(2, 100, 0, 10.0);
        let mut reused = meta(3, 1000, 5, 10.0);
        pol.charge(&mut cheap);
        pol.charge(&mut dear);
        pol.charge(&mut reused);
        assert!(pol.rank(&cheap, 0) < pol.rank(&dear, 0));
        assert!(pol.rank(&cheap, 0) < pol.rank(&reused, 0));
    }

    #[test]
    fn cost_aware_ages_with_evictions() {
        // After an eviction at rank L, freshly charged entries start above
        // L — stale high-density entries no longer dominate forever.
        let pol = CostAwarePolicy::default();
        let mut stale = meta(1, 100, 0, 500.0);
        pol.charge(&mut stale);
        pol.on_evict(pol.rank(&stale, 0));
        let mut fresh = meta(2, 100, 0, 500.0);
        pol.charge(&mut fresh);
        assert!(pol.rank(&fresh, 0) > pol.rank(&stale, 0));
        // Expired victims (-∞) must not poison the aging value.
        pol.on_evict(f64::NEG_INFINITY);
        let mut after = meta(3, 100, 0, 500.0);
        pol.charge(&mut after);
        assert!(pol.rank(&after, 0) >= pol.rank(&fresh, 0));
    }

    #[test]
    fn ttl_expiry_is_epoch_based() {
        let pol = TtlPolicy { ttl_epochs: 3 };
        let m = meta(0, 10, 0, 1.0);
        assert!(!pol.is_expired(&m, 3));
        assert!(pol.is_expired(&m, 4));
    }

    #[test]
    fn kind_builds_matching_policy() {
        assert_eq!(EvictionPolicyKind::Fifo.build().name(), "fifo");
        assert_eq!(EvictionPolicyKind::Lru.build().name(), "lru");
        assert_eq!(
            EvictionPolicyKind::Ttl { ttl_epochs: 2 }.build().name(),
            "ttl"
        );
        assert_eq!(EvictionPolicyKind::CostAware.build().name(), "cost-aware");
        assert_eq!(EvictionPolicyKind::default(), EvictionPolicyKind::CostAware);
    }

    #[test]
    fn cost_estimate_orders_op_classes() {
        let n = 4096;
        assert!(
            recompute_cost_estimate(FftOpKind::Fu2D, n)
                > recompute_cost_estimate(FftOpKind::F2D, n)
        );
        assert!(
            recompute_cost_estimate(FftOpKind::F2D, n)
                > recompute_cost_estimate(FftOpKind::Fu1D, n)
        );
        assert!(recompute_cost_estimate(FftOpKind::Fu1D, 0) > 0.0);
    }

    #[test]
    fn clock_is_monotone() {
        let c = StoreClock::new();
        assert_eq!(c.next_tick(), 0);
        assert_eq!(c.next_tick(), 1);
        assert_eq!(c.next_id(), 0);
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.advance_epoch(), 1);
        assert_eq!(c.epoch(), 1);
    }
}
