//! Trace replay: drive the simulated interconnect with a *recorded* store
//! access stream instead of the analytic load model.
//!
//! [`LatencyExperiment`](crate::latency::LatencyExperiment) reproduces the
//! Figure 15/16 curves from closed-form offered-load assumptions. This
//! module replays an [`AccessRecord`] stream — what `mlr-telemetry`'s
//! access trace captured from a real multi-job run — through one
//! deterministic [`LinkQueue`] per simulated memory node: each record's
//! stripe is mapped to its owning node by a placement map (see
//! [`crate::placement`]), its store-clock tick becomes a simulated arrival
//! time, and the queue charges it wait + service. The outcome is per-node
//! utilisation and a query-latency distribution produced by *actual store
//! behaviour* under the modeled contention, not by an arrival-rate guess.
//!
//! Hot-entry replication is modeled the same way the distributed store
//! models it: once an entry has served `promote_hits` replayed hits it is
//! promoted into a bounded replica set, and further hits on it cost only
//! `local_latency` instead of a trip over the owning node's link.

use crate::placement::stripes_per_node;
use mlr_sim::hardware::InterconnectSpec;
use mlr_sim::network::{LinkQueue, SharedLink};
use mlr_sim::Seconds;
use mlr_telemetry::{AccessKind, AccessRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Payload and timing model of a replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Per-node link the remote operations are charged through.
    pub interconnect: InterconnectSpec,
    /// Simulated seconds per store-clock tick (arrival spacing).
    pub tick_seconds: f64,
    /// Modeled query payload (coalesced key batch), bytes.
    pub key_bytes: f64,
    /// Modeled value payload returned by a hit / shipped by an insert,
    /// bytes (access records carry no sizes, so replay uses one
    /// representative value size).
    pub value_bytes: f64,
    /// Modeled control-message payload of evictions/expirations, bytes.
    pub control_bytes: f64,
    /// Cost of a hit served from a local replica (no link trip), seconds.
    pub local_latency: Seconds,
    /// Replayed hits after which an entry is promoted into the replica set
    /// (`0` disables replication).
    pub promote_hits: u64,
    /// Maximum number of replicated entries.
    pub replica_budget: usize,
}

impl ReplayConfig {
    /// Defaults over the given interconnect: microsecond ticks, 1 KiB
    /// coalesced queries, 64 KiB values, DRAM-ish 400 ns local hits,
    /// promotion after 2 hits into a 64-entry replica set.
    pub fn new(interconnect: InterconnectSpec) -> Self {
        Self {
            interconnect,
            tick_seconds: 1e-6,
            key_bytes: 1024.0,
            value_bytes: 64.0 * 1024.0,
            control_bytes: 64.0,
            local_latency: 0.4e-6,
            promote_hits: 2,
            replica_budget: 64,
        }
    }
}

/// One memory node's share of a replayed trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeUtilisation {
    /// Node index.
    pub node: usize,
    /// Lock stripes the placement map assigned to the node.
    pub stripes: usize,
    /// Messages charged through the node's link.
    pub messages: u64,
    /// Payload bytes charged through the node's link.
    pub bytes: f64,
    /// Seconds the node's link spent in service.
    pub busy_seconds: Seconds,
    /// Busy fraction of the replay horizon, in `[0, 1]`.
    pub utilisation: f64,
}

/// Everything a replay run produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-node link accounting, indexed by node.
    pub per_node: Vec<NodeUtilisation>,
    /// Latency of every replayed *query* (hit or miss), in replay order.
    pub query_latencies: Vec<Seconds>,
    /// Replayed hits served from the local replica set.
    pub local_hits: u64,
    /// Replayed hits that crossed a node link.
    pub remote_hits: u64,
    /// Entries promoted into the replica set.
    pub promotions: u64,
    /// Simulated end of the replay (last arrival or last link departure).
    pub horizon: Seconds,
}

impl ReplayOutcome {
    /// Nodes whose link saw at least one message.
    pub fn active_nodes(&self) -> usize {
        self.per_node.iter().filter(|n| n.messages > 0).count()
    }

    /// Mean latency of the replayed queries (0 when none were replayed).
    pub fn mean_query_latency(&self) -> Seconds {
        if self.query_latencies.is_empty() {
            0.0
        } else {
            self.query_latencies.iter().sum::<f64>() / self.query_latencies.len() as f64
        }
    }
}

/// Replays `records` through one [`LinkQueue`] per node of `placement`
/// (a stripe→node map; stripes beyond its length wrap around). Fully
/// deterministic: same records, placement and config → same outcome.
///
/// # Panics
/// Panics when `placement` is empty.
pub fn replay_trace(
    records: &[AccessRecord],
    placement: &[usize],
    config: &ReplayConfig,
) -> ReplayOutcome {
    assert!(!placement.is_empty(), "replay needs a placement map");
    let nodes = placement.iter().copied().max().unwrap_or(0) + 1;
    let link = SharedLink::from_interconnect(&config.interconnect);
    let mut queues: Vec<LinkQueue> = (0..nodes).map(|_| LinkQueue::new(link)).collect();
    let mut query_latencies = Vec::with_capacity(records.len());
    let mut hit_counts: HashMap<u64, u64> = HashMap::new();
    let mut replicas: HashMap<u64, u64> = HashMap::new();
    let (mut local_hits, mut remote_hits, mut promotions) = (0u64, 0u64, 0u64);
    let first_tick = records.first().map(|r| r.tick).unwrap_or(0);
    let mut last_arrival: Seconds = 0.0;

    for record in records {
        let arrival = record.tick.saturating_sub(first_tick) as f64 * config.tick_seconds;
        last_arrival = last_arrival.max(arrival);
        let node = placement[record.stripe as usize % placement.len()];
        match record.kind {
            AccessKind::Hit => {
                if replicas.contains_key(&record.entry) {
                    local_hits += 1;
                    query_latencies.push(config.local_latency);
                } else {
                    remote_hits += 1;
                    let bytes = config.key_bytes + config.value_bytes;
                    query_latencies.push(queues[node].charge(arrival, bytes));
                }
                let hits = hit_counts.entry(record.entry).or_insert(0);
                *hits += 1;
                if config.promote_hits > 0
                    && *hits >= config.promote_hits
                    && config.replica_budget > 0
                    && !replicas.contains_key(&record.entry)
                {
                    if replicas.len() >= config.replica_budget {
                        // Deterministic victim: fewest replayed hits, ties on
                        // the larger entry id (older entries win ties).
                        if let Some((&victim, _)) = replicas
                            .iter()
                            .min_by(|(ae, ah), (be, bh)| ah.cmp(bh).then(be.cmp(ae)))
                        {
                            replicas.remove(&victim);
                        }
                    }
                    replicas.insert(record.entry, *hits);
                    promotions += 1;
                }
            }
            AccessKind::Miss => {
                query_latencies.push(queues[node].charge(arrival, config.key_bytes));
            }
            AccessKind::Insert => {
                let bytes = config.key_bytes + config.value_bytes;
                let _ = queues[node].charge(arrival, bytes);
            }
            AccessKind::Evict | AccessKind::Expired => {
                let _ = queues[node].charge(arrival, config.control_bytes);
                replicas.remove(&record.entry);
            }
            AccessKind::Lost => {
                // The entry vanished with its crashed node: no link traffic
                // (there is no node to talk to), the replica just lapses.
                replicas.remove(&record.entry);
            }
        }
    }

    let horizon = queues
        .iter()
        .map(|q| q.next_free())
        .fold(last_arrival, f64::max);
    let stripes = stripes_per_node(placement, nodes);
    let per_node = queues
        .iter()
        .enumerate()
        .map(|(node, q)| NodeUtilisation {
            node,
            stripes: stripes[node],
            messages: q.messages(),
            bytes: q.bytes(),
            busy_seconds: q.busy_seconds(),
            utilisation: q.utilisation(horizon),
        })
        .collect();
    ReplayOutcome {
        per_node,
        query_latencies,
        local_hits,
        remote_hits,
        promotions,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place_stripes;

    fn record(entry: u64, stripe: u32, kind: AccessKind, tick: u64) -> AccessRecord {
        AccessRecord {
            entry,
            op: 0,
            stripe,
            kind,
            tick,
        }
    }

    fn config() -> ReplayConfig {
        ReplayConfig::new(InterconnectSpec::slingshot11())
    }

    fn sample_trace() -> Vec<AccessRecord> {
        let mut records = Vec::new();
        let mut tick = 0u64;
        for round in 0..6u64 {
            for stripe in 0..8u32 {
                let entry = u64::from(stripe) + 1;
                let kind = if round == 0 {
                    AccessKind::Insert
                } else {
                    AccessKind::Hit
                };
                records.push(record(entry, stripe, kind, tick));
                tick += 1;
            }
        }
        records.push(record(0, 3, AccessKind::Miss, tick));
        records
    }

    #[test]
    fn replay_spreads_load_and_is_deterministic() {
        let placement = place_stripes(8, &[1.0; 4]);
        let outcome = replay_trace(&sample_trace(), &placement, &config());
        assert!(outcome.active_nodes() >= 2, "load stuck on one node");
        assert_eq!(outcome.per_node.len(), 4);
        let again = replay_trace(&sample_trace(), &placement, &config());
        assert_eq!(outcome.query_latencies, again.query_latencies);
        assert_eq!(outcome.local_hits, again.local_hits);
    }

    #[test]
    fn replicated_hits_cost_less_than_remote_ones() {
        let placement = place_stripes(8, &[1.0; 2]);
        let cfg = config();
        let outcome = replay_trace(&sample_trace(), &placement, &cfg);
        assert!(outcome.local_hits > 0, "promotion never engaged");
        assert!(outcome.remote_hits > 0, "every hit served locally");
        let min_remote = outcome
            .query_latencies
            .iter()
            .copied()
            .filter(|&l| l > cfg.local_latency)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_remote > cfg.local_latency,
            "remote probes must cost strictly more than local ones"
        );
        assert!(outcome.query_latencies.contains(&cfg.local_latency));
    }

    #[test]
    fn replica_budget_is_bounded() {
        // 100 distinct entries, each hit twice, through a 4-entry budget:
        // promotions happen but the set never grows past the budget —
        // replays stay O(budget) whatever the trace length.
        let mut records = Vec::new();
        for e in 0..100u64 {
            for i in 0..3u64 {
                records.push(record(e + 1, (e % 8) as u32, AccessKind::Hit, 3 * e + i));
            }
        }
        let mut cfg = config();
        cfg.replica_budget = 4;
        let placement = place_stripes(8, &[1.0; 2]);
        let outcome = replay_trace(&records, &placement, &cfg);
        assert!(outcome.promotions >= 4);
        assert!(outcome.local_hits > 0);
    }
}
