//! Multi-GPU scaling of the FFT operators and of the whole ADMM iteration.
//!
//! Chunks are distributed evenly across GPUs (round-robin over the chunk
//! grid, §5.2). Within a node the only extra cost is a small NVLink gather of
//! chunk boundaries; across nodes every stage also pays an all-to-all-style
//! exchange of the redistributed chunks over the interconnect, which is what
//! flattens (and slightly reverses) the speedup beyond one node in
//! Figure 14.

use mlr_lamino::chunk::ChunkGrid;
use mlr_sim::workload::AdmmWorkload;
use mlr_sim::{CostModel, Seconds};
use serde::{Deserialize, Serialize};

/// Scaling result for one GPU count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of GPUs used.
    pub gpus: usize,
    /// Number of nodes those GPUs span.
    pub nodes: usize,
    /// Simulated time of one `F_u1D` application over the whole volume.
    pub fu1d_seconds: Seconds,
    /// Simulated time of one `F*_u1D` application.
    pub fu1d_adj_seconds: Seconds,
    /// Simulated time of one `F_u2D` application.
    pub fu2d_seconds: Seconds,
    /// Simulated time of one `F*_u2D` application.
    pub fu2d_adj_seconds: Seconds,
    /// Simulated time of the full ADMM run (all iterations).
    pub overall_seconds: Seconds,
}

/// The scaling model.
pub struct ScalingModel {
    workload: AdmmWorkload,
    iterations: usize,
    gpus_per_node: usize,
}

impl ScalingModel {
    /// Creates a scaling model for the given workload and ADMM iteration
    /// count on Polaris-like nodes (4 GPUs per node).
    pub fn new(workload: AdmmWorkload, iterations: usize) -> Self {
        Self {
            workload,
            iterations,
            gpus_per_node: 4,
        }
    }

    /// Number of nodes needed for `gpus` GPUs.
    pub fn nodes_for(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.gpus_per_node).max(1)
    }

    /// How evenly the chunk grid divides over `gpus` GPUs: the parallel time
    /// is governed by the GPU with the most chunks.
    fn load_imbalance(&self, gpus: usize) -> f64 {
        let grid = ChunkGrid::new(self.workload.size.n, self.workload.size.chunk_size);
        let chunks = grid.num_chunks();
        let max_per_gpu = chunks.div_ceil(gpus);
        let ideal = chunks as f64 / gpus as f64;
        max_per_gpu as f64 / ideal
    }

    /// Per-stage communication overhead when the stage's output must be
    /// redistributed for the next stage (chunks are partitioned along
    /// different axes per stage, so scaling beyond one GPU implies an
    /// exchange). Within a node this crosses NVLink; across nodes it crosses
    /// the interconnect.
    fn exchange_seconds(&self, cost: &CostModel, gpus: usize) -> Seconds {
        if gpus <= 1 {
            return 0.0;
        }
        let total_bytes = 16.0 * self.workload.size.voxels() as f64;
        let nodes = self.nodes_for(gpus);
        // Each GPU sends/receives its share; the slowest link dominates.
        let per_gpu_bytes = total_bytes / gpus as f64;
        if nodes == 1 {
            cost.nvlink_time(per_gpu_bytes)
        } else {
            // Cross-node fraction of the exchange goes over the interconnect,
            // whose per-node injection bandwidth is shared by its GPUs.
            let cross_fraction = 1.0 - 1.0 / nodes as f64;
            let per_node_bytes = total_bytes * cross_fraction / nodes as f64;
            cost.nvlink_time(per_gpu_bytes) + cost.network_bulk_time(per_node_bytes)
        }
    }

    /// Simulated time of one whole-volume application of an unequally spaced
    /// operator when its chunks are spread over `gpus` GPUs.
    fn stage_seconds(&self, cost: &CostModel, single_gpu: Seconds, gpus: usize) -> Seconds {
        let imbalance = self.load_imbalance(gpus);
        single_gpu / gpus as f64 * imbalance + self.exchange_seconds(cost, gpus)
    }

    /// Computes the scaling point for `gpus` GPUs.
    pub fn point(&self, gpus: usize) -> ScalingPoint {
        assert!(gpus > 0, "need at least one GPU");
        let nodes = self.nodes_for(gpus);
        let cost = CostModel::polaris(nodes);
        // Per-stage single-GPU time includes the chunk traffic over PCIe
        // (Figure 1's pipeline: the longer of compute and transfer is
        // exposed), which is what the multi-GPU distribution divides.
        let xfer = cost.pcie_time(self.workload.stage_transfer_bytes());
        let fu1d_1 = self.workload.fu1d_time(&cost).max(xfer);
        let fu2d_1 = self.workload.fu2d_time(&cost).max(xfer);

        let fu1d = self.stage_seconds(&cost, fu1d_1, gpus);
        let fu2d = self.stage_seconds(&cost, fu2d_1, gpus);

        // One LSP inner iteration after cancellation: Fu1D, Fu2D, F*u2D,
        // F*u1D (adjoints cost the same as the forward operators), plus the
        // CG update which stays on the CPU and does not scale with GPUs.
        let lsp_inner = 2.0 * fu1d + 2.0 * fu2d + self.workload.cg_update_time(&cost);
        let lsp = lsp_inner * self.workload.n_inner as f64;
        let iteration = lsp
            + self.workload.rsp_time(&cost)
            + self.workload.lambda_update_time(&cost)
            + self.workload.penalty_update_time(&cost);
        ScalingPoint {
            gpus,
            nodes,
            fu1d_seconds: fu1d,
            fu1d_adj_seconds: fu1d,
            fu2d_seconds: fu2d,
            fu2d_adj_seconds: fu2d,
            overall_seconds: iteration * self.iterations as f64,
        }
    }

    /// Computes the scaling curve for a list of GPU counts (Figure 14 uses
    /// 1, 2, 4, 8, 16).
    pub fn sweep(&self, gpu_counts: &[usize]) -> Vec<ScalingPoint> {
        gpu_counts.iter().map(|&g| self.point(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_sim::workload::ProblemSize;

    fn model() -> ScalingModel {
        ScalingModel::new(AdmmWorkload::new(ProblemSize::paper_1k()), 60)
    }

    #[test]
    fn single_gpu_matches_workload_model() {
        let m = model();
        let p = m.point(1);
        assert_eq!(p.nodes, 1);
        let cost = CostModel::polaris(1);
        let expected = m
            .workload
            .fu1d_time(&cost)
            .max(cost.pcie_time(m.workload.stage_transfer_bytes()));
        assert!((p.fu1d_seconds - expected).abs() < 1e-9);
    }

    #[test]
    fn intra_node_scaling_speeds_up_operators() {
        // Figure 14: Fu1D drops from ~1.1 s at 1 GPU to ~0.5 s at 16 GPUs
        // (2.2x); speedup is clearly sublinear.
        let m = model();
        let p1 = m.point(1);
        let p4 = m.point(4);
        let p16 = m.point(16);
        assert!(p4.fu1d_seconds < p1.fu1d_seconds);
        assert!(p16.fu1d_seconds < p1.fu1d_seconds);
        let speedup16 = p1.fu1d_seconds / p16.fu1d_seconds;
        assert!(speedup16 > 1.5 && speedup16 < 16.0, "speedup {speedup16}");
    }

    #[test]
    fn crossing_the_node_boundary_gives_diminishing_returns() {
        // Figure 14: 2 -> 4 GPUs gives a solid speedup, 4 -> 8 GPUs (now two
        // nodes) gives little or nothing.
        let m = model();
        let p2 = m.point(2);
        let p4 = m.point(4);
        let p8 = m.point(8);
        let s_2_to_4 = p2.overall_seconds / p4.overall_seconds;
        let s_4_to_8 = p4.overall_seconds / p8.overall_seconds;
        assert!(s_2_to_4 > 1.2, "2->4 speedup {s_2_to_4}");
        assert!(s_4_to_8 < s_2_to_4, "4->8 {s_4_to_8} vs 2->4 {s_2_to_4}");
        assert!(
            s_4_to_8 < 1.15,
            "4->8 should be nearly flat, got {s_4_to_8}"
        );
    }

    #[test]
    fn sweep_covers_requested_counts() {
        let m = model();
        let sweep = m.sweep(&[1, 2, 4, 8, 16]);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[3].gpus, 8);
        assert_eq!(sweep[3].nodes, 2);
        assert_eq!(sweep[4].nodes, 4);
        // All times positive and finite.
        for p in &sweep {
            assert!(p.overall_seconds.is_finite() && p.overall_seconds > 0.0);
            assert!(p.fu2d_seconds >= p.fu1d_seconds);
        }
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = model().point(0);
    }
}
