//! Deterministic, network-cost-aware stripe→node placement.
//!
//! The distributed memo tier spreads the store's lock stripes over N
//! simulated memory nodes. Placement is a *pure function* of the stripe
//! count and the nodes' link capacities — no randomness, no insertion
//! order — so the same topology always produces the same map, and the map
//! never affects store semantics (which entries are resident, which probes
//! hit); it only decides which node's link a remote operation is charged
//! through.
//!
//! The criterion is greedy load balancing weighted by link capacity: each
//! stripe (in index order) goes to the node whose *relative* load after
//! accepting it — assigned stripes per unit of link bandwidth — is
//! smallest, ties broken on the lower node index. With uniform capacities
//! this degenerates to round-robin; with heterogeneous links, faster nodes
//! receive proportionally more stripes, which equalises the expected
//! per-link service time of a uniformly spread access stream.

/// Assigns each of `stripes` lock stripes to one of `capacities.len()`
/// memory nodes; `capacities[j]` is node `j`'s link capacity (any unit,
/// only ratios matter). Returns the stripe→node map.
///
/// Deterministic: the same `(stripes, capacities)` always yields the same
/// map. Non-positive capacities are treated as a minimal epsilon so a
/// degenerate node still participates rather than dividing by zero.
///
/// # Panics
/// Panics when `capacities` is empty.
pub fn place_stripes(stripes: usize, capacities: &[f64]) -> Vec<usize> {
    assert!(
        !capacities.is_empty(),
        "placement needs at least one memory node"
    );
    const EPS: f64 = 1e-12;
    let mut assigned = vec![0.0f64; capacities.len()];
    let mut map = Vec::with_capacity(stripes);
    for _ in 0..stripes {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (j, &cap) in capacities.iter().enumerate() {
            // Relative load of node j if it accepted this stripe.
            let cost = (assigned[j] + 1.0) / cap.max(EPS);
            if cost < best_cost {
                best_cost = cost;
                best = j;
            }
        }
        assigned[best] += 1.0;
        map.push(best);
    }
    map
}

/// Per-node stripe counts of a placement map over `nodes` nodes.
pub fn stripes_per_node(placement: &[usize], nodes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; nodes];
    for &node in placement {
        if node < nodes {
            counts[node] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_capacities_round_robin() {
        let map = place_stripes(8, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(map, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(stripes_per_node(&map, 4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn faster_links_receive_more_stripes() {
        let map = place_stripes(30, &[2.0, 1.0]);
        let counts = stripes_per_node(&map, 2);
        assert_eq!(counts.iter().sum::<usize>(), 30);
        assert_eq!(counts[0], 20, "2:1 capacity ratio must place 2:1 stripes");
        assert_eq!(counts[1], 10);
    }

    #[test]
    fn placement_is_deterministic() {
        let caps = [3.0, 1.0, 2.0];
        assert_eq!(place_stripes(17, &caps), place_stripes(17, &caps));
    }

    #[test]
    fn degenerate_capacity_still_participates() {
        let map = place_stripes(4, &[0.0]);
        assert_eq!(map, vec![0, 0, 0, 0]);
    }
}
