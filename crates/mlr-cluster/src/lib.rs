//! # mlr-cluster
//!
//! Multi-GPU and multi-node scaling of ADMM-FFT (§5.2 of the paper) plus the
//! cluster-level analyses of the evaluation: per-operator scaling over GPU
//! counts (Figure 14), interconnect utilisation towards the memory node
//! (Figure 15) and the memoization-query latency distribution under
//! contention (Figure 16).
//!
//! The original ADMM-FFT implementation is single-GPU; mLR distributes the
//! independent chunks of each FFT stage across GPUs within and across nodes.
//! The scaling model here works on top of `mlr-sim`'s cost model: chunk work
//! is divided over GPUs, and the diminishing returns beyond one node come
//! from inter-node communication — exactly the effect Figure 14 reports.

#![warn(missing_docs)]

pub mod latency;
pub mod placement;
pub mod replay;
pub mod scaling;

pub use latency::{latency_cdf, LatencyExperiment};
pub use placement::{place_stripes, stripes_per_node};
pub use replay::{replay_trace, NodeUtilisation, ReplayConfig, ReplayOutcome};
pub use scaling::{ScalingModel, ScalingPoint};
