//! Memoization-query latency and interconnect utilisation under contention.
//!
//! Figures 15 and 16: with a single memory node, adding compute nodes raises
//! the offered load on the memory node's injection link; utilisation
//! saturates around three nodes (12 GPUs) and the query-latency distribution
//! develops a long tail (at 16 GPUs, 43 % of queries exceed 100 ms in the
//! paper's measurement).

use mlr_math::rng::seeded;
use mlr_math::stats::Ecdf;
use mlr_sim::hardware::InterconnectSpec;
use mlr_sim::network::{offered_load_gbps, SharedLink};
use serde::{Deserialize, Serialize};

/// Configuration of the contention experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyExperiment {
    /// Memoization queries each GPU issues per second (driven by how fast it
    /// processes chunks).
    pub queries_per_gpu_per_s: f64,
    /// Encoded-key payload per query in bytes.
    pub query_bytes: f64,
    /// Returned-value payload per (successful) query in bytes.
    pub value_bytes: f64,
    /// Number of latency samples to draw per configuration.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LatencyExperiment {
    fn default() -> Self {
        // Each GPU processes a few chunks per second and a retrieved value is
        // a chunk-sized COMPLEX64 array (tens of MB), so per-GPU demand on
        // the memory node is on the order of 2 GB/s — which is what makes the
        // single shared link saturate at about three nodes (12 GPUs), the
        // knee the paper reports in Figure 15.
        Self {
            queries_per_gpu_per_s: 25.0,
            query_bytes: 4096.0,
            value_bytes: 80.0 * 1024.0 * 1024.0,
            samples: 4000,
            seed: 0x1a7e,
        }
    }
}

impl LatencyExperiment {
    /// Interconnect utilisation (0–1) of the memory-node link for a given
    /// number of GPUs (Figure 15's y-axis).
    pub fn utilisation(&self, gpus: usize) -> f64 {
        let link = SharedLink::from_interconnect(&InterconnectSpec::slingshot11());
        let offered = offered_load_gbps(
            gpus,
            self.queries_per_gpu_per_s,
            self.query_bytes,
            self.value_bytes,
        );
        link.utilisation(offered)
    }

    /// Draws query-latency samples (seconds) for a given number of GPUs.
    pub fn sample_latencies(&self, gpus: usize) -> Vec<f64> {
        let link = SharedLink::from_interconnect(&InterconnectSpec::slingshot11());
        let rho = self.utilisation(gpus);
        let mut rng = seeded(self.seed ^ gpus as u64);
        (0..self.samples)
            .map(|_| link.sample_latency(&mut rng, self.query_bytes + self.value_bytes, rho))
            .collect()
    }

    /// The latency CDF for a given number of GPUs (Figure 16's curves).
    pub fn cdf(&self, gpus: usize) -> Ecdf {
        Ecdf::new(&self.sample_latencies(gpus))
    }

    /// Fraction of queries slower than `threshold` seconds.
    pub fn fraction_slower_than(&self, gpus: usize, threshold: f64) -> f64 {
        1.0 - self.cdf(gpus).eval(threshold)
    }
}

/// Convenience: the latency CDF curve as `(latency_us, cumulative_fraction)`
/// pairs for plotting.
pub fn latency_cdf(experiment: &LatencyExperiment, gpus: usize) -> Vec<(f64, f64)> {
    experiment
        .cdf(gpus)
        .curve()
        .into_iter()
        .map(|(s, f)| (s * 1e6, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_increases_and_saturates() {
        let e = LatencyExperiment::default();
        let u1 = e.utilisation(1);
        let u4 = e.utilisation(4);
        let u12 = e.utilisation(12);
        let u16 = e.utilisation(16);
        assert!(u1 < u4 && u4 < u12);
        assert!(u12 > 0.85, "12 GPUs should approach saturation, got {u12}");
        assert!(u16 >= u12);
        assert!(u16 <= 1.0);
    }

    #[test]
    fn latency_distribution_shifts_right_with_gpus() {
        let e = LatencyExperiment {
            samples: 1500,
            ..Default::default()
        };
        let median = |gpus: usize| e.cdf(gpus).quantile(0.5);
        assert!(median(16) > median(1), "{} vs {}", median(16), median(1));
        // Tail: a substantial fraction of queries become very slow at 16 GPUs
        // while almost none are at 1 GPU (the Figure 16 shape).
        let slow_threshold = 20.0 * median(1);
        let tail_1 = e.fraction_slower_than(1, slow_threshold);
        let tail_16 = e.fraction_slower_than(16, slow_threshold);
        assert!(tail_1 < 0.10, "tail at 1 GPU {tail_1}");
        assert!(tail_16 > 0.25, "tail at 16 GPUs {tail_16}");
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let e = LatencyExperiment {
            samples: 500,
            ..Default::default()
        };
        let curve = latency_cdf(&e, 8);
        assert_eq!(curve.len(), 500);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let e = LatencyExperiment {
            samples: 100,
            ..Default::default()
        };
        assert_eq!(e.sample_latencies(4), e.sample_latencies(4));
    }
}
