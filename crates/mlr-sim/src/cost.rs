//! Analytic cost model.
//!
//! Translates the operations the mLR pipeline performs into simulated
//! seconds on the configured hardware. Each model is deliberately simple —
//! a bandwidth/FLOP roofline plus fixed overheads — because the paper's
//! results are *ratios* between configurations running on the same hardware;
//! what matters is that the relative cost of FFT compute vs. PCIe transfer
//! vs. remote lookup vs. SSD I/O is in proportion.

use crate::hardware::ClusterSpec;
use crate::transfer_seconds;
use crate::Seconds;
use serde::{Deserialize, Serialize};

/// Efficiency factors applied on top of nominal hardware capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Fraction of GPU peak FLOP/s an FFT kernel sustains (cuFFT-style
    /// kernels are memory-bound; 10–20 % of FP32 peak is realistic).
    pub gpu_fft: f64,
    /// Fraction of PCIe peak a pinned-memory cudaMemcpy sustains.
    pub pcie: f64,
    /// Fraction of interconnect peak an RDMA transfer sustains (before the
    /// payload-size penalty).
    pub network: f64,
    /// Fraction of SSD peak sequential bandwidth sustained.
    pub ssd: f64,
    /// Fraction of DRAM peak a memcpy-like CPU kernel sustains.
    pub dram: f64,
    /// Fraction of CPU peak FLOP/s vectorised CPU math sustains.
    pub cpu: f64,
}

impl Default for Efficiency {
    fn default() -> Self {
        Self {
            gpu_fft: 0.12,
            pcie: 0.80,
            network: 0.85,
            ssd: 0.85,
            dram: 0.65,
            cpu: 0.55,
        }
    }
}

/// The cost model: cluster spec + efficiency factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Hardware being modelled.
    pub cluster: ClusterSpec,
    /// Efficiency factors.
    pub efficiency: Efficiency,
}

impl CostModel {
    /// Cost model for a Polaris-like cluster of `num_nodes` nodes.
    pub fn polaris(num_nodes: usize) -> Self {
        Self {
            cluster: ClusterSpec::polaris(num_nodes),
            efficiency: Efficiency::default(),
        }
    }

    // ------------------------------------------------------------- compute

    /// Time for a GPU kernel performing `flops` floating-point operations
    /// and touching `bytes` of HBM — a roofline max of the two, plus launch
    /// overhead.
    pub fn gpu_kernel_time(&self, flops: f64, bytes: f64) -> Seconds {
        let gpu = &self.cluster.node.gpu;
        let compute = flops / (gpu.fp32_tflops * 1e12 * self.efficiency.gpu_fft);
        let mem = transfer_seconds(bytes, gpu.hbm_gbps);
        compute.max(mem) + gpu.kernel_launch_us * 1e-6
    }

    /// Time for a batched FFT on the GPU: `batch` transforms of `n` complex
    /// points each (radix-2 cost model, `5·n·log2(n)` real FLOPs per
    /// transform, 16 bytes per complex element streamed three times).
    pub fn gpu_fft_time(&self, n: usize, batch: usize) -> Seconds {
        if n <= 1 || batch == 0 {
            return 0.0;
        }
        let flops = 5.0 * n as f64 * (n as f64).log2() * batch as f64;
        let bytes = 3.0 * 16.0 * n as f64 * batch as f64;
        self.gpu_kernel_time(flops, bytes)
    }

    /// Time for an element-wise GPU operation over `elems` complex elements
    /// (e.g. the fused frequency-domain subtraction of Algorithm 2).
    pub fn gpu_elementwise_time(&self, elems: usize) -> Seconds {
        self.gpu_kernel_time(2.0 * elems as f64, 2.0 * 16.0 * elems as f64)
    }

    /// Time for a CPU element-wise pass over `elems` elements of
    /// `bytes_per_elem` bytes performing `flops_per_elem` operations each,
    /// parallelised over all cores. This models the frequency-domain
    /// COMPLEX64 subtraction the paper measures as a 5.1 % slowdown when it
    /// runs on the CPU instead of the GPU.
    pub fn cpu_elementwise_time(
        &self,
        elems: usize,
        flops_per_elem: f64,
        bytes_per_elem: f64,
    ) -> Seconds {
        let node = &self.cluster.node;
        let flops = elems as f64 * flops_per_elem;
        let bytes = elems as f64 * bytes_per_elem;
        let compute =
            flops / (node.cpu_cores as f64 * node.cpu_core_gflops * 1e9 * self.efficiency.cpu);
        let mem = transfer_seconds(bytes, node.dram_gbps * self.efficiency.dram);
        compute.max(mem)
    }

    // ------------------------------------------------------------ movement

    /// Host↔GPU transfer time over PCIe.
    pub fn pcie_time(&self, bytes: f64) -> Seconds {
        transfer_seconds(bytes, self.cluster.node.pcie_gbps * self.efficiency.pcie) + 10e-6
    }

    /// GPU↔GPU transfer time over NVLink (same node).
    pub fn nvlink_time(&self, bytes: f64) -> Seconds {
        transfer_seconds(
            bytes,
            self.cluster.node.nvlink_gbps * self.efficiency.network,
        ) + 5e-6
    }

    /// One message over the inter-node interconnect with the given payload
    /// size; accounts for the payload-size utilisation penalty that key
    /// coalescing addresses.
    pub fn network_message_time(&self, payload_bytes: f64) -> Seconds {
        let link = &self.cluster.interconnect;
        let eff_bw = link.injection_gb_per_s()
            * self.efficiency.network
            * link.payload_utilisation(payload_bytes).max(1e-3);
        transfer_seconds(payload_bytes, eff_bw) + (link.latency_us + link.per_message_us) * 1e-6
    }

    /// Bulk (streaming, large-payload) network transfer time.
    pub fn network_bulk_time(&self, bytes: f64) -> Seconds {
        let link = &self.cluster.interconnect;
        transfer_seconds(bytes, link.injection_gb_per_s() * self.efficiency.network)
            + link.latency_us * 1e-6
    }

    /// SSD read time.
    pub fn ssd_read_time(&self, bytes: f64) -> Seconds {
        let ssd = &self.cluster.node.ssd;
        transfer_seconds(bytes, ssd.read_gbps * self.efficiency.ssd) + ssd.latency_us * 1e-6
    }

    /// SSD write time.
    pub fn ssd_write_time(&self, bytes: f64) -> Seconds {
        let ssd = &self.cluster.node.ssd;
        transfer_seconds(bytes, ssd.write_gbps * self.efficiency.ssd) + ssd.latency_us * 1e-6
    }

    /// CPU DRAM copy time (e.g. staging a chunk for the memoization cache).
    pub fn dram_copy_time(&self, bytes: f64) -> Seconds {
        transfer_seconds(bytes, self.cluster.node.dram_gbps * self.efficiency.dram)
    }

    // ---------------------------------------------------------- memoization

    /// CNN-encoder inference time on the CPU for a chunk of `elems` complex
    /// elements. The paper reports INT8 + AVX-512 inference costing < 1 % of
    /// total execution time; the model charges the conv FLOPs at CPU
    /// throughput with an INT8 speedup factor.
    pub fn cnn_encode_time(&self, elems: usize) -> Seconds {
        // The encoder's first conv layer is strided and followed by pooling,
        // so the per-input-element cost is small (~20 FLOPs/element reach the
        // dense layers); INT8 + AVX-512 vectorisation credits a further 4×.
        let flops = 20.0 * elems as f64 / 4.0;
        let node = &self.cluster.node;
        flops / (node.cpu_cores as f64 * node.cpu_core_gflops * 1e9 * self.efficiency.cpu)
    }

    /// Index-database (ANN) query time on the memory node for a batch of
    /// `batch` keys of dimension `dim` against `db_size` stored keys using an
    /// IVF index probing `nprobe` clusters. Calibrated so one query against
    /// one million 60-d keys costs ~0.2 ms (the paper's measurement).
    pub fn ann_query_time(
        &self,
        db_size: usize,
        dim: usize,
        batch: usize,
        nprobe: usize,
    ) -> Seconds {
        if batch == 0 {
            return 0.0;
        }
        let mem = &self.cluster.memory_node;
        // Scanned candidates ≈ db_size * nprobe / nlist, with nlist ~ sqrt(db).
        let nlist = (db_size as f64).sqrt().max(1.0);
        let scanned = (db_size as f64 * nprobe as f64 / nlist).max(nlist);
        let flops_per_key = 2.0 * dim as f64;
        let total_flops = (scanned + nlist) * flops_per_key * batch as f64;
        // Batched queries use multi-threaded scan on the memory node.
        let threads = mem.cpu_cores.min(batch.max(1)) as f64;
        total_flops / (threads * 30.0e9)
    }

    /// Value-database (KV store) access time on the memory node for a value
    /// of `bytes`, modelled as a fixed software latency plus a DRAM streaming
    /// term. The paper reports P99 < 0.5 ms for its Redis deployment.
    pub fn kv_access_time(&self, bytes: f64) -> Seconds {
        let mem = &self.cluster.memory_node;
        150e-6 + transfer_seconds(bytes, mem.dram_gbps * 0.5)
    }

    // -------------------------------------------------------------- derived

    /// Bytes of a chunk of `elems` COMPLEX64 elements.
    pub fn complex_bytes(elems: usize) -> f64 {
        16.0 * elems as f64
    }

    /// Time for the full "transfer chunk to GPU, run USFFT, transfer back"
    /// pipeline stage of Figure 1, *without* overlap.
    pub fn chunk_fft_roundtrip(&self, elems: usize, fft_n: usize, fft_batch: usize) -> Seconds {
        let bytes = Self::complex_bytes(elems);
        self.pcie_time(bytes) + self.gpu_fft_time(fft_n, fft_batch) + self.pcie_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::polaris(1)
    }

    #[test]
    fn gpu_fft_scales_superlinearly() {
        let m = model();
        let t1k = m.gpu_fft_time(1024, 1024);
        let t2k = m.gpu_fft_time(2048, 2048);
        assert!(t1k > 0.0);
        assert!(t2k > 3.0 * t1k, "t1k={t1k} t2k={t2k}");
    }

    #[test]
    fn pcie_slower_than_nvlink_and_network_has_latency() {
        let m = model();
        let bytes = 64.0 * 1024.0 * 1024.0;
        assert!(m.pcie_time(bytes) > m.nvlink_time(bytes));
        // A tiny message is dominated by latency, not bandwidth.
        let tiny = m.network_message_time(64.0);
        assert!(tiny > 3.0e-6);
        // Coalesced 4 KB messages are far more efficient per byte.
        let per_byte_small = m.network_message_time(256.0) / 256.0;
        let per_byte_4k = m.network_message_time(4096.0) / 4096.0;
        assert!(per_byte_small > 5.0 * per_byte_4k);
    }

    #[test]
    fn ssd_slower_than_network_bulk() {
        let m = model();
        let bytes = 1e9;
        // The paper's premise: the memory node over Slingshot beats local SSD.
        assert!(m.ssd_read_time(bytes) > m.network_bulk_time(bytes));
        assert!(m.ssd_write_time(bytes) > m.ssd_read_time(bytes));
    }

    #[test]
    fn ann_query_calibration() {
        let m = model();
        // ~0.2 ms for a single query against 1M keys of dim 60.
        let t = m.ann_query_time(1_000_000, 60, 1, 8);
        assert!(t > 0.02e-3 && t < 2.0e-3, "t={t}");
        // Batched queries amortise.
        let t_batch = m.ann_query_time(1_000_000, 60, 64, 8);
        assert!(t_batch < 64.0 * t);
        assert_eq!(m.ann_query_time(1_000_000, 60, 0, 8), 0.0);
    }

    #[test]
    fn kv_access_sub_millisecond() {
        let m = model();
        let t = m.kv_access_time((1u64 << 20) as f64);
        assert!(t < 0.5e-3, "t={t}");
    }

    #[test]
    fn cnn_encode_is_cheap_relative_to_fft() {
        let m = model();
        let chunk_elems = 16 * 1024 * 1024;
        let encode = m.cnn_encode_time(chunk_elems);
        let fft = m.gpu_fft_time(1024, 16 * 1024);
        // The paper: encoding < 1 % of execution; here just require it to be
        // much cheaper than the FFT it replaces.
        assert!(encode < fft, "encode={encode} fft={fft}");
    }

    #[test]
    fn cpu_complex_subtraction_costlier_than_gpu() {
        let m = model();
        let elems = 1024 * 1024 * 64;
        let cpu = m.cpu_elementwise_time(elems, 2.0, 32.0);
        let gpu = m.gpu_elementwise_time(elems);
        assert!(cpu > gpu, "cpu={cpu} gpu={gpu}");
    }

    #[test]
    fn roundtrip_includes_both_transfers() {
        let m = model();
        let elems = 1 << 20;
        let rt = m.chunk_fft_roundtrip(elems, 1024, 1024);
        let fft = m.gpu_fft_time(1024, 1024);
        let xfer = m.pcie_time(CostModel::complex_bytes(elems));
        assert!((rt - (fft + 2.0 * xfer)).abs() < 1e-12);
    }
}
