//! Tiered-memory accounting.
//!
//! Tracks named allocations across the memory tiers (GPU HBM, CPU DRAM,
//! local SSD, the remote memory node) over simulated time, producing the
//! RSS-over-time traces of Figure 13 and the per-variable breakdown of
//! Figure 2. The offload planner in `mlr-offload` uses the same tracker to
//! check that a candidate plan fits the configured DRAM capacity.

use crate::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Memory tier a variable can live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemTier {
    /// GPU HBM.
    GpuHbm,
    /// Host DRAM.
    CpuDram,
    /// Local NVMe SSD.
    Ssd,
    /// The remote memory node.
    Remote,
}

impl MemTier {
    /// All tiers.
    pub const ALL: [MemTier; 4] = [
        MemTier::GpuHbm,
        MemTier::CpuDram,
        MemTier::Ssd,
        MemTier::Remote,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MemTier::GpuHbm => "GPU HBM",
            MemTier::CpuDram => "CPU DRAM",
            MemTier::Ssd => "SSD",
            MemTier::Remote => "remote memory",
        }
    }
}

/// One point in a tier's usage trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsagePoint {
    /// Simulated time.
    pub time: Seconds,
    /// Bytes resident in the tier immediately after the event at `time`.
    pub bytes: u64,
}

/// Tracks named allocations across tiers over simulated time.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    allocations: HashMap<String, (u64, MemTier)>,
    current: HashMap<MemTier, u64>,
    peak: HashMap<MemTier, u64>,
    traces: HashMap<MemTier, Vec<UsagePoint>>,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes` for variable `name` in `tier` at time `t`.
    ///
    /// # Panics
    /// Panics if `name` is already allocated (free or move it first).
    pub fn alloc(&mut self, name: &str, bytes: u64, tier: MemTier, t: Seconds) {
        assert!(
            !self.allocations.contains_key(name),
            "variable {name} is already allocated"
        );
        self.allocations.insert(name.to_string(), (bytes, tier));
        self.add(tier, bytes as i64, t);
    }

    /// Frees variable `name` at time `t`.
    ///
    /// # Panics
    /// Panics if `name` is not allocated.
    pub fn free(&mut self, name: &str, t: Seconds) {
        let (bytes, tier) = self
            .allocations
            .remove(name)
            .unwrap_or_else(|| panic!("variable {name} not allocated"));
        self.add(tier, -(bytes as i64), t);
    }

    /// Moves variable `name` to `tier` at time `t` (e.g. offload to SSD).
    ///
    /// # Panics
    /// Panics if `name` is not allocated.
    pub fn move_to(&mut self, name: &str, tier: MemTier, t: Seconds) {
        let (bytes, old_tier) = *self
            .allocations
            .get(name)
            .unwrap_or_else(|| panic!("variable {name} not allocated"));
        if old_tier == tier {
            return;
        }
        self.add(old_tier, -(bytes as i64), t);
        self.add(tier, bytes as i64, t);
        self.allocations.insert(name.to_string(), (bytes, tier));
    }

    fn add(&mut self, tier: MemTier, delta: i64, t: Seconds) {
        let entry = self.current.entry(tier).or_insert(0);
        let new = (*entry as i64 + delta).max(0) as u64;
        *entry = new;
        let peak = self.peak.entry(tier).or_insert(0);
        *peak = (*peak).max(new);
        self.traces.entry(tier).or_default().push(UsagePoint {
            time: t,
            bytes: new,
        });
    }

    /// Bytes currently resident in `tier`.
    pub fn resident(&self, tier: MemTier) -> u64 {
        self.current.get(&tier).copied().unwrap_or(0)
    }

    /// Peak bytes ever resident in `tier`.
    pub fn peak(&self, tier: MemTier) -> u64 {
        self.peak.get(&tier).copied().unwrap_or(0)
    }

    /// Usage trace of `tier` (time, bytes) in event order.
    pub fn trace(&self, tier: MemTier) -> &[UsagePoint] {
        self.traces.get(&tier).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Current tier of a variable, if allocated.
    pub fn tier_of(&self, name: &str) -> Option<MemTier> {
        self.allocations.get(name).map(|&(_, tier)| tier)
    }

    /// Size of a variable, if allocated.
    pub fn size_of(&self, name: &str) -> Option<u64> {
        self.allocations.get(name).map(|&(bytes, _)| bytes)
    }

    /// Per-variable breakdown of one tier, sorted by descending size — the
    /// pie-chart data of Figure 2.
    pub fn breakdown(&self, tier: MemTier) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .allocations
            .iter()
            .filter(|(_, &(_, t))| t == tier)
            .map(|(name, &(bytes, _))| (name.clone(), bytes))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Formats bytes as GiB with one decimal, for reports.
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_and_peak() {
        let mut m = MemoryTracker::new();
        m.alloc("psi", 10, MemTier::CpuDram, 0.0);
        m.alloc("lambda", 20, MemTier::CpuDram, 1.0);
        assert_eq!(m.resident(MemTier::CpuDram), 30);
        m.free("psi", 2.0);
        assert_eq!(m.resident(MemTier::CpuDram), 20);
        assert_eq!(m.peak(MemTier::CpuDram), 30);
        assert_eq!(m.trace(MemTier::CpuDram).len(), 3);
    }

    #[test]
    fn move_between_tiers() {
        let mut m = MemoryTracker::new();
        m.alloc("g", 100, MemTier::CpuDram, 0.0);
        m.move_to("g", MemTier::Ssd, 1.0);
        assert_eq!(m.resident(MemTier::CpuDram), 0);
        assert_eq!(m.resident(MemTier::Ssd), 100);
        assert_eq!(m.tier_of("g"), Some(MemTier::Ssd));
        assert_eq!(m.size_of("g"), Some(100));
        // Moving to the same tier is a no-op.
        m.move_to("g", MemTier::Ssd, 2.0);
        assert_eq!(m.trace(MemTier::Ssd).len(), 1);
    }

    #[test]
    fn breakdown_sorted_by_size() {
        let mut m = MemoryTracker::new();
        m.alloc("u", 50, MemTier::CpuDram, 0.0);
        m.alloc("psi", 200, MemTier::CpuDram, 0.0);
        m.alloc("chunk", 10, MemTier::GpuHbm, 0.0);
        let b = m.breakdown(MemTier::CpuDram);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].0, "psi");
        assert_eq!(b[1].0, "u");
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_alloc_panics() {
        let mut m = MemoryTracker::new();
        m.alloc("x", 1, MemTier::CpuDram, 0.0);
        m.alloc("x", 1, MemTier::CpuDram, 0.0);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn free_unknown_panics() {
        let mut m = MemoryTracker::new();
        m.free("nope", 0.0);
    }

    #[test]
    fn gib_formatting() {
        assert!((gib(1u64 << 30) - 1.0).abs() < 1e-12);
        assert!((gib(121 * (1u64 << 30)) - 121.0).abs() < 1e-9);
    }

    #[test]
    fn tier_labels() {
        assert_eq!(MemTier::ALL.len(), 4);
        assert_eq!(MemTier::Ssd.label(), "SSD");
    }
}
