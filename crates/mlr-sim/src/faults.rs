//! Deterministic fault injection for the distributed memo tier.
//!
//! Beamline-scale deployments lose memory nodes, see links brown out, and
//! watch individual stripes stall. mLR's core property — memoization is
//! *only* an acceleration — means every such fault has a provably correct
//! degradation path: recompute the FFT. This module provides the schedule
//! that exercises those paths reproducibly.
//!
//! A [`FaultPlan`] is a seeded, logical-tick-ordered list of [`FaultEvent`]s.
//! Every query about the plan (`node_down_at`, `link_state_at`,
//! `stripe_stall_at`) is a pure function of `(plan, tick)` — there is no
//! wall clock anywhere in a fault decision, so a run under a plan is exactly
//! replayable: same plan, same workload, same outcome. Ticks are the memo
//! store's logical [`StoreClock`] ticks, the same unit the distributed tier
//! already maps to simulated seconds.
//!
//! [`StoreClock`]: https://docs.rs/ (mlr-memo::clock::StoreClock)

use crate::Seconds;
use mlr_math::rng::seeded_stream;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// One injectable fault (or its recovery), applied at a logical tick.
///
/// An event takes effect at its tick and stays in effect until a matching
/// recovery event (restart / restore / recover) for the same target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Memory node `node` crashes: accesses owned by it degrade to misses
    /// and, on restart, its stripes' resident entries are lost.
    NodeCrash {
        /// Crashing node index.
        node: usize,
    },
    /// Memory node `node` comes back empty (warm-up from scratch).
    NodeRestart {
        /// Restarting node index.
        node: usize,
    },
    /// The link to `node` degrades: capacity is multiplied by
    /// `capacity_factor` (in `(0, 1]`) and every message pays
    /// `extra_latency` seconds on top of its base latency.
    LinkDegrade {
        /// Affected node index.
        node: usize,
        /// Multiplier on link capacity, clamped to `(0, 1]`.
        capacity_factor: f64,
        /// Additional per-message latency in seconds.
        extra_latency: Seconds,
    },
    /// The link to `node` returns to nominal capacity and latency.
    LinkRestore {
        /// Recovering node index.
        node: usize,
    },
    /// Stripe `stripe` stalls: every access it serves pays an extra
    /// `stall_seconds` of modeled latency (a slow SSD / hot lock shard).
    StripeStall {
        /// Affected stripe index.
        stripe: usize,
        /// Extra seconds per access while stalled.
        stall_seconds: Seconds,
    },
    /// Stripe `stripe` recovers to nominal speed.
    StripeRecover {
        /// Recovering stripe index.
        stripe: usize,
    },
}

/// A [`FaultEvent`] bound to the logical tick at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Logical store-clock tick at which the event takes effect.
    pub tick: u64,
    /// The event itself.
    pub event: FaultEvent,
}

/// Effective state of the link to one node: `(capacity_factor, extra_latency)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Multiplier on link capacity in `(0, 1]`; `1.0` when healthy.
    pub capacity_factor: f64,
    /// Additional per-message latency in seconds; `0.0` when healthy.
    pub extra_latency: Seconds,
}

impl LinkState {
    /// A healthy link: full capacity, no extra latency.
    pub const NOMINAL: LinkState = LinkState {
        capacity_factor: 1.0,
        extra_latency: 0.0,
    };

    /// True when the link is at nominal capacity and latency.
    pub fn is_nominal(&self) -> bool {
        self.capacity_factor >= 1.0 && self.extra_latency <= 0.0
    }
}

/// A seeded, tick-ordered schedule of injectable faults.
///
/// Construction is either explicit (`push` / the `*_window` helpers) or
/// generated from a seed ([`FaultPlan::seeded`]). Queries are pure functions
/// of `(plan, tick)`: the plan never consults a wall clock, so any component
/// driving decisions from it inherits replayability for free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) tagged with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed this plan was built from (identifies it in stats/records).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule, sorted by tick (stable for equal ticks).
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds one event at `tick`, keeping the schedule tick-sorted (stable).
    pub fn push(&mut self, tick: u64, event: FaultEvent) -> &mut Self {
        self.events.push(TimedFault { tick, event });
        self.events.sort_by_key(|e| e.tick);
        self
    }

    /// Schedules a crash of `node` at `from` and its restart at `until`.
    pub fn crash_window(mut self, node: usize, from: u64, until: u64) -> Self {
        self.push(from, FaultEvent::NodeCrash { node });
        self.push(until.max(from), FaultEvent::NodeRestart { node });
        self
    }

    /// Schedules a link degradation on `node` over `[from, until)`.
    pub fn degrade_window(
        mut self,
        node: usize,
        from: u64,
        until: u64,
        capacity_factor: f64,
        extra_latency: Seconds,
    ) -> Self {
        self.push(
            from,
            FaultEvent::LinkDegrade {
                node,
                capacity_factor: capacity_factor.clamp(1e-3, 1.0),
                extra_latency: extra_latency.max(0.0),
            },
        );
        self.push(until.max(from), FaultEvent::LinkRestore { node });
        self
    }

    /// Schedules a slow-stripe stall on `stripe` over `[from, until)`.
    pub fn stall_window(
        mut self,
        stripe: usize,
        from: u64,
        until: u64,
        stall_seconds: Seconds,
    ) -> Self {
        self.push(
            from,
            FaultEvent::StripeStall {
                stripe,
                stall_seconds: stall_seconds.max(0.0),
            },
        );
        self.push(until.max(from), FaultEvent::StripeRecover { stripe });
        self
    }

    /// Generates a plan from a seed: one crash window, one link-degrade
    /// window, and one slow-stripe window, all placed deterministically
    /// inside `[horizon/8, horizon)` ticks over `nodes` nodes and `stripes`
    /// stripes. Same arguments ⇒ same plan, bit for bit.
    pub fn seeded(seed: u64, nodes: usize, stripes: usize, horizon: u64) -> Self {
        let mut rng = seeded_stream(seed, 0xFA11);
        let nodes = nodes.max(1);
        let stripes = stripes.max(1);
        let horizon = horizon.max(16);
        let lo = horizon / 8;
        fn window<R: Rng>(rng: &mut R, lo: u64, horizon: u64) -> (u64, u64) {
            let a = rng.gen_range(lo..horizon);
            let b = rng.gen_range(lo..horizon);
            (a.min(b), a.max(b).max(a.min(b) + horizon / 16))
        }
        let crash_node = rng.gen_range(0..nodes);
        let (c_from, c_until) = window(&mut rng, lo, horizon);
        let degrade_node = rng.gen_range(0..nodes);
        let (d_from, d_until) = window(&mut rng, lo, horizon);
        let factor = 0.05 + rng.gen_range(0.0..0.45);
        let extra = rng.gen_range(1.0e-6..20.0e-6);
        let stall_stripe = rng.gen_range(0..stripes);
        let (s_from, s_until) = window(&mut rng, lo, horizon);
        let stall = rng.gen_range(0.5e-6..10.0e-6);
        FaultPlan::new(seed)
            .crash_window(crash_node, c_from, c_until)
            .degrade_window(degrade_node, d_from, d_until, factor, extra)
            .stall_window(stall_stripe, s_from, s_until, stall)
    }

    /// True when `node` is down (crashed and not yet restarted) at `tick`.
    ///
    /// Pure in `(self, tick)` — the replayability anchor for every consumer.
    pub fn node_down_at(&self, node: usize, tick: u64) -> bool {
        let mut down = false;
        for e in &self.events {
            if e.tick > tick {
                break;
            }
            match e.event {
                FaultEvent::NodeCrash { node: n } if n == node => down = true,
                FaultEvent::NodeRestart { node: n } if n == node => down = false,
                _ => {}
            }
        }
        down
    }

    /// Effective link state toward `node` at `tick`.
    pub fn link_state_at(&self, node: usize, tick: u64) -> LinkState {
        let mut state = LinkState::NOMINAL;
        for e in &self.events {
            if e.tick > tick {
                break;
            }
            match e.event {
                FaultEvent::LinkDegrade {
                    node: n,
                    capacity_factor,
                    extra_latency,
                } if n == node => {
                    state = LinkState {
                        capacity_factor: capacity_factor.clamp(1e-3, 1.0),
                        extra_latency: extra_latency.max(0.0),
                    };
                }
                FaultEvent::LinkRestore { node: n } if n == node => state = LinkState::NOMINAL,
                _ => {}
            }
        }
        state
    }

    /// Extra per-access stall (seconds) on `stripe` at `tick`; `0.0` when
    /// the stripe is healthy.
    pub fn stripe_stall_at(&self, stripe: usize, tick: u64) -> Seconds {
        let mut stall = 0.0;
        for e in &self.events {
            if e.tick > tick {
                break;
            }
            match e.event {
                FaultEvent::StripeStall {
                    stripe: s,
                    stall_seconds,
                } if s == stripe => stall = stall_seconds.max(0.0),
                FaultEvent::StripeRecover { stripe: s } if s == stripe => stall = 0.0,
                _ => {}
            }
        }
        stall
    }

    /// Snapshot of per-node liveness at `tick` for a cluster of `nodes`.
    pub fn health_at(&self, nodes: usize, tick: u64) -> NodeHealth {
        NodeHealth {
            tick,
            up: (0..nodes).map(|n| !self.node_down_at(n, tick)).collect(),
        }
    }

    /// Ticks at which each node restarts (one entry per `NodeRestart`),
    /// in schedule order — recovery curves are measured from these.
    pub fn restart_ticks(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e.event {
                FaultEvent::NodeRestart { node } => Some((node, e.tick)),
                _ => None,
            })
            .collect()
    }
}

/// Per-node liveness at one logical tick. Placement is never recomputed on
/// a crash — stripes keep their owner, and this view is what consumers
/// consult to decide whether the owner can currently serve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    tick: u64,
    up: Vec<bool>,
}

impl NodeHealth {
    /// The tick this snapshot describes.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// True when `node` is up (out-of-range nodes count as up).
    pub fn is_up(&self, node: usize) -> bool {
        self.up.get(node).copied().unwrap_or(true)
    }

    /// True when every node is up.
    pub fn all_up(&self) -> bool {
        self.up.iter().all(|&u| u)
    }

    /// Number of nodes currently down.
    pub fn down_count(&self) -> usize {
        self.up.iter().filter(|&&u| !u).count()
    }

    /// Per-node liveness flags, indexed by node.
    pub fn nodes(&self) -> &[bool] {
        &self.up
    }
}

/// A monotone mirror of the store's logical clock, shared by fault
/// consumers. `advance_to` is a `fetch_max`, so concurrent observers can
/// only move it forward; readers get the highest tick any consumer has
/// committed. This is the only clock a fault decision may consult.
#[derive(Debug, Default)]
pub struct FaultClock(AtomicU64);

impl FaultClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Advances the clock to `tick` if that is later than its current value.
    pub fn advance_to(&self, tick: u64) {
        self.0.fetch_max(tick, Ordering::Relaxed);
    }

    /// The highest tick observed so far.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries_are_pure_and_windowed() {
        let plan = FaultPlan::new(7)
            .crash_window(1, 10, 20)
            .degrade_window(2, 5, 15, 0.25, 4.0e-6)
            .stall_window(3, 8, 12, 2.0e-6);
        assert!(!plan.node_down_at(1, 9));
        assert!(plan.node_down_at(1, 10));
        assert!(plan.node_down_at(1, 19));
        assert!(!plan.node_down_at(1, 20));
        assert!(!plan.node_down_at(0, 15));
        let s = plan.link_state_at(2, 10);
        assert!((s.capacity_factor - 0.25).abs() < 1e-12);
        assert!((s.extra_latency - 4.0e-6).abs() < 1e-15);
        assert!(plan.link_state_at(2, 15).is_nominal());
        assert!(plan.link_state_at(1, 10).is_nominal());
        assert!(plan.stripe_stall_at(3, 8) > 0.0);
        assert_eq!(plan.stripe_stall_at(3, 12), 0.0);
        assert_eq!(plan.stripe_stall_at(0, 9), 0.0);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_vary_by_seed() {
        let a = FaultPlan::seeded(42, 4, 64, 1 << 14);
        let b = FaultPlan::seeded(42, 4, 64, 1 << 14);
        let c = FaultPlan::seeded(43, 4, 64, 1 << 14);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 6);
        // Windowed pairs: every crash has a restart after it.
        assert_eq!(a.restart_ticks().len(), 1);
        let (node, restart) = a.restart_ticks()[0];
        assert!(a.node_down_at(node, restart - 1));
        assert!(!a.node_down_at(node, restart));
    }

    #[test]
    fn health_view_tracks_crash_windows() {
        let plan = FaultPlan::new(0).crash_window(2, 100, 200);
        let before = plan.health_at(4, 50);
        assert!(before.all_up());
        let during = plan.health_at(4, 150);
        assert!(!during.is_up(2));
        assert!(during.is_up(0));
        assert_eq!(during.down_count(), 1);
        assert_eq!(during.nodes().len(), 4);
        let after = plan.health_at(4, 200);
        assert!(after.all_up());
        // Out-of-range nodes count as up.
        assert!(during.is_up(99));
    }

    #[test]
    fn fault_clock_is_monotone() {
        let clock = FaultClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance_to(10);
        clock.advance_to(5);
        assert_eq!(clock.now(), 10);
        clock.advance_to(11);
        assert_eq!(clock.now(), 11);
    }

    #[test]
    fn events_stay_tick_sorted() {
        let mut plan = FaultPlan::new(1);
        plan.push(30, FaultEvent::NodeRestart { node: 0 });
        plan.push(10, FaultEvent::NodeCrash { node: 0 });
        plan.push(20, FaultEvent::LinkRestore { node: 1 });
        let ticks: Vec<u64> = plan.events().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![10, 20, 30]);
    }
}
