//! Hardware specifications.
//!
//! All values are *nominal* device capabilities; the cost model applies
//! efficiency factors on top (real codes never reach peak FLOPs or peak
//! bandwidth). The default constructors mirror the Polaris nodes used in the
//! paper's evaluation.

use serde::{Deserialize, Serialize};

/// A GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Peak FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// HBM capacity in GiB.
    pub hbm_gib: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
}

impl GpuSpec {
    /// NVIDIA A100-40GB (SXM), the Polaris GPU.
    pub fn a100_40gb() -> Self {
        Self {
            name: "NVIDIA A100-40GB".to_string(),
            fp32_tflops: 19.5,
            hbm_gib: 40.0,
            hbm_gbps: 1555.0,
            kernel_launch_us: 5.0,
        }
    }
}

/// A local NVMe SSD (possibly a RAID of two, as on Polaris).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Capacity in GiB.
    pub capacity_gib: f64,
    /// Sequential read bandwidth in GB/s.
    pub read_gbps: f64,
    /// Sequential write bandwidth in GB/s.
    pub write_gbps: f64,
    /// Access latency in microseconds.
    pub latency_us: f64,
}

impl SsdSpec {
    /// Polaris local NVMe (2 drives, 3.2 TB total).
    pub fn polaris_nvme() -> Self {
        Self {
            capacity_gib: 3200.0,
            read_gbps: 6.4,
            write_gbps: 4.2,
            latency_us: 80.0,
        }
    }
}

/// The inter-node interconnect (and the link to the memory node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Bidirectional injection bandwidth per node in Gb/s (the paper quotes
    /// 200 Gb/s for dual Slingshot-11).
    pub injection_gbps: f64,
    /// Base one-way latency in microseconds.
    pub latency_us: f64,
    /// Fixed per-message software/RDMA-setup overhead in microseconds.
    pub per_message_us: f64,
    /// Payload size (bytes) that reaches ~95 % of peak bandwidth utilisation;
    /// smaller payloads are penalised (this is what key coalescing fixes).
    pub saturating_payload_bytes: f64,
}

impl InterconnectSpec {
    /// HPE Slingshot-11 as configured on Polaris.
    pub fn slingshot11() -> Self {
        Self {
            injection_gbps: 200.0,
            latency_us: 2.0,
            per_message_us: 1.5,
            saturating_payload_bytes: 4096.0,
        }
    }

    /// Injection bandwidth in GB/s (bytes, not bits).
    pub fn injection_gb_per_s(&self) -> f64 {
        self.injection_gbps / 8.0
    }

    /// Fraction of peak bandwidth achieved by a message of `payload_bytes`,
    /// following a simple saturation curve: utilisation approaches 1 as the
    /// payload approaches [`Self::saturating_payload_bytes`], and 95 % is
    /// reached exactly at that size (matching the paper's observation that
    /// 4 KB payloads reach 95 % utilisation on Slingshot-11).
    pub fn payload_utilisation(&self, payload_bytes: f64) -> f64 {
        if payload_bytes <= 0.0 {
            return 0.0;
        }
        // u(p) = p / (p + k) with k chosen so u(saturating) = 0.95.
        let k = self.saturating_payload_bytes * (1.0 - 0.95) / 0.95;
        payload_bytes / (payload_bytes + k)
    }
}

/// A host (compute node) with CPUs, DRAM, GPUs, SSD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical CPU cores.
    pub cpu_cores: usize,
    /// Sustained per-core GFLOP/s for the CPU cost model.
    pub cpu_core_gflops: f64,
    /// DRAM capacity in GiB.
    pub dram_gib: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Number of GPUs.
    pub gpus: usize,
    /// GPU model.
    pub gpu: GpuSpec,
    /// Host↔GPU PCIe bandwidth in GB/s (per direction).
    pub pcie_gbps: f64,
    /// GPU↔GPU NVLink bandwidth in GB/s.
    pub nvlink_gbps: f64,
    /// Local SSD.
    pub ssd: SsdSpec,
}

impl NodeSpec {
    /// A Polaris compute node: 1× EPYC 7543P (32 cores), 512 GB DDR4,
    /// 4× A100-40GB, PCIe Gen4 x16, NVLink, local NVMe.
    pub fn polaris() -> Self {
        Self {
            cpu_cores: 32,
            cpu_core_gflops: 35.0,
            dram_gib: 512.0,
            dram_gbps: 204.8,
            gpus: 4,
            gpu: GpuSpec::a100_40gb(),
            pcie_gbps: 25.0,
            nvlink_gbps: 600.0,
            ssd: SsdSpec::polaris_nvme(),
        }
    }
}

/// The dedicated memory node hosting the memoization database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryNodeSpec {
    /// DRAM capacity in GiB.
    pub dram_gib: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// SSD spill capacity in GiB (the paper uses up to 1.5 TB).
    pub ssd_gib: f64,
    /// CPU cores available for index/value lookups.
    pub cpu_cores: usize,
}

impl MemoryNodeSpec {
    /// The paper's memory node: 512 GB DRAM plus up to 1.5 TB SSD.
    pub fn polaris_memory_node() -> Self {
        Self {
            dram_gib: 512.0,
            dram_gbps: 204.8,
            ssd_gib: 1536.0,
            cpu_cores: 64,
        }
    }
}

/// The full simulated system: compute nodes, interconnect and memory node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Number of compute nodes.
    pub num_nodes: usize,
    /// Inter-node / memory-node interconnect.
    pub interconnect: InterconnectSpec,
    /// The memory node.
    pub memory_node: MemoryNodeSpec,
}

impl ClusterSpec {
    /// A Polaris-like cluster with the given number of compute nodes.
    ///
    /// # Panics
    /// Panics when `num_nodes == 0`.
    pub fn polaris(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one node");
        Self {
            node: NodeSpec::polaris(),
            num_nodes,
            interconnect: InterconnectSpec::slingshot11(),
            memory_node: MemoryNodeSpec::polaris_memory_node(),
        }
    }

    /// Total number of GPUs across the cluster.
    pub fn total_gpus(&self) -> usize {
        self.num_nodes * self.node.gpus
    }

    /// Number of nodes required to host `gpus` GPUs.
    pub fn nodes_for_gpus(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.node.gpus).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_defaults_sane() {
        let c = ClusterSpec::polaris(2);
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.node.gpus, 4);
        assert!(c.node.gpu.fp32_tflops > 10.0);
        assert!(c.interconnect.injection_gb_per_s() > 20.0);
        assert!(c.memory_node.dram_gib >= 512.0);
    }

    #[test]
    fn nodes_for_gpus_rounds_up() {
        let c = ClusterSpec::polaris(4);
        assert_eq!(c.nodes_for_gpus(1), 1);
        assert_eq!(c.nodes_for_gpus(4), 1);
        assert_eq!(c.nodes_for_gpus(5), 2);
        assert_eq!(c.nodes_for_gpus(16), 4);
    }

    #[test]
    fn payload_utilisation_curve() {
        let i = InterconnectSpec::slingshot11();
        assert_eq!(i.payload_utilisation(0.0), 0.0);
        let small = i.payload_utilisation(256.0);
        let at_4k = i.payload_utilisation(4096.0);
        let large = i.payload_utilisation((1u64 << 20) as f64);
        assert!(small < at_4k);
        assert!((at_4k - 0.95).abs() < 1e-9);
        assert!(large > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = ClusterSpec::polaris(0);
    }
}
