//! Resource-aware event timeline.
//!
//! The paper's pipelines (Figures 1 and 3) overlap chunk transfers with FFT
//! compute and overlap memoization insertion with the next iteration's
//! compute. The timeline models that: each hardware resource (a GPU stream,
//! the PCIe link, the network, the SSD, the CPU) can execute one operation at
//! a time; an operation may also depend on earlier operations finishing.
//! The makespan of the scheduled operations is the simulated execution time.

use crate::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A simulated hardware resource that serialises the operations scheduled on
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// GPU compute stream `i`.
    Gpu(usize),
    /// Host↔GPU PCIe link of GPU `i`.
    Pcie(usize),
    /// CPU (host) execution.
    Cpu,
    /// Local SSD.
    Ssd,
    /// The inter-node interconnect (compute side).
    Network,
    /// The memory node (index + value databases).
    MemoryNode,
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Resource the operation ran on.
    pub resource: Resource,
    /// Start time (seconds).
    pub start: Seconds,
    /// End time (seconds).
    pub end: Seconds,
    /// Human-readable label (e.g. `"Fu2D chunk 7"`).
    pub label: String,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// The event timeline.
#[derive(Debug, Clone, Default)]
pub struct SimTimeline {
    busy_until: HashMap<Resource, Seconds>,
    spans: Vec<Span>,
}

impl SimTimeline {
    /// Creates an empty timeline (all resources idle at t = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an operation of `duration` seconds on `resource`, starting
    /// no earlier than `earliest_start` and no earlier than the resource
    /// becomes free. Returns the span's `(start, end)`.
    pub fn schedule(
        &mut self,
        resource: Resource,
        earliest_start: Seconds,
        duration: Seconds,
        label: impl Into<String>,
    ) -> (Seconds, Seconds) {
        assert!(duration >= 0.0, "negative duration");
        let free = self.busy_until.get(&resource).copied().unwrap_or(0.0);
        let start = free.max(earliest_start);
        let end = start + duration;
        self.busy_until.insert(resource, end);
        self.spans.push(Span {
            resource,
            start,
            end,
            label: label.into(),
        });
        (start, end)
    }

    /// Time at which `resource` becomes free.
    pub fn free_at(&self, resource: Resource) -> Seconds {
        self.busy_until.get(&resource).copied().unwrap_or(0.0)
    }

    /// Completion time of the last operation over all resources (the
    /// simulated wall-clock time).
    pub fn makespan(&self) -> Seconds {
        self.busy_until.values().copied().fold(0.0, f64::max)
    }

    /// Total busy time of one resource.
    pub fn busy_time(&self, resource: Resource) -> Seconds {
        self.spans
            .iter()
            .filter(|s| s.resource == resource)
            .map(Span::duration)
            .sum()
    }

    /// Utilisation of one resource over the makespan, in `[0, 1]`.
    pub fn utilisation(&self, resource: Resource) -> f64 {
        let total = self.makespan();
        if total <= 0.0 {
            return 0.0;
        }
        (self.busy_time(resource) / total).min(1.0)
    }

    /// All scheduled spans, in scheduling order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of the durations of spans whose label contains `needle`.
    pub fn time_for_label(&self, needle: &str) -> Seconds {
        self.spans
            .iter()
            .filter(|s| s.label.contains(needle))
            .map(Span::duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialised_on_same_resource() {
        let mut t = SimTimeline::new();
        let (s1, e1) = t.schedule(Resource::Gpu(0), 0.0, 1.0, "a");
        let (s2, e2) = t.schedule(Resource::Gpu(0), 0.0, 2.0, "b");
        assert_eq!((s1, e1), (0.0, 1.0));
        assert_eq!((s2, e2), (1.0, 3.0));
        assert_eq!(t.makespan(), 3.0);
    }

    #[test]
    fn overlap_on_different_resources() {
        let mut t = SimTimeline::new();
        t.schedule(Resource::Gpu(0), 0.0, 2.0, "compute");
        t.schedule(Resource::Pcie(0), 0.0, 1.5, "transfer");
        assert_eq!(t.makespan(), 2.0);
        assert!((t.utilisation(Resource::Pcie(0)) - 0.75).abs() < 1e-12);
        assert_eq!(t.utilisation(Resource::Gpu(0)), 1.0);
    }

    #[test]
    fn dependencies_via_earliest_start() {
        let mut t = SimTimeline::new();
        let (_, transfer_done) = t.schedule(Resource::Pcie(0), 0.0, 1.0, "h2d");
        let (start, _) = t.schedule(Resource::Gpu(0), transfer_done, 0.5, "fft");
        assert_eq!(start, 1.0);
        assert_eq!(t.makespan(), 1.5);
    }

    #[test]
    fn label_accounting() {
        let mut t = SimTimeline::new();
        t.schedule(Resource::Gpu(0), 0.0, 1.0, "Fu2D chunk 0");
        t.schedule(Resource::Gpu(0), 0.0, 2.0, "Fu2D chunk 1");
        t.schedule(Resource::Gpu(0), 0.0, 4.0, "Fu1D chunk 0");
        assert_eq!(t.time_for_label("Fu2D"), 3.0);
        assert_eq!(t.time_for_label("Fu1D"), 4.0);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.busy_time(Resource::Gpu(0)), 7.0);
    }

    #[test]
    fn empty_timeline() {
        let t = SimTimeline::new();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.utilisation(Resource::Cpu), 0.0);
        assert_eq!(t.free_at(Resource::Ssd), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let mut t = SimTimeline::new();
        t.schedule(Resource::Cpu, 0.0, -1.0, "bad");
    }
}
