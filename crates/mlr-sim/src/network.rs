//! Shared-link contention model.
//!
//! All compute nodes query the single memory node, so its injection link is a
//! shared resource. Figure 15 of the paper shows interconnect utilisation
//! approaching saturation beyond ~12 GPUs (3 nodes), and Figure 16 shows the
//! query-latency CDF stretching by orders of magnitude under that contention.
//! The model here is a standard M/M/1-style latency inflation on top of the
//! base cost model: as offered load approaches capacity, queueing delay
//! diverges; beyond capacity, the excess is explicitly queued.

use crate::hardware::InterconnectSpec;
use crate::Seconds;
use mlr_math::rng::exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A contended, shared link (the memory node's injection port).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedLink {
    /// Link capacity in GB/s.
    pub capacity_gbps: f64,
    /// Base (unloaded) one-way latency in seconds.
    pub base_latency: Seconds,
}

impl SharedLink {
    /// Builds the shared link from an interconnect spec.
    pub fn from_interconnect(spec: &InterconnectSpec) -> Self {
        Self {
            capacity_gbps: spec.injection_gb_per_s(),
            base_latency: (spec.latency_us + spec.per_message_us) * 1e-6,
        }
    }

    /// Utilisation in `[0, 1]` given an aggregate offered load in GB/s.
    pub fn utilisation(&self, offered_gbps: f64) -> f64 {
        if self.capacity_gbps <= 0.0 {
            return 1.0;
        }
        (offered_gbps / self.capacity_gbps).clamp(0.0, 1.0)
    }

    /// Effective per-client bandwidth (GB/s) when `clients` clients each
    /// offer `per_client_gbps` of load: fair sharing of the capacity.
    pub fn per_client_bandwidth(&self, clients: usize, per_client_gbps: f64) -> f64 {
        if clients == 0 {
            return self.capacity_gbps;
        }
        let offered = clients as f64 * per_client_gbps;
        if offered <= self.capacity_gbps {
            per_client_gbps
        } else {
            self.capacity_gbps / clients as f64
        }
    }

    /// Mean queueing-inflated latency for a message of `bytes`, given link
    /// utilisation `rho` (M/M/1-style `1/(1-ρ)` inflation, capped so the
    /// model stays finite at saturation).
    pub fn loaded_latency(&self, bytes: f64, rho: f64) -> Seconds {
        let service = self.base_latency + bytes / (self.capacity_gbps * 1e9);
        let rho = rho.clamp(0.0, 0.995);
        service / (1.0 - rho)
    }

    /// Draws a randomised latency sample for one query under load `rho`,
    /// combining the deterministic loaded latency with an exponential
    /// queueing tail. This produces the spread seen in the latency CDF of
    /// Figure 16: at low load the distribution is tight around the base
    /// latency; near saturation a long tail appears.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R, bytes: f64, rho: f64) -> Seconds {
        let mean = self.loaded_latency(bytes, rho);
        let rho = rho.clamp(0.0, 0.995);
        // Tail weight grows with utilisation: at rho→1 most of the latency is
        // queueing delay, which is approximately exponential.
        let queue_fraction = rho;
        let deterministic = mean * (1.0 - queue_fraction);
        let tail = exponential(rng, 1.0 / (mean * queue_fraction).max(1e-12));
        deterministic + tail
    }
}

/// A deterministic FIFO queue over one [`SharedLink`] — the charging seam
/// the distributed memo tier and the trace-replay harness account remote
/// store operations through.
///
/// Where [`SharedLink::loaded_latency`] answers "what is the *mean* latency
/// at utilisation ρ" analytically, `LinkQueue` simulates the link as a
/// single server: each message occupies the link for
/// `base_latency + bytes / capacity` seconds, a message arriving while an
/// earlier one is still in service waits for it, and the returned latency is
/// wait + service. Fed the same arrival sequence it always produces the same
/// latencies — no randomness, no wall clock — which is what lets a recorded
/// `AccessTrace` reproduce the Figure 15/16 utilisation and latency-CDF
/// curves deterministically.
///
/// Arrivals are expected in non-decreasing time order (store-clock ticks
/// mapped to seconds are); an out-of-order arrival is served as if it
/// arrived when the link last went idle.
#[derive(Debug, Clone)]
pub struct LinkQueue {
    link: SharedLink,
    /// Simulated time at which the link finishes its last accepted message.
    next_free: Seconds,
    /// Total seconds the link spent in service (busy time).
    busy: Seconds,
    messages: u64,
    bytes: f64,
}

impl LinkQueue {
    /// An idle queue over `link`.
    pub fn new(link: SharedLink) -> Self {
        Self {
            link,
            next_free: 0.0,
            busy: 0.0,
            messages: 0,
            bytes: 0.0,
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &SharedLink {
        &self.link
    }

    /// Charges one message of `bytes` arriving at simulated time `arrival`
    /// and returns its total latency (queue wait + service time).
    pub fn charge(&mut self, arrival: Seconds, bytes: f64) -> Seconds {
        self.charge_degraded(arrival, bytes, 1.0, 0.0)
    }

    /// Charges one message over a *degraded* link: capacity multiplied by
    /// `capacity_factor` (clamped to `(0, 1]`) and `extra_latency` seconds
    /// added to the service time — the fault-injection model of a browned
    /// out link or a stalled stripe. With `(1.0, 0.0)` this is exactly
    /// [`Self::charge`]. Byte accounting records the *payload* bytes, not
    /// the inflated service time, so utilisation reflects the slowdown.
    pub fn charge_degraded(
        &mut self,
        arrival: Seconds,
        bytes: f64,
        capacity_factor: f64,
        extra_latency: Seconds,
    ) -> Seconds {
        let factor = capacity_factor.clamp(1e-3, 1.0);
        let service = self.link.base_latency
            + extra_latency.max(0.0)
            + bytes.max(0.0) / (self.link.capacity_gbps * factor * 1e9);
        let start = arrival.max(self.next_free);
        self.next_free = start + service;
        self.busy += service;
        self.messages += 1;
        self.bytes += bytes.max(0.0);
        self.next_free - arrival
    }

    /// Messages charged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes charged so far.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }

    /// Seconds the link spent in service.
    pub fn busy_seconds(&self) -> Seconds {
        self.busy
    }

    /// Simulated time at which the link goes idle.
    pub fn next_free(&self) -> Seconds {
        self.next_free
    }

    /// Fraction of the horizon `[0, horizon]` the link was busy, in
    /// `[0, 1]` (0 for an empty horizon).
    pub fn utilisation(&self, horizon: Seconds) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy / horizon).min(1.0)
        }
    }
}

/// Aggregate offered load on the memory-node link for a given number of
/// GPUs, each issuing `queries_per_s` memoization queries of `query_bytes`
/// and receiving values of `value_bytes`.
pub fn offered_load_gbps(
    gpus: usize,
    queries_per_s: f64,
    query_bytes: f64,
    value_bytes: f64,
) -> f64 {
    gpus as f64 * queries_per_s * (query_bytes + value_bytes) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::InterconnectSpec;
    use mlr_math::rng::seeded;

    fn link() -> SharedLink {
        SharedLink::from_interconnect(&InterconnectSpec::slingshot11())
    }

    #[test]
    fn utilisation_clamps() {
        let l = link();
        assert_eq!(l.utilisation(0.0), 0.0);
        assert!(l.utilisation(12.0) < 1.0);
        assert_eq!(l.utilisation(1e6), 1.0);
    }

    #[test]
    fn fair_sharing_beyond_capacity() {
        let l = link();
        let per = l.per_client_bandwidth(16, 5.0);
        assert!(per < 5.0);
        assert!((per - l.capacity_gbps / 16.0).abs() < 1e-9);
        let under = l.per_client_bandwidth(2, 5.0);
        assert_eq!(under, 5.0);
        assert_eq!(l.per_client_bandwidth(0, 5.0), l.capacity_gbps);
    }

    #[test]
    fn latency_inflates_with_load() {
        let l = link();
        let bytes = 4096.0;
        let idle = l.loaded_latency(bytes, 0.0);
        let busy = l.loaded_latency(bytes, 0.9);
        let saturated = l.loaded_latency(bytes, 1.0);
        assert!(busy > 5.0 * idle);
        assert!(saturated > busy);
        assert!(saturated.is_finite());
    }

    #[test]
    fn sampled_latency_tail_grows_with_load() {
        let l = link();
        let mut rng = seeded(3);
        let bytes = 4096.0;
        let sample = |rng: &mut _, rho: f64| -> Vec<f64> {
            (0..2000)
                .map(|_| l.sample_latency(rng, bytes, rho))
                .collect()
        };
        let low = sample(&mut rng, 0.1);
        let high = sample(&mut rng, 0.95);
        let p99 = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.99) as usize]
        };
        let mut low = low;
        let mut high = high;
        assert!(p99(&mut high) > 10.0 * p99(&mut low));
    }

    #[test]
    fn link_queue_charges_wait_plus_service() {
        let mut q = LinkQueue::new(link());
        let service = q.link().base_latency + 4096.0 / (q.link().capacity_gbps * 1e9);
        // An uncontended message pays exactly the service time.
        let first = q.charge(0.0, 4096.0);
        assert!((first - service).abs() < 1e-12);
        // A message arriving while the first is in service waits for it.
        let second = q.charge(0.0, 4096.0);
        assert!((second - 2.0 * service).abs() < 1e-12);
        // A message arriving after the link went idle pays no wait.
        let third = q.charge(1.0, 4096.0);
        assert!((third - service).abs() < 1e-12);
        assert_eq!(q.messages(), 3);
        assert!((q.bytes() - 3.0 * 4096.0).abs() < 1e-9);
        assert!((q.busy_seconds() - 3.0 * service).abs() < 1e-12);
        let horizon = q.next_free();
        assert!(q.utilisation(horizon) > 0.0);
        assert!(q.utilisation(horizon) <= 1.0);
        assert_eq!(q.utilisation(0.0), 0.0);
    }

    #[test]
    fn degraded_charge_slows_service_not_bytes() {
        let mut q = LinkQueue::new(link());
        let nominal = q.charge(0.0, 4096.0);
        let mut d = LinkQueue::new(link());
        let degraded = d.charge_degraded(0.0, 4096.0, 0.25, 5.0e-6);
        // Quarter capacity + 5 µs extra latency must cost strictly more.
        assert!(degraded > nominal + 5.0e-6 - 1e-12);
        // Byte accounting records payload bytes, not inflated service.
        assert!((d.bytes() - 4096.0).abs() < 1e-9);
        // The nominal parameters reduce to the plain charge.
        let mut e = LinkQueue::new(link());
        assert_eq!(e.charge_degraded(0.0, 4096.0, 1.0, 0.0), nominal);
    }

    #[test]
    fn link_queue_is_deterministic() {
        let arrivals: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 * 1e-6, 1024.0 + (i % 7) as f64 * 512.0))
            .collect();
        let run = || -> Vec<f64> {
            let mut q = LinkQueue::new(link());
            arrivals.iter().map(|&(t, b)| q.charge(t, b)).collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn offered_load_scales_with_gpus() {
        let one = offered_load_gbps(1, 100.0, 1024.0, (1u64 << 20) as f64);
        let sixteen = offered_load_gbps(16, 100.0, 1024.0, (1u64 << 20) as f64);
        assert!((sixteen / one - 16.0).abs() < 1e-9);
    }
}
