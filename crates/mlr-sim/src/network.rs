//! Shared-link contention model.
//!
//! All compute nodes query the single memory node, so its injection link is a
//! shared resource. Figure 15 of the paper shows interconnect utilisation
//! approaching saturation beyond ~12 GPUs (3 nodes), and Figure 16 shows the
//! query-latency CDF stretching by orders of magnitude under that contention.
//! The model here is a standard M/M/1-style latency inflation on top of the
//! base cost model: as offered load approaches capacity, queueing delay
//! diverges; beyond capacity, the excess is explicitly queued.

use crate::hardware::InterconnectSpec;
use crate::Seconds;
use mlr_math::rng::exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A contended, shared link (the memory node's injection port).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedLink {
    /// Link capacity in GB/s.
    pub capacity_gbps: f64,
    /// Base (unloaded) one-way latency in seconds.
    pub base_latency: Seconds,
}

impl SharedLink {
    /// Builds the shared link from an interconnect spec.
    pub fn from_interconnect(spec: &InterconnectSpec) -> Self {
        Self {
            capacity_gbps: spec.injection_gb_per_s(),
            base_latency: (spec.latency_us + spec.per_message_us) * 1e-6,
        }
    }

    /// Utilisation in `[0, 1]` given an aggregate offered load in GB/s.
    pub fn utilisation(&self, offered_gbps: f64) -> f64 {
        if self.capacity_gbps <= 0.0 {
            return 1.0;
        }
        (offered_gbps / self.capacity_gbps).clamp(0.0, 1.0)
    }

    /// Effective per-client bandwidth (GB/s) when `clients` clients each
    /// offer `per_client_gbps` of load: fair sharing of the capacity.
    pub fn per_client_bandwidth(&self, clients: usize, per_client_gbps: f64) -> f64 {
        if clients == 0 {
            return self.capacity_gbps;
        }
        let offered = clients as f64 * per_client_gbps;
        if offered <= self.capacity_gbps {
            per_client_gbps
        } else {
            self.capacity_gbps / clients as f64
        }
    }

    /// Mean queueing-inflated latency for a message of `bytes`, given link
    /// utilisation `rho` (M/M/1-style `1/(1-ρ)` inflation, capped so the
    /// model stays finite at saturation).
    pub fn loaded_latency(&self, bytes: f64, rho: f64) -> Seconds {
        let service = self.base_latency + bytes / (self.capacity_gbps * 1e9);
        let rho = rho.clamp(0.0, 0.995);
        service / (1.0 - rho)
    }

    /// Draws a randomised latency sample for one query under load `rho`,
    /// combining the deterministic loaded latency with an exponential
    /// queueing tail. This produces the spread seen in the latency CDF of
    /// Figure 16: at low load the distribution is tight around the base
    /// latency; near saturation a long tail appears.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R, bytes: f64, rho: f64) -> Seconds {
        let mean = self.loaded_latency(bytes, rho);
        let rho = rho.clamp(0.0, 0.995);
        // Tail weight grows with utilisation: at rho→1 most of the latency is
        // queueing delay, which is approximately exponential.
        let queue_fraction = rho;
        let deterministic = mean * (1.0 - queue_fraction);
        let tail = exponential(rng, 1.0 / (mean * queue_fraction).max(1e-12));
        deterministic + tail
    }
}

/// Aggregate offered load on the memory-node link for a given number of
/// GPUs, each issuing `queries_per_s` memoization queries of `query_bytes`
/// and receiving values of `value_bytes`.
pub fn offered_load_gbps(
    gpus: usize,
    queries_per_s: f64,
    query_bytes: f64,
    value_bytes: f64,
) -> f64 {
    gpus as f64 * queries_per_s * (query_bytes + value_bytes) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::InterconnectSpec;
    use mlr_math::rng::seeded;

    fn link() -> SharedLink {
        SharedLink::from_interconnect(&InterconnectSpec::slingshot11())
    }

    #[test]
    fn utilisation_clamps() {
        let l = link();
        assert_eq!(l.utilisation(0.0), 0.0);
        assert!(l.utilisation(12.0) < 1.0);
        assert_eq!(l.utilisation(1e6), 1.0);
    }

    #[test]
    fn fair_sharing_beyond_capacity() {
        let l = link();
        let per = l.per_client_bandwidth(16, 5.0);
        assert!(per < 5.0);
        assert!((per - l.capacity_gbps / 16.0).abs() < 1e-9);
        let under = l.per_client_bandwidth(2, 5.0);
        assert_eq!(under, 5.0);
        assert_eq!(l.per_client_bandwidth(0, 5.0), l.capacity_gbps);
    }

    #[test]
    fn latency_inflates_with_load() {
        let l = link();
        let bytes = 4096.0;
        let idle = l.loaded_latency(bytes, 0.0);
        let busy = l.loaded_latency(bytes, 0.9);
        let saturated = l.loaded_latency(bytes, 1.0);
        assert!(busy > 5.0 * idle);
        assert!(saturated > busy);
        assert!(saturated.is_finite());
    }

    #[test]
    fn sampled_latency_tail_grows_with_load() {
        let l = link();
        let mut rng = seeded(3);
        let bytes = 4096.0;
        let sample = |rng: &mut _, rho: f64| -> Vec<f64> {
            (0..2000)
                .map(|_| l.sample_latency(rng, bytes, rho))
                .collect()
        };
        let low = sample(&mut rng, 0.1);
        let high = sample(&mut rng, 0.95);
        let p99 = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.99) as usize]
        };
        let mut low = low;
        let mut high = high;
        assert!(p99(&mut high) > 10.0 * p99(&mut low));
    }

    #[test]
    fn offered_load_scales_with_gpus() {
        let one = offered_load_gbps(1, 100.0, 1024.0, (1u64 << 20) as f64);
        let sixteen = offered_load_gbps(16, 100.0, 1024.0, (1u64 << 20) as f64);
        assert!((sixteen / one - 16.0).abs() < 1e-9);
    }
}
