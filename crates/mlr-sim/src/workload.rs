//! Analytic ADMM-FFT workload model.
//!
//! Describes, for a given problem size, how much work one ADMM-FFT iteration
//! performs and how large each of its variables is — operation counts, FFT
//! sizes, bytes moved — so that the cost model can price the paper's
//! 1K³/1.5K³/2K³ problems even though the numerical solver in this
//! reproduction runs at much smaller grids. The variable catalog reproduces
//! the memory-consumption breakdown of Figure 2 and feeds the offload
//! planner's profile for Figure 13.

use crate::cost::CostModel;
use crate::Seconds;
use serde::{Deserialize, Serialize};

/// Problem dimensions of one laminography reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemSize {
    /// Cubic volume dimension `N` (the volume is `N × N × N`).
    pub n: usize,
    /// Number of projection angles.
    pub n_theta: usize,
    /// Detector rows.
    pub h: usize,
    /// Detector columns.
    pub w: usize,
    /// Chunk size (slabs per chunk), the paper's default is 16.
    pub chunk_size: usize,
}

impl ProblemSize {
    /// A cubic problem with `N` angles and an `N × N` detector — the shape of
    /// the paper's datasets.
    pub fn cube(n: usize, chunk_size: usize) -> Self {
        Self {
            n,
            n_theta: n,
            h: n,
            w: n,
            chunk_size,
        }
    }

    /// The paper's small dataset, `1K³`.
    pub fn paper_1k() -> Self {
        Self::cube(1024, 16)
    }

    /// The paper's medium dataset, `(1.5K)³`.
    pub fn paper_1_5k() -> Self {
        Self::cube(1536, 16)
    }

    /// The paper's large dataset, `(2K)³`.
    pub fn paper_2k() -> Self {
        Self::cube(2048, 16)
    }

    /// Number of chunk locations along the partitioned axis.
    pub fn num_chunks(&self) -> usize {
        self.n.div_ceil(self.chunk_size)
    }

    /// Total voxels in the volume.
    pub fn voxels(&self) -> u64 {
        (self.n as u64).pow(3)
    }

    /// Elements in the projection stack.
    pub fn data_elems(&self) -> u64 {
        self.n_theta as u64 * self.h as u64 * self.w as u64
    }
}

/// One named variable in the ADMM working set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableSpec {
    /// Variable name as used in the paper (ψ, λ, g, …).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether the paper's offload planner considers it (no pointer aliases).
    pub offloadable: bool,
}

/// The four execution phases of one ADMM iteration (§5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AdmmPhase {
    /// Laminography subproblem (CG iterations over the FFT operators).
    Lsp,
    /// Regularisation subproblem (TV proximal step).
    Rsp,
    /// Lagrange multiplier update.
    LambdaUpdate,
    /// Penalty parameter update.
    PenaltyUpdate,
}

impl AdmmPhase {
    /// All four phases in execution order.
    pub const ALL: [AdmmPhase; 4] = [
        AdmmPhase::Lsp,
        AdmmPhase::Rsp,
        AdmmPhase::LambdaUpdate,
        AdmmPhase::PenaltyUpdate,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AdmmPhase::Lsp => "LSP",
            AdmmPhase::Rsp => "RSP",
            AdmmPhase::LambdaUpdate => "lambda update",
            AdmmPhase::PenaltyUpdate => "penalty update",
        }
    }
}

/// The analytic workload of one ADMM-FFT run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmmWorkload {
    /// Problem dimensions.
    pub size: ProblemSize,
    /// Inner CG iterations per LSP solve (`N_inner`).
    pub n_inner: usize,
    /// Relative cost multiplier of a USFFT vs. a uniform FFT of the same
    /// logical size (oversampled fine grid + Gaussian gridding).
    pub usfft_overhead: f64,
}

impl AdmmWorkload {
    /// Creates the workload model with the paper's `N_inner = 4`.
    pub fn new(size: ProblemSize) -> Self {
        Self {
            size,
            n_inner: 4,
            usfft_overhead: 2.5,
        }
    }

    // ----------------------------------------------------------- variables

    /// The ADMM working set, sized in the proportions of Figure 2:
    /// ψ and λ at ~12 % each, `g` + `g_prev` at ~24 %, with the remainder
    /// taken by the reconstruction, the data, frequency-domain copies and
    /// FFT work buffers.
    pub fn variables(&self) -> Vec<VariableSpec> {
        let n3 = self.size.voxels();
        let data = self.size.data_elems();
        // Scalars are float32 on the host (the paper stores data in single
        // precision); frequency-domain arrays are COMPLEX64 (8 bytes).
        let vol_f32 = n3 * 4;
        let grad_f32 = 3 * vol_f32; // 3-component vector fields
        let data_f32 = data * 4;
        let data_c64 = data * 8;
        let spec = |name: &str, bytes: u64, offloadable: bool| VariableSpec {
            name: name.to_string(),
            bytes,
            offloadable,
        };
        vec![
            spec("psi", grad_f32, true),
            spec("lambda", grad_f32, true),
            spec("g", grad_f32, true),
            spec("g_prev", grad_f32, true),
            spec("u", vol_f32, false),
            spec("d", data_f32, false),
            spec("d_hat", data_c64, false),
            spec("u1_intermediate", data_c64, false),
            spec("cg_workspace", 2 * vol_f32, false),
            spec("fft_buffers", 10 * vol_f32, false),
        ]
    }

    /// Total CPU-memory footprint in bytes (sum of the variable catalog).
    pub fn total_bytes(&self) -> u64 {
        self.variables().iter().map(|v| v.bytes).sum()
    }

    // ----------------------------------------------------------- FFT costs

    /// Simulated GPU time of one application of `F_u1D` over the whole
    /// volume (all chunks).
    pub fn fu1d_time(&self, cost: &CostModel) -> Seconds {
        // One length-N 1-D USFFT per (n1, n2) column.
        let batch = self.size.n * self.size.n;
        cost.gpu_fft_time(self.size.n, batch) * self.usfft_overhead
    }

    /// Simulated GPU time of one application of `F_u2D` over the whole
    /// volume. This is the most expensive operator: one oversampled 2-D FFT
    /// plus gridding per detector row.
    pub fn fu2d_time(&self, cost: &CostModel) -> Seconds {
        let fine = 2 * self.size.n;
        cost.gpu_fft_time(fine * fine, self.size.h) * self.usfft_overhead
    }

    /// Simulated GPU time of one application of `F_2D` (or its inverse) over
    /// all projections.
    pub fn f2d_time(&self, cost: &CostModel) -> Seconds {
        cost.gpu_fft_time(self.size.h * self.size.w, self.size.n_theta)
    }

    /// Host↔GPU traffic (bytes) for one whole-volume application of one
    /// FFT stage: the chunk goes up and the result comes back.
    pub fn stage_transfer_bytes(&self) -> f64 {
        2.0 * 16.0 * self.size.voxels() as f64
    }

    /// Simulated time of one LSP inner (CG) iteration under Algorithm 1
    /// (six FFT stages, three per pass) including PCIe transfers, assuming
    /// the transfer of one chunk overlaps the compute of another so only the
    /// *longer* of the two is exposed per stage (Figure 1's pipeline).
    pub fn lsp_inner_iteration_time_alg1(&self, cost: &CostModel) -> Seconds {
        let stages = [
            self.fu1d_time(cost),
            self.fu2d_time(cost),
            self.f2d_time(cost), // F*2D in the forward pass
            self.f2d_time(cost), // F2D in the adjoint pass
            self.fu2d_time(cost),
            self.fu1d_time(cost),
        ];
        let xfer = cost.pcie_time(self.stage_transfer_bytes());
        stages.iter().map(|&s| s.max(xfer)).sum::<f64>() + self.cg_update_time(cost)
    }

    /// Simulated time of one LSP inner iteration under Algorithm 2
    /// (cancellation removes both uniform-FFT stages; fusion keeps the
    /// frequency-domain subtraction on the GPU).
    pub fn lsp_inner_iteration_time_alg2(&self, cost: &CostModel) -> Seconds {
        let stages = [
            self.fu1d_time(cost),
            self.fu2d_time(cost),
            self.fu2d_time(cost),
            self.fu1d_time(cost),
        ];
        let xfer = cost.pcie_time(self.stage_transfer_bytes());
        let fused_sub = cost.gpu_elementwise_time(self.size.data_elems() as usize);
        stages.iter().map(|&s| s.max(xfer)).sum::<f64>() + fused_sub + self.cg_update_time(cost)
    }

    /// Simulated time of the CG direction/step update (CPU element-wise work
    /// over the volume-sized gradient arrays).
    pub fn cg_update_time(&self, cost: &CostModel) -> Seconds {
        cost.cpu_elementwise_time(self.size.voxels() as usize, 6.0, 24.0)
    }

    /// Simulated time of the full LSP phase (`N_inner` CG iterations).
    pub fn lsp_time(&self, cost: &CostModel, cancelled_and_fused: bool) -> Seconds {
        let per = if cancelled_and_fused {
            self.lsp_inner_iteration_time_alg2(cost)
        } else {
            self.lsp_inner_iteration_time_alg1(cost)
        };
        per * self.n_inner as f64
    }

    /// Simulated time of the RSP phase (TV shrinkage over the gradient
    /// field).
    pub fn rsp_time(&self, cost: &CostModel) -> Seconds {
        cost.cpu_elementwise_time(3 * self.size.voxels() as usize, 8.0, 16.0)
    }

    /// Simulated time of the λ update phase.
    pub fn lambda_update_time(&self, cost: &CostModel) -> Seconds {
        cost.cpu_elementwise_time(3 * self.size.voxels() as usize, 3.0, 16.0)
    }

    /// Simulated time of the penalty (ρ) update phase.
    pub fn penalty_update_time(&self, cost: &CostModel) -> Seconds {
        cost.cpu_elementwise_time(self.size.voxels() as usize, 2.0, 8.0)
    }

    /// Simulated time of one full ADMM iteration.
    pub fn iteration_time(&self, cost: &CostModel, cancelled_and_fused: bool) -> Seconds {
        self.lsp_time(cost, cancelled_and_fused)
            + self.rsp_time(cost)
            + self.lambda_update_time(cost)
            + self.penalty_update_time(cost)
    }

    /// Duration of each phase of one ADMM iteration, in execution order.
    pub fn phase_times(
        &self,
        cost: &CostModel,
        cancelled_and_fused: bool,
    ) -> Vec<(AdmmPhase, Seconds)> {
        vec![
            (AdmmPhase::Lsp, self.lsp_time(cost, cancelled_and_fused)),
            (AdmmPhase::Rsp, self.rsp_time(cost)),
            (AdmmPhase::LambdaUpdate, self.lambda_update_time(cost)),
            (AdmmPhase::PenaltyUpdate, self.penalty_update_time(cost)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::gib;

    #[test]
    fn paper_sizes() {
        assert_eq!(ProblemSize::paper_1k().n, 1024);
        assert_eq!(ProblemSize::paper_1k().num_chunks(), 64);
        assert_eq!(ProblemSize::paper_2k().num_chunks(), 128);
        assert_eq!(ProblemSize::cube(100, 16).num_chunks(), 7);
    }

    #[test]
    fn memory_footprint_matches_paper_scale() {
        // The paper: >120 GB CPU memory for the 1K^3 problem, ~300 GB for the
        // 1.5K projections case; ψ and λ ~12 % each, g + g_prev ~24 %.
        let w = AdmmWorkload::new(ProblemSize::paper_1k());
        let total = gib(w.total_bytes());
        assert!(total > 100.0 && total < 150.0, "total {total} GiB");

        let vars = w.variables();
        let total_b = w.total_bytes() as f64;
        let frac = |name: &str| -> f64 {
            vars.iter().find(|v| v.name == name).unwrap().bytes as f64 / total_b
        };
        assert!((frac("psi") - 0.12).abs() < 0.03, "psi {}", frac("psi"));
        assert!((frac("lambda") - 0.12).abs() < 0.03);
        assert!(((frac("g") + frac("g_prev")) - 0.24).abs() < 0.06);
    }

    #[test]
    fn offloadable_variables_are_the_paper_ones() {
        let w = AdmmWorkload::new(ProblemSize::paper_1k());
        let offloadable: Vec<String> = w
            .variables()
            .into_iter()
            .filter(|v| v.offloadable)
            .map(|v| v.name)
            .collect();
        assert_eq!(offloadable, vec!["psi", "lambda", "g", "g_prev"]);
        // They account for >40 % of memory ("more than 80%" in the paper
        // refers to all alias-free candidates; the four big ones dominate).
        let total = w.total_bytes() as f64;
        let sum: u64 = w
            .variables()
            .iter()
            .filter(|v| v.offloadable)
            .map(|v| v.bytes)
            .sum();
        assert!(sum as f64 / total >= 0.35);
    }

    #[test]
    fn lsp_dominates_iteration_time() {
        // Figure 2: LSP is more than 67 % of one ADMM iteration.
        let cost = CostModel::polaris(1);
        let w = AdmmWorkload::new(ProblemSize::paper_1_5k());
        let lsp = w.lsp_time(&cost, false);
        let total = w.iteration_time(&cost, false);
        assert!(lsp / total > 0.67, "LSP fraction {}", lsp / total);
    }

    #[test]
    fn cancellation_and_fusion_speed_up_lsp() {
        let cost = CostModel::polaris(1);
        for size in [ProblemSize::paper_1k(), ProblemSize::paper_1_5k()] {
            let w = AdmmWorkload::new(size);
            let alg1 = w.lsp_time(&cost, false);
            let alg2 = w.lsp_time(&cost, true);
            assert!(alg2 < alg1, "alg2 {alg2} should beat alg1 {alg1}");
        }
    }

    #[test]
    fn fu2d_is_the_longest_operator() {
        let cost = CostModel::polaris(1);
        let w = AdmmWorkload::new(ProblemSize::paper_1k());
        assert!(w.fu2d_time(&cost) > w.fu1d_time(&cost));
        assert!(w.fu2d_time(&cost) > w.f2d_time(&cost));
    }

    #[test]
    fn phase_times_cover_all_phases() {
        let cost = CostModel::polaris(1);
        let w = AdmmWorkload::new(ProblemSize::cube(256, 16));
        let phases = w.phase_times(&cost, true);
        assert_eq!(phases.len(), 4);
        let sum: f64 = phases.iter().map(|(_, t)| t).sum();
        assert!((sum - w.iteration_time(&cost, true)).abs() < 1e-9);
        assert_eq!(AdmmPhase::ALL[0].label(), "LSP");
    }

    #[test]
    fn larger_problems_cost_more() {
        let cost = CostModel::polaris(1);
        let t1 = AdmmWorkload::new(ProblemSize::paper_1k()).iteration_time(&cost, false);
        let t15 = AdmmWorkload::new(ProblemSize::paper_1_5k()).iteration_time(&cost, false);
        let t2 = AdmmWorkload::new(ProblemSize::paper_2k()).iteration_time(&cost, false);
        assert!(t15 > 2.0 * t1);
        assert!(t2 > t15);
    }
}
