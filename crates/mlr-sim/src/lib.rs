//! # mlr-sim
//!
//! Hardware substitution layer for the mLR reproduction.
//!
//! The paper's evaluation runs on ALCF Polaris nodes (AMD EPYC 7543P, 512 GB
//! DDR4, 4× NVIDIA A100-40GB, NVMe SSDs, dual HPE Slingshot-11 at 200 Gb/s)
//! with a dedicated memory node hosting the memoization database. None of
//! that hardware is available to this reproduction, so performance-shaped
//! results (normalized execution time, bandwidth-utilisation curves, latency
//! CDFs, memory-over-time traces) are produced by an **analytic cost model +
//! event timeline** calibrated to the same nominal capabilities:
//!
//! * [`hardware`] — device and cluster specifications (Polaris defaults).
//! * [`cost`] — translation of operations (FFT FLOPs, byte transfers, kernel
//!   launches, CNN inference, ANN queries, KV lookups) into simulated time.
//! * [`timeline`] — a resource-aware event timeline that models overlap
//!   between compute and data movement (the pipelines of Figures 1 and 3).
//! * [`network`] — shared-link contention for the compute↔memory-node
//!   interconnect (Figures 15 and 16).
//! * [`faults`] — deterministic fault injection: seeded, tick-ordered
//!   schedules of node crashes, link degradations, and slow-stripe stalls
//!   that the distributed memo tier replays bit-identically.
//! * [`memory`] — tiered memory accounting: per-variable allocations on GPU
//!   HBM / CPU DRAM / SSD / remote memory and RSS-over-time traces
//!   (Figures 2 and 13).
//! * [`workload`] — the analytic ADMM-FFT workload model (operation counts
//!   and variable sizes per iteration) used to extrapolate measured
//!   per-element costs to the paper's 1K³–2K³ problem sizes.
//!
//! Numerical results (convergence, accuracy vs τ, chunk similarity) never go
//! through this crate — they are computed for real by the solver.

#![warn(missing_docs)]

pub mod cost;
pub mod faults;
pub mod hardware;
pub mod memory;
pub mod network;
pub mod timeline;
pub mod workload;

pub use cost::CostModel;
pub use faults::{FaultClock, FaultEvent, FaultPlan, LinkState, NodeHealth, TimedFault};
pub use hardware::{ClusterSpec, GpuSpec, InterconnectSpec, MemoryNodeSpec, NodeSpec, SsdSpec};
pub use memory::{MemTier, MemoryTracker};
pub use network::SharedLink;
pub use timeline::{Resource, SimTimeline, Span};
pub use workload::{AdmmWorkload, ProblemSize};

/// Seconds, the simulated time unit used throughout this crate.
pub type Seconds = f64;

/// Converts bytes and a bandwidth in GB/s into seconds.
#[inline]
pub fn transfer_seconds(bytes: f64, gb_per_s: f64) -> Seconds {
    if gb_per_s <= 0.0 {
        return f64::INFINITY;
    }
    bytes / (gb_per_s * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_seconds_basic() {
        assert!((transfer_seconds(1e9, 1.0) - 1.0).abs() < 1e-12);
        assert!((transfer_seconds(25e9, 25.0) - 1.0).abs() < 1e-12);
        assert_eq!(transfer_seconds(1.0, 0.0), f64::INFINITY);
    }
}
