//! Double-precision complex arithmetic.
//!
//! The paper's FFT operators work on `COMPLEX64` data (two `f64` components in
//! the CUDA naming the paper uses loosely; here we follow the Rust convention
//! and call the 2×`f64` type [`Complex64`]). The type is `#[repr(C)]` so a
//! slice of complex numbers can be reinterpreted as interleaved re/im planes —
//! the decomposition the memoization encoder relies on (§4.3.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Returns `exp(i * theta)` — a unit-magnitude phasor. This is the twiddle
    /// factor used by every FFT in `mlr-fft`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Multiplicative inverse. Returns a non-finite value when `self` is zero,
    /// mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::cis(self.im).scale(self.re.exp())
    }

    /// Square root on the principal branch.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        self * b + c
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, k: f64) -> Self {
        self.scale(k)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, z: Complex64) -> Complex64 {
        z.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, k: f64) -> Self {
        self.scale(1.0 / k)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, k: f64) {
        self.re *= k;
        self.im *= k;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

/// Splits a complex slice into separate real and imaginary planes.
///
/// This is the decomposition the memoization encoder applies before feeding a
/// COMPLEX64 chunk to the CNN (the paper's §4.3.1: "the COMPLEX64-typed
/// matrix is decomposed into two matrices").
pub fn split_re_im(data: &[Complex64]) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::with_capacity(data.len());
    let mut im = Vec::with_capacity(data.len());
    for z in data {
        re.push(z.re);
        im.push(z.im);
    }
    (re, im)
}

/// Reassembles a complex slice from separate real and imaginary planes.
///
/// # Panics
/// Panics when the two planes have different lengths.
pub fn join_re_im(re: &[f64], im: &[f64]) -> Vec<Complex64> {
    assert_eq!(re.len(), im.len(), "re/im planes must have equal length");
    re.iter()
        .zip(im)
        .map(|(&r, &i)| Complex64::new(r, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_basics() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        let q = a / b;
        let back = q * b;
        assert!(approx_eq(back.re, a.re, 1e-12));
        assert!(approx_eq(back.im, a.im, 1e-12));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert!(approx_eq(a.abs(), 5.0, 1e-12));
        assert!(approx_eq(a.norm_sqr(), 25.0, 1e-12));
        assert!(approx_eq((a * a.conj()).re, 25.0, 1e-12));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let theta = k as f64 * 0.37;
            let z = Complex64::cis(theta);
            assert!(approx_eq(z.abs(), 1.0, 1e-12));
            assert!(approx_eq(z.arg(), theta.sin().atan2(theta.cos()), 1e-12));
        }
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.5, std::f64::consts::PI / 3.0);
        let e = z.exp();
        let expected = Complex64::cis(z.im).scale(z.re.exp());
        assert!(approx_eq(e.re, expected.re, 1e-12));
        assert!(approx_eq(e.im, expected.im, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (0.0, 2.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (-2.0, -2.0),
        ] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            let sq = s * s;
            assert!(approx_eq(sq.re, z.re, 1e-10), "{z:?} -> {s:?}");
            assert!(approx_eq(sq.im, z.im, 1e-10), "{z:?} -> {s:?}");
        }
    }

    #[test]
    fn scalar_ops() {
        let a = Complex64::new(1.5, -2.5);
        assert_eq!(a * 2.0, Complex64::new(3.0, -5.0));
        assert_eq!(2.0 * a, Complex64::new(3.0, -5.0));
        assert_eq!(a / 0.5, Complex64::new(3.0, -5.0));
        assert_eq!(-a, Complex64::new(-1.5, 2.5));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, Complex64::new(10.0, 10.0));
        let s2: Complex64 = v.into_iter().sum();
        assert_eq!(s2, Complex64::new(10.0, 10.0));
    }

    #[test]
    fn split_and_join_roundtrip() {
        let data: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let (re, im) = split_re_im(&data);
        assert_eq!(re.len(), 16);
        assert_eq!(im[4], -2.0);
        let back = join_re_im(&re, &im);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn join_mismatched_panics() {
        join_re_im(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::new(1.0, 0.0);
        a -= Complex64::new(0.0, 1.0);
        a *= Complex64::new(0.0, 1.0);
        assert_eq!(a, Complex64::new(0.0, 2.0));
        a *= 2.0;
        assert_eq!(a, Complex64::new(0.0, 4.0));
        a /= Complex64::new(0.0, 2.0);
        assert!(approx_eq(a.re, 2.0, 1e-12));
    }
}
