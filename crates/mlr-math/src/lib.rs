//! # mlr-math
//!
//! Numerical substrate for the mLR laminography-reconstruction workspace.
//!
//! The crate provides the small set of numerical building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`Complex64`] — a minimal, `#[repr(C)]` double-precision complex number
//!   with the arithmetic needed by FFTs and Fourier-domain operators.
//! * [`Array1`], [`Array2`], [`Array3`] — dense row-major arrays used for
//!   projection data, reconstruction volumes and frequency-domain chunks.
//! * [`norms`] — L2 / Frobenius norms, cosine similarity (the similarity
//!   measure mLR uses for memoization keys), and the relative-error metric
//!   `E` from the paper's Eq. 4.
//! * [`stats`] — descriptive statistics, histograms and empirical CDFs used
//!   by the evaluation harnesses (e.g. the latency CDF of Figure 16).
//! * [`kernels`] — interpolation kernels for the unequally-spaced FFT
//!   (Gaussian gridding kernel) used by `mlr-fft`.
//! * [`rng`] — deterministic random-number helpers so every experiment in the
//!   repository is reproducible.
//!
//! The crate deliberately avoids external linear-algebra dependencies: the
//! point of the reproduction is to build the substrate from scratch.

pub mod array;
pub mod complex;
pub mod kernels;
pub mod norms;
pub mod rng;
pub mod stats;

pub use array::{Array1, Array2, Array3, Shape3};
pub use complex::Complex64;

/// Convenience alias used throughout the workspace.
pub type C64 = Complex64;

/// The floating-point scalar type used by the whole workspace.
pub type Real = f64;

/// Machine-epsilon-scaled tolerance used by numerical tests.
pub const TEST_TOL: f64 = 1e-9;

/// Returns `true` when two floating point values agree to within `tol`
/// absolutely or relatively (whichever is looser). Used pervasively by tests.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
    }
}
