//! Interpolation kernels for the unequally-spaced FFT (USFFT).
//!
//! The paper's laminography operators `F_u1D` and `F_u2D` evaluate Fourier
//! transforms on *unequally spaced* frequency grids (Dutt & Rokhlin's NUFFT
//! family). The standard implementation spreads each non-uniform sample onto
//! an oversampled uniform grid with a compact smoothing kernel and corrects
//! for the kernel's Fourier transform afterwards. We use the classical
//! Gaussian kernel, which is what the reference laminography code
//! (`lam_usfft`) uses.

use std::f64::consts::PI;

/// Parameters of the Gaussian spreading kernel used by the USFFT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianKernel {
    /// Oversampling factor of the fine grid (typically 2).
    pub oversampling: f64,
    /// Kernel half-width in fine-grid cells.
    pub half_width: usize,
    /// Gaussian exponent parameter `tau`.
    pub tau: f64,
}

impl GaussianKernel {
    /// Creates a kernel for a transform of logical size `n` with the given
    /// oversampling factor and half-width (in fine-grid cells).
    ///
    /// The `tau` parameter follows Dutt–Rokhlin: wider kernels allow a flatter
    /// Gaussian which reduces aliasing error.
    ///
    /// # Panics
    /// Panics when `n == 0`, `oversampling < 1.0`, or `half_width == 0`.
    pub fn new(n: usize, oversampling: f64, half_width: usize) -> Self {
        assert!(n > 0, "kernel size must be positive");
        assert!(oversampling >= 1.0, "oversampling must be >= 1");
        assert!(half_width > 0, "kernel half-width must be positive");
        let m = half_width as f64;
        let r = oversampling;
        // Standard choice (Dutt & Rokhlin 1993; Greengard & Lee 2004):
        // tau = pi * m / (n^2 * r * (r - 0.5)); for r == 1 fall back to a
        // stable positive value.
        let denom = if r > 0.5 { r * (r - 0.5) } else { 0.5 };
        let tau = PI * m / ((n as f64) * (n as f64) * denom);
        Self {
            oversampling: r,
            half_width,
            tau,
        }
    }

    /// Kernel value at distance `dx` (in fine-grid cells) from the sample.
    #[inline]
    pub fn eval(&self, dx: f64, n: usize) -> f64 {
        // Expressed on the unit torus: distance in cycles is dx / (r * n).
        let scaled = dx / (self.oversampling * n as f64);
        (-(scaled * scaled) / (4.0 * self.tau)).exp()
    }

    /// Fourier-domain correction factor for output index `k` (centered,
    /// i.e. `k ∈ [-n/2, n/2)`), which deconvolves the spreading kernel.
    #[inline]
    pub fn correction(&self, k: isize) -> f64 {
        let kf = k as f64;
        (self.tau * kf * kf).exp()
    }
}

/// Evaluates the normalized sinc function `sin(pi x)/(pi x)`.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = PI * x;
        px.sin() / px
    }
}

/// A Hann window of length `n`, used when apodizing projection data before
/// Fourier-domain filtering.
pub fn hann_window(n: usize) -> Vec<f64> {
    if n <= 1 {
        return vec![1.0; n];
    }
    (0..n)
        .map(|i| 0.5 * (1.0 - (2.0 * PI * i as f64 / (n - 1) as f64).cos()))
        .collect()
}

/// A ramp (Ram-Lak) filter in the frequency domain for `n` centered
/// frequencies, optionally apodized by a Hann roll-off. This is the classic
/// filtered-backprojection weighting; it is used by the non-iterative
/// baseline reconstruction in `mlr-lamino`.
pub fn ramp_filter(n: usize, hann: bool) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let k = i as isize - (n / 2) as isize;
            let f = k.unsigned_abs() as f64 / (n as f64 / 2.0);
            if hann {
                f * 0.5 * (1.0 + (PI * f).cos())
            } else {
                f
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn gaussian_kernel_peaks_at_zero() {
        let k = GaussianKernel::new(64, 2.0, 4);
        assert!(approx_eq(k.eval(0.0, 64), 1.0, 1e-12));
        assert!(k.eval(1.0, 64) < 1.0);
        assert!(k.eval(4.0, 64) < k.eval(1.0, 64));
        assert!(k.eval(4.0, 64) > 0.0);
    }

    #[test]
    fn gaussian_kernel_symmetric() {
        let k = GaussianKernel::new(32, 2.0, 3);
        for d in [0.5, 1.0, 2.5] {
            assert!(approx_eq(k.eval(d, 32), k.eval(-d, 32), 1e-15));
        }
    }

    #[test]
    fn correction_grows_with_frequency() {
        let k = GaussianKernel::new(64, 2.0, 4);
        assert!(approx_eq(k.correction(0), 1.0, 1e-15));
        assert!(k.correction(10) > k.correction(1));
        assert!(approx_eq(k.correction(-7), k.correction(7), 1e-15));
    }

    #[test]
    #[should_panic(expected = "half-width")]
    fn zero_half_width_panics() {
        let _ = GaussianKernel::new(64, 2.0, 0);
    }

    #[test]
    fn sinc_values() {
        assert!(approx_eq(sinc(0.0), 1.0, 1e-15));
        assert!(approx_eq(sinc(1.0), 0.0, 1e-12));
        assert!(approx_eq(sinc(0.5), 2.0 / PI, 1e-12));
    }

    #[test]
    fn hann_window_endpoints_and_symmetry() {
        let w = hann_window(9);
        assert!(approx_eq(w[0], 0.0, 1e-12));
        assert!(approx_eq(w[8], 0.0, 1e-12));
        assert!(approx_eq(w[4], 1.0, 1e-12));
        for i in 0..4 {
            assert!(approx_eq(w[i], w[8 - i], 1e-12));
        }
        assert_eq!(hann_window(1), vec![1.0]);
        assert_eq!(hann_window(0).len(), 0);
    }

    #[test]
    fn ramp_filter_shape() {
        let f = ramp_filter(8, false);
        assert_eq!(f.len(), 8);
        assert!(approx_eq(f[4], 0.0, 1e-12)); // DC at center index n/2
        assert!(f[0] > f[2]); // |k| larger at edges
        let fh = ramp_filter(8, true);
        // Hann apodization suppresses the highest frequencies.
        assert!(fh[0] < f[0]);
    }
}
