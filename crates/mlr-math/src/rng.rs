//! Deterministic random-number helpers.
//!
//! Every experiment harness in the repository must be reproducible run-to-run
//! (the paper's figures are single traces, so reproducibility is what makes
//! the regenerated shapes comparable). All randomness therefore flows through
//! seeded ChaCha8 generators created here.

use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Creates a deterministic RNG derived from a base seed and a stream index,
/// so parallel workers get independent but reproducible streams.
pub fn seeded_stream(seed: u64, stream: u64) -> ChaCha8Rng {
    // Mix with splitmix64-style constants to decorrelate streams.
    let mixed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .rotate_left(31);
    ChaCha8Rng::seed_from_u64(mixed)
}

/// Samples a standard normal variate using the Box–Muller transform. Avoids a
/// dependency on `rand_distr` while being adequate for phantom noise and
/// synthetic latency jitter.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Fills a slice with i.i.d. samples from `[lo, hi)`.
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64], lo: f64, hi: f64) {
    let dist = rand::distributions::Uniform::new(lo, hi);
    for v in out {
        *v = dist.sample(rng);
    }
}

/// Fills a slice with i.i.d. standard-normal samples scaled by `sigma`.
pub fn fill_gaussian<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64], sigma: f64) {
    for v in out {
        *v = sigma * standard_normal(rng);
    }
}

/// Samples an exponential variate with the given rate `lambda` (mean `1/lambda`),
/// used by the latency models in `mlr-sim` to generate queueing jitter.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = seeded(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn streams_are_independent_but_reproducible() {
        let mut s0a = seeded_stream(7, 0);
        let mut s0b = seeded_stream(7, 0);
        let mut s1 = seeded_stream(7, 1);
        assert_eq!(s0a.gen::<u64>(), s0b.gen::<u64>());
        assert_ne!(s0a.gen::<u64>(), s1.gen::<u64>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(1);
        let n = 20_000;
        let sample: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(2);
        let n = 20_000;
        let sample: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = sample.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fill_uniform_respects_bounds() {
        let mut rng = seeded(3);
        let mut buf = vec![0.0; 1000];
        fill_uniform(&mut rng, &mut buf, -2.0, 3.0);
        assert!(buf.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = seeded(4);
        let n = 50_000;
        let lambda = 4.0;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_gaussian_scales() {
        let mut rng = seeded(5);
        let mut buf = vec![0.0; 10_000];
        fill_gaussian(&mut rng, &mut buf, 3.0);
        let var = buf.iter().map(|x| x * x).sum::<f64>() / buf.len() as f64;
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }
}
