//! Norms, similarity measures and the paper's accuracy metric.
//!
//! Two quantities from the paper live here:
//!
//! * **Cosine similarity** (Eq. 3) — the measure mLR uses both to decide when
//!   a stored memoization entry may replace an FFT computation and to
//!   characterise chunk similarity across iterations (Figure 4).
//! * **Relative reconstruction error** `E` (Eq. 4) and
//!   `Accuracy = 1 − E` (Eq. 5) — the quality metric of Table 1.

use crate::{Array3, Complex64};

/// L2 norm of a real slice.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L2 norm of a complex slice (Frobenius norm when the slice is a flattened
/// matrix or volume).
pub fn l2_norm_c(x: &[Complex64]) -> f64 {
    x.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
}

/// L2 distance between two real vectors.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// L2 distance between two complex vectors.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn l2_distance_c(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_distance_c length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between two real vectors (paper Eq. 3).
///
/// Returns 0 when either vector has zero norm. The result lies in `[-1, 1]`
/// up to floating-point rounding.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine similarity between two complex vectors, computed on the real inner
/// product `Re⟨a, b⟩ / (‖a‖‖b‖)`. This is how chunk similarity is measured
/// for COMPLEX64 FFT inputs: the measure is phase-sensitive, so a chunk whose
/// spectrum rotated in phase is *not* considered similar.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn cosine_similarity_c(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity_c length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| (*x * y.conj()).re).sum();
    let na = l2_norm_c(a);
    let nb = l2_norm_c(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Scale-aware similarity between two real vectors: the cosine similarity
/// multiplied by the ratio of the smaller to the larger L2 norm. Two vectors
/// pointing the same way but with very different magnitudes are *not*
/// considered similar — important for memoization, where reusing a stored FFT
/// result for a rescaled input would be badly wrong even though the plain
/// cosine similarity is 1.
pub fn scale_aware_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    cosine_similarity(a, b) * (na.min(nb) / na.max(nb))
}

/// Scale-aware similarity between two complex vectors (see
/// [`scale_aware_similarity`]).
pub fn scale_aware_similarity_c(a: &[Complex64], b: &[Complex64]) -> f64 {
    let na = l2_norm_c(a);
    let nb = l2_norm_c(b);
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    cosine_similarity_c(a, b) * (na.min(nb) / na.max(nb))
}

/// Frobenius norm of a real 3-D array.
pub fn frobenius(x: &Array3<f64>) -> f64 {
    l2_norm(x.as_slice())
}

/// Frobenius norm of a complex 3-D array.
pub fn frobenius_c(x: &Array3<Complex64>) -> f64 {
    l2_norm_c(x.as_slice())
}

/// The paper's relative-error metric (Eq. 4):
/// `E = ‖R_comp − R_LB‖_F / ‖R_comp‖_F`, where `R_comp` is the reconstruction
/// produced by the exact ADMM-FFT and `R_LB` the reconstruction produced with
/// memoization.
///
/// Returns 0 when the reference has zero norm and the two volumes are equal,
/// and `f64::INFINITY` when the reference is zero but the volumes differ.
///
/// # Panics
/// Panics when the shapes differ.
pub fn relative_error(reference: &Array3<f64>, approx: &Array3<f64>) -> f64 {
    assert_eq!(
        reference.shape(),
        approx.shape(),
        "relative_error shape mismatch"
    );
    let denom = frobenius(reference);
    let num = l2_distance(reference.as_slice(), approx.as_slice());
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// The paper's accuracy metric (Eq. 5): `Accuracy = 1 − E`.
pub fn accuracy(reference: &Array3<f64>, approx: &Array3<f64>) -> f64 {
    1.0 - relative_error(reference, approx)
}

/// Maximum absolute element-wise difference between two complex slices.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn max_abs_diff_c(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff_c length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// Maximum absolute element-wise difference between two real slices.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, Shape3};

    #[test]
    fn l2_norm_matches_pythagoras() {
        assert!(approx_eq(l2_norm(&[3.0, 4.0]), 5.0, 1e-12));
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn l2_norm_c_counts_both_components() {
        let v = vec![Complex64::new(3.0, 4.0), Complex64::ZERO];
        assert!(approx_eq(l2_norm_c(&v), 5.0, 1e-12));
    }

    #[test]
    fn cosine_similarity_bounds_and_extremes() {
        let a = [1.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [-1.0, 0.0, 0.0];
        let d = [0.0, 1.0, 0.0];
        assert!(approx_eq(cosine_similarity(&a, &b), 1.0, 1e-12));
        assert!(approx_eq(cosine_similarity(&a, &c), -1.0, 1e-12));
        assert!(approx_eq(cosine_similarity(&a, &d), 0.0, 1e-12));
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_similarity_scale_invariant() {
        let a = [0.3, -1.2, 2.5, 0.7];
        let b: Vec<f64> = a.iter().map(|x| x * 17.0).collect();
        assert!(approx_eq(cosine_similarity(&a, &b), 1.0, 1e-12));
    }

    #[test]
    fn complex_cosine_similarity_detects_phase() {
        let a = vec![Complex64::new(1.0, 0.0); 8];
        let same = vec![Complex64::new(2.0, 0.0); 8];
        let rotated = vec![Complex64::new(0.0, 1.0); 8];
        assert!(approx_eq(cosine_similarity_c(&a, &same), 1.0, 1e-12));
        assert!(approx_eq(cosine_similarity_c(&a, &rotated), 0.0, 1e-12));
    }

    #[test]
    fn relative_error_and_accuracy() {
        let shape = Shape3::cube(4);
        let r = Array3::filled(shape, 2.0);
        let mut approx = r.clone();
        assert_eq!(relative_error(&r, &approx), 0.0);
        assert_eq!(accuracy(&r, &approx), 1.0);

        // Perturb one element: E = |delta| / ||r||_F.
        approx[(0, 0, 0)] = 2.0 + 1.6;
        let expected = 1.6 / (2.0 * 8.0); // ||r||_F = 2 * sqrt(64) = 16
        assert!(approx_eq(relative_error(&r, &approx), expected, 1e-12));
        assert!(approx_eq(accuracy(&r, &approx), 1.0 - expected, 1e-12));
    }

    #[test]
    fn relative_error_zero_reference() {
        let shape = Shape3::cube(2);
        let zero: Array3<f64> = Array3::zeros(shape);
        let nonzero = Array3::filled(shape, 1.0);
        assert_eq!(relative_error(&zero, &zero.clone()), 0.0);
        assert_eq!(relative_error(&zero, &nonzero), f64::INFINITY);
    }

    #[test]
    fn max_abs_diff_variants() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        let a = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 2.0)];
        let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, -1.0)];
        assert_eq!(max_abs_diff_c(&a, &b), 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn scale_aware_similarity_penalises_rescaling() {
        let a = [1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x * 4.0).collect();
        assert!(approx_eq(cosine_similarity(&a, &b), 1.0, 1e-12));
        assert!(approx_eq(scale_aware_similarity(&a, &b), 0.25, 1e-12));
        assert!(approx_eq(scale_aware_similarity(&a, &a), 1.0, 1e-12));
        assert_eq!(scale_aware_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(scale_aware_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        let ca = [Complex64::new(1.0, 1.0), Complex64::new(0.0, 2.0)];
        let cb: Vec<Complex64> = ca.iter().map(|z| z.scale(2.0)).collect();
        assert!(approx_eq(scale_aware_similarity_c(&ca, &cb), 0.5, 1e-12));
    }
}
