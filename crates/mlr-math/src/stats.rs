//! Descriptive statistics, histograms and empirical CDFs.
//!
//! The evaluation section of the paper reports percentiles (P99 value-store
//! latency), cumulative distributions (Figure 16's query-latency CDF under
//! contention) and averages over many runs. These helpers back those
//! harnesses and are also used by the offload planner to summarise profiles.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics over a sample. Returns a zeroed summary for
    /// an empty sample.
    pub fn of(sample: &[f64]) -> Self {
        if sample.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p99: 0.0,
            };
        }
        let count = sample.len();
        let mean = sample.iter().sum::<f64>() / count as f64;
        let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }
}

/// Linear-interpolated percentile of an already-sorted sample.
///
/// `p` is in percent (0–100). Values outside that range are clamped.
///
/// # Panics
/// Panics on an empty sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Linear-interpolated percentile of an unsorted sample.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// An empirical cumulative distribution function built from a sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample (copied and sorted internally).
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Fraction of observations ≤ `x`, in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Number of elements <= x via binary search for the partition point.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function); `q` in `[0, 1]`.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Emits `(x, F(x))` pairs at each distinct observation — the series a
    /// plotting tool would consume to draw the CDF curve of Figure 16.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the ECDF was built from an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

/// Running mean/variance accumulator (Welford's algorithm) used where samples
/// are produced in a stream, e.g. per-chunk timings during a long run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!(approx_eq(s.mean, 3.0, 1e-12));
        assert!(approx_eq(s.std_dev, 2.0f64.sqrt(), 1e-12));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(approx_eq(s.median, 3.0, 1e-12));
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert!(approx_eq(percentile_sorted(&sorted, 0.0), 10.0, 1e-12));
        assert!(approx_eq(percentile_sorted(&sorted, 100.0), 40.0, 1e-12));
        assert!(approx_eq(percentile_sorted(&sorted, 50.0), 25.0, 1e-12));
        assert!(approx_eq(
            percentile(&[40.0, 10.0, 30.0, 20.0], 50.0),
            25.0,
            1e-12
        ));
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert!(approx_eq(e.quantile(0.5), 2.5, 1e-12));
        let curve = e.curve();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[3], (4.0, 1.0));
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.5, 3.0, 9.9, 25.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // -1.0 clamped, 0.5
        assert_eq!(h.counts()[4], 2); // 9.9, 25.0 clamped
        assert!(approx_eq(h.bin_center(0), 1.0, 1e-12));
    }

    #[test]
    fn running_matches_batch() {
        let sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = Running::new();
        for &x in &sample {
            r.push(x);
        }
        let s = Summary::of(&sample);
        assert_eq!(r.count(), sample.len() as u64);
        assert!(approx_eq(r.mean(), s.mean, 1e-12));
        assert!(approx_eq(r.std_dev(), s.std_dev, 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
