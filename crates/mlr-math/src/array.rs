//! Dense row-major 1-D/2-D/3-D arrays.
//!
//! The reconstruction volume `u ∈ R^(n1, n0, n2)`, the projection data
//! `d ∈ R^(nθ, h, w)` and every frequency-domain chunk in the paper are dense
//! 3-D arrays. We provide a minimal generic container with the indexing,
//! slicing-along-axis-0 (chunking) and element-wise operations the rest of the
//! workspace needs, instead of pulling in an external array crate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Shape of a 3-D array expressed as `(n0, n1, n2)` — axis 0 is the slowest
/// (outermost) dimension, matching row-major layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape3 {
    /// Extent along axis 0 (slowest varying).
    pub n0: usize,
    /// Extent along axis 1.
    pub n1: usize,
    /// Extent along axis 2 (fastest varying).
    pub n2: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub const fn new(n0: usize, n1: usize, n2: usize) -> Self {
        Self { n0, n1, n2 }
    }

    /// Cubic shape `n × n × n`.
    pub const fn cube(n: usize) -> Self {
        Self {
            n0: n,
            n1: n,
            n2: n,
        }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.n0 * self.n1 * self.n2
    }

    /// Returns `true` when any extent is zero.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear (row-major) index of `(i, j, k)`.
    #[inline]
    pub fn offset(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.n0 && j < self.n1 && k < self.n2);
        (i * self.n1 + j) * self.n2 + k
    }

    /// Shape as a tuple.
    pub const fn dims(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }
}

impl fmt::Debug for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.n0, self.n1, self.n2)
    }
}

impl From<(usize, usize, usize)> for Shape3 {
    fn from((n0, n1, n2): (usize, usize, usize)) -> Self {
        Self { n0, n1, n2 }
    }
}

/// A dense 1-D array. Mostly a thin wrapper over `Vec<T>` that exists so the
/// FFT APIs read naturally; it also carries a few numeric conveniences.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Array1<T> {
    data: Vec<T>,
}

impl<T: Clone + Default> Array1<T> {
    /// Creates an array of `n` default-initialised elements.
    pub fn zeros(n: usize) -> Self {
        Self {
            data: vec![T::default(); n],
        }
    }
}

impl<T> Array1<T> {
    /// Wraps an existing vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array and returns the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T> Index<usize> for Array1<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> IndexMut<usize> for Array1<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: fmt::Debug> fmt::Debug for Array1<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Array1(len={})", self.data.len())
    }
}

/// A dense row-major 2-D array.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Array2<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Array2<T> {
    /// Creates a `rows × cols` array of default-initialised elements.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Array2<T> {
    /// Wraps an existing vector; `data.len()` must equal `rows * cols`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "Array2 data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consumes the array and returns the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Clone> Array2<T> {
    /// Out-of-place transpose.
    pub fn transpose(&self) -> Array2<T> {
        let mut out = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(self.data[r * self.cols + c].clone());
            }
        }
        Array2 {
            rows: self.cols,
            cols: self.rows,
            data: out,
        }
    }
}

impl<T> Index<(usize, usize)> for Array2<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Array2<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Array2<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Array2({}x{})", self.rows, self.cols)
    }
}

/// A dense row-major 3-D array; the workhorse container of the workspace.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Array3<T> {
    shape: Shape3,
    data: Vec<T>,
}

impl<T: Clone + Default> Array3<T> {
    /// Creates an array of default-initialised elements with the given shape.
    pub fn zeros(shape: Shape3) -> Self {
        Self {
            shape,
            data: vec![T::default(); shape.len()],
        }
    }
}

impl<T: Clone> Array3<T> {
    /// Creates an array filled with copies of `value`.
    pub fn filled(shape: Shape3, value: T) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Extracts the sub-array of `count` slabs along axis 0 starting at
    /// `start`. This is exactly the "chunk" partitioning the paper uses:
    /// "A chunk is a partition of an input 3D array along a specific
    /// dimension".
    ///
    /// # Panics
    /// Panics when `start + count` exceeds `n0`.
    pub fn slab(&self, start: usize, count: usize) -> Array3<T> {
        assert!(start + count <= self.shape.n0, "slab out of range");
        let slab_len = self.shape.n1 * self.shape.n2;
        let data = self.data[start * slab_len..(start + count) * slab_len].to_vec();
        Array3 {
            shape: Shape3::new(count, self.shape.n1, self.shape.n2),
            data,
        }
    }

    /// Writes `slab` back into this array starting at axis-0 index `start`.
    ///
    /// # Panics
    /// Panics when the slab's inner dimensions differ or it does not fit.
    pub fn set_slab(&mut self, start: usize, slab: &Array3<T>) {
        assert_eq!(slab.shape.n1, self.shape.n1, "slab n1 mismatch");
        assert_eq!(slab.shape.n2, self.shape.n2, "slab n2 mismatch");
        assert!(start + slab.shape.n0 <= self.shape.n0, "slab does not fit");
        let slab_len = self.shape.n1 * self.shape.n2;
        let dst = &mut self.data[start * slab_len..(start + slab.shape.n0) * slab_len];
        dst.clone_from_slice(&slab.data);
    }
}

impl<T> Array3<T> {
    /// Wraps an existing vector; `data.len()` must equal `shape.len()`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_vec(shape: Shape3, data: Vec<T>) -> Self {
        assert_eq!(data.len(), shape.len(), "Array3 data length mismatch");
        Self { shape, data }
    }

    /// The array's shape.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array and returns the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Immutable view of the contiguous `(j-row at slab i)` line along axis 2.
    pub fn line(&self, i: usize, j: usize) -> &[T] {
        let base = self.shape.offset(i, j, 0);
        &self.data[base..base + self.shape.n2]
    }

    /// Mutable view of the contiguous line along axis 2.
    pub fn line_mut(&mut self, i: usize, j: usize) -> &mut [T] {
        let base = self.shape.offset(i, j, 0);
        &mut self.data[base..base + self.shape.n2]
    }

    /// Immutable view of slab `i` (the `n1 × n2` plane at axis-0 index `i`).
    pub fn plane(&self, i: usize) -> &[T] {
        let plane_len = self.shape.n1 * self.shape.n2;
        &self.data[i * plane_len..(i + 1) * plane_len]
    }

    /// Mutable view of slab `i`.
    pub fn plane_mut(&mut self, i: usize) -> &mut [T] {
        let plane_len = self.shape.n1 * self.shape.n2;
        &mut self.data[i * plane_len..(i + 1) * plane_len]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }
}

impl<T> Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j, k): (usize, usize, usize)) -> &T {
        &self.data[self.shape.offset(i, j, k)]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, (i, j, k): (usize, usize, usize)) -> &mut T {
        &mut self.data[self.shape.offset(i, j, k)]
    }
}

impl<T: fmt::Debug> fmt::Debug for Array3<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Array3({:?})", self.shape)
    }
}

impl Array3<f64> {
    /// Element-wise linear combination `self ← self * a + other * b`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn axpby(&mut self, a: f64, other: &Array3<f64>, b: f64) {
        assert_eq!(self.shape, other.shape, "axpby shape mismatch");
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x = *x * a + *y * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Dot product with another array of identical shape.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn dot(&self, other: &Array3<f64>) -> f64 {
        assert_eq!(self.shape, other.shape, "dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }
}

impl Array3<crate::Complex64> {
    /// Element-wise linear combination with complex scalars.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn axpby_c(&mut self, a: crate::Complex64, other: &Self, b: crate::Complex64) {
        assert_eq!(self.shape, other.shape, "axpby shape mismatch");
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x = *x * a + *y * b;
        }
    }

    /// Complex inner product `⟨self, other⟩ = Σ self · conj(other)`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn inner(&self, other: &Self) -> crate::Complex64 {
        assert_eq!(self.shape, other.shape, "inner shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| *a * b.conj())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn shape_offsets_are_row_major() {
        let s = Shape3::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.offset(0, 0, 0), 0);
        assert_eq!(s.offset(0, 0, 3), 3);
        assert_eq!(s.offset(0, 1, 0), 4);
        assert_eq!(s.offset(1, 0, 0), 12);
        assert_eq!(s.offset(1, 2, 3), 23);
        assert_eq!(s.dims(), (2, 3, 4));
    }

    #[test]
    fn array3_index_roundtrip() {
        let mut a: Array3<f64> = Array3::zeros(Shape3::new(3, 4, 5));
        a[(2, 3, 4)] = 7.5;
        a[(0, 0, 0)] = -1.0;
        assert_eq!(a[(2, 3, 4)], 7.5);
        assert_eq!(a[(0, 0, 0)], -1.0);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn slab_extraction_and_writeback() {
        let shape = Shape3::new(6, 2, 2);
        let data: Vec<f64> = (0..shape.len()).map(|i| i as f64).collect();
        let a = Array3::from_vec(shape, data);
        let slab = a.slab(2, 2);
        assert_eq!(slab.shape(), Shape3::new(2, 2, 2));
        assert_eq!(slab[(0, 0, 0)], 8.0);
        assert_eq!(slab[(1, 1, 1)], 15.0);

        let mut b: Array3<f64> = Array3::zeros(shape);
        b.set_slab(2, &slab);
        assert_eq!(b[(2, 0, 0)], 8.0);
        assert_eq!(b[(3, 1, 1)], 15.0);
        assert_eq!(b[(0, 0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "slab out of range")]
    fn slab_out_of_range_panics() {
        let a: Array3<f64> = Array3::zeros(Shape3::cube(4));
        let _ = a.slab(3, 2);
    }

    #[test]
    fn plane_and_line_views() {
        let shape = Shape3::new(2, 3, 4);
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let a = Array3::from_vec(shape, data);
        assert_eq!(a.plane(1).len(), 12);
        assert_eq!(a.plane(1)[0], 12.0);
        assert_eq!(a.line(1, 2), &[20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn axpby_and_dot() {
        let shape = Shape3::cube(3);
        let mut a = Array3::filled(shape, 2.0);
        let b = Array3::filled(shape, 3.0);
        a.axpby(2.0, &b, -1.0);
        assert_eq!(a[(1, 1, 1)], 1.0);
        assert_eq!(a.sum(), 27.0);
        assert_eq!(a.dot(&b), 81.0);
    }

    #[test]
    fn complex_inner_product() {
        let shape = Shape3::new(1, 1, 4);
        let a = Array3::from_vec(shape, vec![Complex64::new(1.0, 1.0); 4]);
        let b = Array3::from_vec(shape, vec![Complex64::new(0.0, 1.0); 4]);
        let ip = a.inner(&b);
        // (1+i) * conj(i) = (1+i)(-i) = -i - i^2 = 1 - i, times 4.
        assert_eq!(ip, Complex64::new(4.0, -4.0));
    }

    #[test]
    fn array2_transpose() {
        let a = Array2::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(0, 1)], 4);
        assert_eq!(t[(2, 0)], 3);
        assert_eq!(t.row(1), &[2, 5]);
    }

    #[test]
    fn array1_basics() {
        let mut a: Array1<f64> = Array1::zeros(5);
        a[3] = 9.0;
        assert_eq!(a.len(), 5);
        assert_eq!(a[3], 9.0);
        assert_eq!(a.as_slice()[3], 9.0);
        let v = a.into_vec();
        assert_eq!(v[3], 9.0);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut a = Array3::filled(Shape3::cube(2), 1.0f64);
        a.map_inplace(|x| *x *= 3.0);
        assert!(a.as_slice().iter().all(|&x| x == 3.0));
    }
}
