//! Snapshot export: one JSON document for everything, plus Chrome
//! trace-event format for the span journal.
//!
//! The JSON is emitted by hand (every key is a static identifier and every
//! value a number or fixed name, so no escaping machinery is needed) and is
//! designed to round-trip through `mlr-bench::json`'s dotted-path reader —
//! the vendored `serde_json` shim only serialises, so benches *read* these
//! documents through `mlr_bench::json::JsonValue`.
//!
//! Chrome trace output loads directly into `chrome://tracing` / Perfetto:
//! each span becomes an instant event on the job's track, timestamped with
//! wall-clock microseconds when wall timers were enabled and with the
//! logical tick otherwise.

use crate::hist::Histogram;
use crate::metrics::{MetricsSnapshot, COUNTER_NAMES, STAGE_NAMES};
use crate::span::SpanRecord;
use crate::trace::AccessRecord;
use std::fmt::Write as _;

/// A complete, self-contained copy of everything the telemetry stack
/// recorded: counters, stage histograms, span journal, access trace.
pub struct TelemetrySnapshot {
    /// Counters and stage histograms.
    pub metrics: MetricsSnapshot,
    /// Span journal contents, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans overwritten because the journal ring was full.
    pub spans_dropped: u64,
    /// Store access trace contents, oldest first (empty when the trace was
    /// not enabled).
    pub accesses: Vec<AccessRecord>,
    /// Access records overwritten because the trace ring was full.
    pub accesses_dropped: u64,
}

fn write_histogram(out: &mut String, hist: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        hist.count,
        hist.sum,
        hist.mean(),
        hist.percentile(0.50),
        hist.percentile(0.90),
        hist.percentile(0.99),
    );
}

impl TelemetrySnapshot {
    /// Serialises the whole snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", name, self.metrics.counters[i]);
        }
        out.push_str("\n  },\n  \"stages\": {");
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": ");
            write_histogram(&mut out, &self.metrics.stages[i]);
        }
        let _ = write!(
            out,
            "\n  }},\n  \"spans_dropped\": {},\n  \"spans\": [",
            self.spans_dropped
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"job\":{},\"kind\":\"{}\",\"arg\":{},\"tick\":{},\"wall_ns\":{}}}",
                span.job,
                span.kind.name(),
                span.arg,
                span.tick,
                span.wall_ns
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"accesses_dropped\": {},\n  \"accesses\": [",
            self.accesses_dropped
        );
        for (i, access) in self.accesses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"entry\":{},\"op\":{},\"stripe\":{},\"kind\":\"{}\",\"tick\":{}}}",
                access.entry,
                access.op,
                access.stripe,
                access.kind.name(),
                access.tick
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serialises the span journal as a Chrome trace-event document (the
    /// `{"traceEvents": [...]}` object form). Each span is an instant event
    /// on track `tid = job`; `ts` is wall-clock microseconds when wall
    /// timers were enabled, the logical tick otherwise.
    pub fn to_chrome_trace(&self) -> String {
        let wall = self.spans.iter().any(|s| s.wall_ns > 0);
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = if wall {
                span.wall_ns / 1_000
            } else {
                span.tick
            };
            let _ = write!(
                out,
                "\n  {{\"name\":\"{}\",\"cat\":\"mlr\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"arg\":{},\"tick\":{}}}}}",
                span.kind.name(),
                span.job,
                ts,
                span.arg,
                span.tick
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterId, CounterTable, MetricsRegistry, StageId, StageTable};
    use crate::span::SpanKind;
    use crate::trace::AccessKind;

    fn sample_snapshot() -> TelemetrySnapshot {
        let registry = MetricsRegistry::new();
        let mut counters = CounterTable::new();
        counters.add(CounterId::JobsAdmitted, 2);
        registry.fold_counters(&counters);
        let mut stages = StageTable::new();
        stages.record(StageId::Encode, 1234);
        registry.fold_stages(&stages);
        TelemetrySnapshot {
            metrics: registry.snapshot(),
            spans: vec![SpanRecord {
                job: 1,
                kind: SpanKind::Admitted,
                arg: 0,
                tick: 0,
                wall_ns: 0,
            }],
            spans_dropped: 0,
            accesses: vec![AccessRecord {
                entry: 7,
                op: 0,
                stripe: 3,
                kind: AccessKind::Hit,
                tick: 42,
            }],
            accesses_dropped: 0,
        }
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"jobs_admitted\": 2"));
        assert!(json.contains("\"encode\": {\"count\":1,\"sum\":1234"));
        assert!(json.contains("\"kind\":\"admitted\""));
        assert!(json.contains("\"kind\":\"hit\""));
        assert!(json.contains("\"spans_dropped\": 0"));
    }

    #[test]
    fn chrome_trace_is_an_event_array() {
        let trace = sample_snapshot().to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\""));
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"tid\":1"));
    }
}
