//! The `Telemetry` handle: a cloneable recorder that is a compile-time
//! no-op when disabled.
//!
//! `Telemetry` is an `Option<Arc<_>>` under the hood. Every recording
//! method is `#[inline]` and starts with the `None` check, so the disabled
//! form compiles down to a single predictable branch on a register — no
//! atomics, no locks, no `Instant::now()`. The hot path additionally gates
//! its stage timers on [`Telemetry::is_enabled`] captured once per batch,
//! so disabled mode takes zero clock reads per chunk. The `fig23`
//! observability bench holds this to ≤5 % overhead empirically.

use crate::export::TelemetrySnapshot;
use crate::metrics::{CounterId, CounterTable, MetricsRegistry, StageTable};
use crate::span::{SpanJournal, SpanKind};
use crate::trace::AccessTrace;
use std::sync::Arc;

/// Construction parameters for an enabled [`Telemetry`].
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Span journal ring capacity (records).
    pub span_capacity: usize,
    /// Whether spans carry wall-clock timestamps in addition to logical
    /// ticks.
    pub wall_clock: bool,
    /// Whether to record the store access trace, and with what ring
    /// capacity. `None` disables the trace (the default — it is the one
    /// recorder with per-store-access cost).
    pub access_trace_capacity: Option<usize>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            span_capacity: 8192,
            wall_clock: true,
            access_trace_capacity: None,
        }
    }
}

struct TelemetryInner {
    metrics: MetricsRegistry,
    spans: SpanJournal,
    trace: Option<Arc<AccessTrace>>,
}

/// Cloneable recorder handle threaded through runtime, memo engine, solver
/// and operators. Disabled (`Telemetry::disabled()`, also the `Default`)
/// it records nothing and costs one branch per call site.
///
/// ```
/// use mlr_telemetry::{CounterId, SpanKind, Telemetry};
///
/// let telemetry = Telemetry::enabled();
/// telemetry.count(CounterId::JobsAdmitted, 1);
/// telemetry.span(7, SpanKind::Admitted, 0);
/// let snapshot = telemetry.snapshot().expect("enabled recorders snapshot");
/// assert_eq!(snapshot.metrics.counter(CounterId::JobsAdmitted), 1);
/// assert_eq!(snapshot.spans.len(), 1);
/// assert!(snapshot.to_json().contains("jobs_admitted"));
///
/// // Disabled — the default everywhere — records nothing and has nothing
/// // to snapshot; every recording call above would have been one branch.
/// let disabled = Telemetry::disabled();
/// disabled.count(CounterId::JobsAdmitted, 1);
/// assert!(disabled.snapshot().is_none());
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The no-op recorder. All recording methods return immediately.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder with default configuration.
    pub fn enabled() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An enabled recorder with explicit configuration.
    pub fn with_config(config: TelemetryConfig) -> Self {
        let mut spans = SpanJournal::new(config.span_capacity);
        if config.wall_clock {
            spans = spans.with_wall_clock();
        }
        Self {
            inner: Some(Arc::new(TelemetryInner {
                metrics: MetricsRegistry::new(),
                spans,
                trace: config
                    .access_trace_capacity
                    .map(|capacity| Arc::new(AccessTrace::new(capacity))),
            })),
        }
    }

    /// Whether this handle records anything. Hot paths capture this once
    /// per batch and skip their stage clocks entirely when `false`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn count(&self, id: CounterId, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(id, n);
        }
    }

    /// Folds a per-thread counter scratch table into the registry.
    #[inline]
    pub fn fold_counters(&self, scratch: &CounterTable) {
        if let Some(inner) = &self.inner {
            inner.metrics.fold_counters(scratch);
        }
    }

    /// Folds per-thread stage-timer scratch into the registry.
    #[inline]
    pub fn fold_stages(&self, scratch: &StageTable) {
        if let Some(inner) = &self.inner {
            inner.metrics.fold_stages(scratch);
        }
    }

    /// Records one lifecycle span.
    #[inline]
    pub fn span(&self, job: u64, kind: SpanKind, arg: u64) {
        if let Some(inner) = &self.inner {
            inner.spans.record(job, kind, arg);
        }
    }

    /// The live metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|inner| &inner.metrics)
    }

    /// The span journal, when enabled.
    pub fn spans(&self) -> Option<&SpanJournal> {
        self.inner.as_ref().map(|inner| &inner.spans)
    }

    /// The store access trace, when enabled *and* configured. The store
    /// holds a clone of this `Arc` and records into it from its
    /// ordered-commit paths.
    pub fn access_trace(&self) -> Option<Arc<AccessTrace>> {
        self.inner.as_ref().and_then(|inner| inner.trace.clone())
    }

    /// A complete copy of everything recorded so far; `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let inner = self.inner.as_ref()?;
        let trace = inner.trace.as_deref();
        Some(TelemetrySnapshot {
            metrics: inner.metrics.snapshot(),
            spans: inner.spans.snapshot(),
            spans_dropped: inner.spans.dropped(),
            accesses: trace.map(|t| t.snapshot()).unwrap_or_default(),
            accesses_dropped: trace.map(|t| t.dropped()).unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageId;

    #[test]
    fn disabled_records_nothing_and_snapshots_none() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.count(CounterId::JobsAdmitted, 5);
        telemetry.span(1, SpanKind::Admitted, 0);
        let mut stages = StageTable::new();
        stages.record(StageId::Encode, 100);
        telemetry.fold_stages(&stages);
        assert!(telemetry.snapshot().is_none());
        assert!(telemetry.metrics().is_none());
        assert!(telemetry.spans().is_none());
        assert!(telemetry.access_trace().is_none());
    }

    #[test]
    fn enabled_round_trips_through_snapshot() {
        let telemetry = Telemetry::with_config(TelemetryConfig {
            span_capacity: 16,
            wall_clock: false,
            access_trace_capacity: Some(8),
        });
        telemetry.count(CounterId::JobsAdmitted, 1);
        telemetry.span(3, SpanKind::Admitted, 0);
        telemetry.span(3, SpanKind::Completed, 0);
        let trace = telemetry.access_trace().expect("trace configured");
        trace.record(crate::trace::AccessRecord {
            entry: 1,
            op: 0,
            stripe: 0,
            kind: crate::trace::AccessKind::Insert,
            tick: 1,
        });
        let snap = telemetry.snapshot().expect("enabled");
        assert_eq!(snap.metrics.counter(CounterId::JobsAdmitted), 1);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.accesses.len(), 1);
        assert!(snap.to_json().contains("\"jobs_admitted\": 1"));
    }

    #[test]
    fn clones_share_one_registry() {
        let telemetry = Telemetry::enabled();
        let clone = telemetry.clone();
        clone.count(CounterId::JobsCompleted, 2);
        let snap = telemetry.snapshot().expect("enabled");
        assert_eq!(snap.metrics.counter(CounterId::JobsCompleted), 2);
    }
}
