//! Lock-free metrics registry: sharded atomic counters plus per-stage
//! atomic histograms, fed by `Copy` per-thread scratch tables.
//!
//! The hot path never touches the registry directly. Workers accumulate
//! into stack-resident [`CounterTable`] / [`StageTable`] scratch (plain
//! `Copy` arrays, zero allocation) and fold them in at the ordered-commit
//! boundary — exactly the `OpStatsTable` discipline that keeps the fig22
//! ≤4-allocs-per-hit gate intact. Counter *reads* sum a small fixed number
//! of shards; snapshots are a memcpy-sized loop, never a lock.

use crate::hist::{Histogram, HIST_BUCKETS};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Identity of one scalar counter in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Jobs admitted into the serving queue.
    JobsAdmitted,
    /// Jobs that ran every configured iteration.
    JobsCompleted,
    /// Jobs that panicked while running.
    JobsFailed,
    /// Jobs cancelled (queued or mid-run).
    JobsCancelled,
    /// Jobs whose deadline expired (queued or mid-run).
    JobsExpired,
    /// Expired entries resolved by the proactive queue sweep (a subset of
    /// `JobsExpired`).
    SweptExpired,
    /// Outer ADMM iterations started.
    IterationsStarted,
    /// Operator batch applications committed.
    OperatorBatches,
    /// Chunks committed through the memoized operator path.
    ChunksCommitted,
    /// Chunks served from the process-local exact cache.
    CacheHitChunks,
    /// Chunks served from the shared memo database.
    DbHitChunks,
    /// Chunks that missed and ran the exact FFT.
    ComputedChunks,
    /// Chunks the norm prefilter routed straight to the exact FFT
    /// (no encode, no cache peek, no probe).
    PrefilteredChunks,
    /// Worker threads respawned after dying to a panic that escaped the
    /// per-job containment (the pool never shrinks).
    WorkerRestarts,
    /// Submissions re-attempted by the serving front-end's retry policy
    /// after a retryable admission rejection.
    RetryAttempts,
}

/// Number of counters in [`CounterId`].
pub const COUNTER_COUNT: usize = 15;

/// Stable snake_case names, indexable by `CounterId as usize`.
pub const COUNTER_NAMES: [&str; COUNTER_COUNT] = [
    "jobs_admitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_cancelled",
    "jobs_expired",
    "swept_expired",
    "iterations_started",
    "operator_batches",
    "chunks_committed",
    "cache_hit_chunks",
    "db_hit_chunks",
    "computed_chunks",
    "prefiltered_chunks",
    "worker_restarts",
    "retry_attempts",
];

/// One timed stage of the memo-hit path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StageId {
    /// CNN encoding of the chunk input into the similarity key.
    Encode,
    /// Peek of the process-local exact cache.
    CachePeek,
    /// IVF probe of the shared memo database.
    IvfProbe,
    /// Copying the hit payload into the output slot at ordered commit.
    PayloadCopy,
    /// The exact FFT executed on a miss.
    MissFft,
    /// Fingerprint computation + doorkeeper consultation before the
    /// encoder (the norm prefilter).
    Prefilter,
    /// Fixed-point shortlist arithmetic inside the IVF probe (quantised
    /// key kernel). Carved *out* of the `ivf_probe` histogram — the engine
    /// records the probe minus this sub-stage — so the stage set partitions
    /// hit-path time without double counting.
    Quantize,
}

/// Number of stages in [`StageId`].
pub const STAGE_COUNT: usize = 7;

/// Stable snake_case names, indexable by `StageId as usize`.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "encode",
    "cache_peek",
    "ivf_probe",
    "payload_copy",
    "miss_fft",
    "prefilter",
    "quantize",
];

/// Per-thread counter scratch: a `Copy` array on the worker's stack.
#[derive(Clone, Copy, Debug)]
pub struct CounterTable {
    /// Pending increments, indexable by `CounterId as usize`.
    pub counts: [u64; COUNTER_COUNT],
}

impl Default for CounterTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterTable {
    /// An all-zero table.
    pub const fn new() -> Self {
        Self {
            counts: [0; COUNTER_COUNT],
        }
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counts[id as usize] += n;
    }

    /// Whether every pending increment is zero.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

/// Per-thread stage-timer scratch: one histogram per hit-path stage,
/// `Copy`, stack-resident, folded into the registry at ordered commit.
#[derive(Clone, Copy, Debug)]
pub struct StageTable {
    /// Pending per-stage histograms, indexable by `StageId as usize`.
    pub stages: [Histogram; STAGE_COUNT],
}

impl Default for StageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTable {
    /// An all-empty table.
    pub const fn new() -> Self {
        Self {
            stages: [Histogram::new(); STAGE_COUNT],
        }
    }

    /// Records one nanosecond sample for a stage.
    #[inline]
    pub fn record(&mut self, stage: StageId, nanos: u64) {
        self.stages[stage as usize].record(nanos);
    }

    /// Whether no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.is_empty())
    }
}

/// Number of counter shards. Threads are striped across shards so
/// concurrent folds don't contend on one cache line.
const COUNTER_SHARDS: usize = 8;

#[repr(align(128))]
struct CounterShard {
    counts: [AtomicU64; COUNTER_COUNT],
}

impl CounterShard {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            counts: [ZERO; COUNTER_COUNT],
        }
    }
}

struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl AtomicHistogram {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    fn fold(&self, scratch: &Histogram) {
        if scratch.count == 0 {
            return;
        }
        self.count.fetch_add(scratch.count, Ordering::Relaxed);
        self.sum.fetch_add(scratch.sum, Ordering::Relaxed);
        for (slot, &n) in self.buckets.iter().zip(scratch.buckets.iter()) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn load(&self) -> Histogram {
        let mut out = Histogram::new();
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
        for (slot, bucket) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            cell.set(shard);
        }
        shard
    })
}

/// The shared, lock-free metrics registry: sharded atomic counters and one
/// atomic histogram per hit-path stage.
pub struct MetricsRegistry {
    shards: [CounterShard; COUNTER_SHARDS],
    stages: [AtomicHistogram; STAGE_COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An all-zero registry.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const SHARD: CounterShard = CounterShard::new();
        #[allow(clippy::declare_interior_mutable_const)]
        const HIST: AtomicHistogram = AtomicHistogram::new();
        Self {
            shards: [SHARD; COUNTER_SHARDS],
            stages: [HIST; STAGE_COUNT],
        }
    }

    /// Adds `n` to one counter on the calling thread's shard.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.shards[my_shard()].counts[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a whole scratch table in — one atomic add per non-zero entry.
    pub fn fold_counters(&self, scratch: &CounterTable) {
        let shard = &self.shards[my_shard()];
        for (slot, &n) in shard.counts.iter().zip(scratch.counts.iter()) {
            if n != 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Folds per-stage scratch histograms in.
    pub fn fold_stages(&self, scratch: &StageTable) {
        for (stage, hist) in self.stages.iter().zip(scratch.stages.iter()) {
            stage.fold(hist);
        }
    }

    /// Current value of one counter (sums all shards).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counts[id as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Consistent copy of one stage histogram.
    pub fn stage(&self, id: StageId) -> Histogram {
        self.stages[id as usize].load()
    }

    /// Copies every counter and stage histogram out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; COUNTER_COUNT];
        for shard in &self.shards {
            for (slot, count) in counters.iter_mut().zip(shard.counts.iter()) {
                *slot += count.load(Ordering::Relaxed);
            }
        }
        let mut stages = [Histogram::new(); STAGE_COUNT];
        for (slot, stage) in stages.iter_mut().zip(self.stages.iter()) {
            *slot = stage.load();
        }
        MetricsSnapshot { counters, stages }
    }
}

/// A point-in-time copy of the registry, `Copy` and self-contained.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// Counter values, indexable by `CounterId as usize`.
    pub counters: [u64; COUNTER_COUNT],
    /// Stage histograms, indexable by `StageId as usize`.
    pub stages: [Histogram; STAGE_COUNT],
}

impl MetricsSnapshot {
    /// Value of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// One stage histogram.
    pub fn stage(&self, id: StageId) -> &Histogram {
        &self.stages[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_and_snapshot_round_trip() {
        let registry = MetricsRegistry::new();
        let mut scratch = CounterTable::new();
        scratch.add(CounterId::CacheHitChunks, 24);
        scratch.add(CounterId::ChunksCommitted, 24);
        registry.fold_counters(&scratch);
        registry.add(CounterId::JobsAdmitted, 1);

        let mut stages = StageTable::new();
        stages.record(StageId::Encode, 2_000);
        stages.record(StageId::Encode, 2_100);
        stages.record(StageId::PayloadCopy, 300);
        registry.fold_stages(&stages);

        let snap = registry.snapshot();
        assert_eq!(snap.counter(CounterId::CacheHitChunks), 24);
        assert_eq!(snap.counter(CounterId::ChunksCommitted), 24);
        assert_eq!(snap.counter(CounterId::JobsAdmitted), 1);
        assert_eq!(snap.counter(CounterId::JobsFailed), 0);
        assert_eq!(snap.stage(StageId::Encode).count, 2);
        assert_eq!(snap.stage(StageId::Encode).sum, 4_100);
        assert_eq!(snap.stage(StageId::PayloadCopy).count, 1);
        assert_eq!(snap.stage(StageId::MissFft).count, 0);
    }

    #[test]
    fn concurrent_folds_lose_nothing() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = std::sync::Arc::clone(&registry);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let mut scratch = CounterTable::new();
                        scratch.add(CounterId::ChunksCommitted, 1);
                        registry.fold_counters(&scratch);
                        let mut stages = StageTable::new();
                        stages.record(StageId::IvfProbe, 512);
                        registry.fold_stages(&stages);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(CounterId::ChunksCommitted),
            threads * per_thread
        );
        assert_eq!(snap.stage(StageId::IvfProbe).count, threads * per_thread);
        assert_eq!(
            snap.stage(StageId::IvfProbe).sum,
            threads * per_thread * 512
        );
    }

    #[test]
    fn names_line_up_with_ids() {
        assert_eq!(
            COUNTER_NAMES[CounterId::SweptExpired as usize],
            "swept_expired"
        );
        assert_eq!(
            COUNTER_NAMES[CounterId::ComputedChunks as usize],
            "computed_chunks"
        );
        assert_eq!(
            COUNTER_NAMES[CounterId::PrefilteredChunks as usize],
            "prefiltered_chunks"
        );
        assert_eq!(
            COUNTER_NAMES[CounterId::WorkerRestarts as usize],
            "worker_restarts"
        );
        assert_eq!(
            COUNTER_NAMES[CounterId::RetryAttempts as usize],
            "retry_attempts"
        );
        assert_eq!(STAGE_NAMES[StageId::Encode as usize], "encode");
        assert_eq!(STAGE_NAMES[StageId::MissFft as usize], "miss_fft");
        assert_eq!(STAGE_NAMES[StageId::Prefilter as usize], "prefilter");
        assert_eq!(STAGE_NAMES[StageId::Quantize as usize], "quantize");
    }
}
