//! Per-job lifecycle spans in a bounded ring-buffer journal.
//!
//! Every record carries a **logical tick** — a monotone sequence number
//! drawn from one atomic — so span *ordering* is deterministic wherever the
//! emitting code path is sequential (per-job iteration and operator spans
//! are emitted from the ordered-commit path, which runs on one thread in
//! chunk-index order regardless of the worker count). Wall-clock timestamps
//! are optional and additive: they never influence ordering, so enabling
//! them cannot perturb the bit-identity contracts.
//!
//! The ring is bounded: when full, the oldest record is overwritten and a
//! drop counter increments. Memory use is `capacity × 40 bytes`, fixed at
//! construction.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a span record marks in a job's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Job admitted into the queue (`arg` = queue length after admit).
    Admitted,
    /// Worker picked the job up and started executing it.
    Running,
    /// An outer ADMM iteration began (`arg` = iteration index).
    Iteration,
    /// An operator batch committed (`arg` = chunks in the batch).
    Operator,
    /// Job ran every configured iteration.
    Completed,
    /// Job cancelled (`arg` = 1 when it was mid-run).
    Cancelled,
    /// Job deadline expired (`arg` = 1 when it was mid-run).
    Expired,
    /// Job panicked while running.
    Failed,
    /// Job resolved `Expired` by the proactive queue sweep.
    Swept,
}

impl SpanKind {
    /// Stable snake_case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Admitted => "admitted",
            SpanKind::Running => "running",
            SpanKind::Iteration => "iteration",
            SpanKind::Operator => "operator",
            SpanKind::Completed => "completed",
            SpanKind::Cancelled => "cancelled",
            SpanKind::Expired => "expired",
            SpanKind::Failed => "failed",
            SpanKind::Swept => "swept",
        }
    }

    /// Whether this kind terminates a job's lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanKind::Completed
                | SpanKind::Cancelled
                | SpanKind::Expired
                | SpanKind::Failed
                | SpanKind::Swept
        )
    }
}

/// One lifecycle event. `Copy`, fixed 40 bytes.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// The job this event belongs to.
    pub job: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Kind-specific argument (iteration index, batch chunk count, …).
    pub arg: u64,
    /// Logical tick: globally monotone, deterministic in sequential
    /// emission order.
    pub tick: u64,
    /// Nanoseconds since the journal's wall-clock epoch; `0` when wall
    /// timers are disabled.
    pub wall_ns: u64,
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Index of the oldest record when the ring is full; write cursor
    /// otherwise.
    head: usize,
    len: usize,
}

/// Bounded ring-buffer journal of [`SpanRecord`]s.
pub struct SpanJournal {
    capacity: usize,
    tick: AtomicU64,
    dropped: AtomicU64,
    epoch: Option<Instant>,
    ring: Mutex<Ring>,
}

impl SpanJournal {
    /// A journal holding at most `capacity` records (minimum 1), without
    /// wall-clock timers.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            tick: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: None,
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
            }),
        }
    }

    /// Enables wall-clock timestamps, measured from this call.
    pub fn with_wall_clock(mut self) -> Self {
        self.epoch = Some(Instant::now()); // mlr-check: allow(wall-clock) — decoration only: opt-in wall epochs label telemetry output
        self
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained records (never exceeds capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one record, overwriting the oldest when full. Allocation-free
    /// after the ring's one-time preallocation.
    pub fn record(&self, job: u64, kind: SpanKind, arg: u64) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let wall_ns = match self.epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => 0,
        };
        let record = SpanRecord {
            job,
            kind,
            arg,
            tick,
            wall_ns,
        };
        let mut ring = self.ring.lock();
        if ring.len < self.capacity {
            ring.slots.push(record);
            ring.len += 1;
        } else {
            let head = ring.head;
            ring.slots[head] = record;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the retained records out, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.len);
        for i in 0..ring.len {
            out.push(ring.slots[(ring.head + i) % ring.len.max(1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let journal = SpanJournal::new(4);
        for i in 0..10u64 {
            journal.record(i, SpanKind::Iteration, i);
        }
        assert_eq!(journal.len(), 4);
        assert_eq!(journal.dropped(), 6);
        let records = journal.snapshot();
        assert_eq!(records.len(), 4);
        let jobs: Vec<u64> = records.iter().map(|r| r.job).collect();
        assert_eq!(jobs, vec![6, 7, 8, 9], "oldest overwritten first");
        // Ticks are monotone in snapshot order.
        assert!(records.windows(2).all(|w| w[0].tick < w[1].tick));
    }

    #[test]
    fn ticks_are_dense_from_zero_without_wall_clock() {
        let journal = SpanJournal::new(16);
        journal.record(1, SpanKind::Admitted, 0);
        journal.record(1, SpanKind::Running, 0);
        journal.record(1, SpanKind::Completed, 0);
        let records = journal.snapshot();
        let ticks: Vec<u64> = records.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2]);
        assert!(records.iter().all(|r| r.wall_ns == 0));
    }

    #[test]
    fn wall_clock_is_monotone_when_enabled() {
        let journal = SpanJournal::new(16).with_wall_clock();
        journal.record(1, SpanKind::Admitted, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        journal.record(1, SpanKind::Completed, 0);
        let records = journal.snapshot();
        assert!(records[1].wall_ns > records[0].wall_ns);
    }
}
