//! Store access-trace recorder: the input the distributed memo tier needs.
//!
//! Figures 14–16 of the paper (memory-node utilisation, latency CDFs) are
//! currently reproduced from an analytic model. This recorder captures the
//! real store access stream — entry id, operator, stripe, hit/miss/evict,
//! logical store tick — so those figures can be driven by a recorded trace
//! instead. Records are emitted only from the store's *ordered-commit*
//! paths with `StoreClock` ticks, so the trace is deterministic for a given
//! workload regardless of worker or shard-probe interleaving.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of store access a record captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A query served by an existing entry.
    Hit,
    /// A query that found no admissible entry.
    Miss,
    /// A fresh entry inserted.
    Insert,
    /// An entry evicted under byte/entry pressure.
    Evict,
    /// An expired entry reclaimed in place.
    Expired,
    /// An entry lost with its crashed memory node (fault injection): no
    /// link traffic, no eviction-policy involvement — it simply vanished.
    Lost,
}

impl AccessKind {
    /// Stable snake_case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Hit => "hit",
            AccessKind::Miss => "miss",
            AccessKind::Insert => "insert",
            AccessKind::Evict => "evict",
            AccessKind::Expired => "expired",
            AccessKind::Lost => "lost",
        }
    }

    /// Inverse of [`AccessKind::name`], for the trace replay reader.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hit" => Some(AccessKind::Hit),
            "miss" => Some(AccessKind::Miss),
            "insert" => Some(AccessKind::Insert),
            "evict" => Some(AccessKind::Evict),
            "expired" => Some(AccessKind::Expired),
            "lost" => Some(AccessKind::Lost),
            _ => None,
        }
    }
}

/// One store access. `Copy`, fixed-size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Store entry id (`0` when the access resolved no entry, e.g. a miss).
    pub entry: u64,
    /// Operator kind discriminant (`FftOpKind as u8`).
    pub op: u8,
    /// Store stripe (shard) index the access landed on.
    pub stripe: u32,
    /// What happened.
    pub kind: AccessKind,
    /// The store's logical clock at the access — deterministic.
    pub tick: u64,
}

struct Ring {
    slots: Vec<AccessRecord>,
    head: usize,
    len: usize,
}

/// Bounded ring of [`AccessRecord`]s, overwriting the oldest when full.
pub struct AccessTrace {
    capacity: usize,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl AccessTrace {
    /// A trace holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
            }),
        }
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained records (never exceeds capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one record, overwriting the oldest when full.
    pub fn record(&self, record: AccessRecord) {
        let mut ring = self.ring.lock();
        if ring.len < self.capacity {
            ring.slots.push(record);
            ring.len += 1;
        } else {
            let head = ring.head;
            ring.slots[head] = record;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the retained records out, oldest first.
    pub fn snapshot(&self) -> Vec<AccessRecord> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.len);
        for i in 0..ring.len {
            out.push(ring.slots[(ring.head + i) % ring.len.max(1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ring_is_bounded() {
        let trace = AccessTrace::new(3);
        for tick in 0..7u64 {
            trace.record(AccessRecord {
                entry: tick,
                op: 0,
                stripe: 0,
                kind: AccessKind::Hit,
                tick,
            });
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 4);
        let ticks: Vec<u64> = trace.snapshot().iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![4, 5, 6]);
    }
}
