//! Trace replay reader: parse an exported access trace back into
//! [`AccessRecord`]s.
//!
//! [`TelemetrySnapshot::to_json`](crate::TelemetrySnapshot::to_json) emits
//! the access trace as an `"accesses"` array of flat objects; this module
//! is its inverse, so a trace recorded in one process (or one run) can be
//! replayed in another — the input format of the cluster replay harness.
//! The reader accepts either a full snapshot document or a bare array (the
//! form [`export_access_records`] writes), and round-trips exactly:
//! `parse_access_records(&export_access_records(&records)) == records`.
//!
//! The vendored `serde_json` shim only *serialises*, so the reader is a
//! small hand-rolled scanner over the known five-field record shape —
//! `{"entry":N,"op":N,"stripe":N,"kind":"<name>","tick":N}` — rather than
//! a general JSON parser. Unknown keys inside a record are ignored;
//! missing keys, malformed numbers and unknown kind names are errors.

use crate::trace::{AccessKind, AccessRecord};
use std::fmt;

/// Why an exported trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// No `[` array opener found (neither a bare array nor an `"accesses"`
    /// section).
    MissingArray,
    /// The array (or a record object) was never closed.
    UnterminatedArray,
    /// A record is missing `field` or its value is malformed.
    BadField {
        /// Which of the five record fields failed.
        field: &'static str,
        /// The offending record object, verbatim.
        record: String,
    },
    /// A record's `kind` is not one of the stable access-kind names.
    UnknownKind(String),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingArray => {
                write!(f, "no access-record array found in the input")
            }
            TraceParseError::UnterminatedArray => {
                write!(f, "access-record array is not terminated")
            }
            TraceParseError::BadField { field, record } => {
                write!(f, "missing or malformed field {field:?} in record {record}")
            }
            TraceParseError::UnknownKind(kind) => {
                write!(f, "unknown access kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Serialises records as a bare JSON array in the exact per-record shape
/// of [`TelemetrySnapshot::to_json`](crate::TelemetrySnapshot::to_json)'s
/// `"accesses"` section.
pub fn export_access_records(records: &[AccessRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(16 + records.len() * 64);
    out.push('[');
    for (i, access) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"entry\":{},\"op\":{},\"stripe\":{},\"kind\":\"{}\",\"tick\":{}}}",
            access.entry,
            access.op,
            access.stripe,
            access.kind.name(),
            access.tick
        );
    }
    out.push_str("\n]\n");
    out
}

/// Extracts the unsigned integer following `"name":` in `record`.
fn field_u64(record: &str, name: &'static str) -> Result<u64, TraceParseError> {
    let bad = || TraceParseError::BadField {
        field: name,
        record: record.to_string(),
    };
    let key = format!("\"{name}\":");
    let start = record.find(&key).ok_or_else(bad)? + key.len();
    let digits: String = record[start..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().map_err(|_| bad())
}

/// Extracts the quoted string following `"name":` in `record`.
fn field_str<'a>(record: &'a str, name: &'static str) -> Result<&'a str, TraceParseError> {
    let bad = || TraceParseError::BadField {
        field: name,
        record: record.to_string(),
    };
    let key = format!("\"{name}\":");
    let start = record.find(&key).ok_or_else(bad)? + key.len();
    let rest = record[start..].trim_start();
    let rest = rest.strip_prefix('"').ok_or_else(bad)?;
    let end = rest.find('"').ok_or_else(bad)?;
    Ok(&rest[..end])
}

fn parse_record(object: &str) -> Result<AccessRecord, TraceParseError> {
    let kind_name = field_str(object, "kind")?;
    let kind = AccessKind::from_name(kind_name)
        .ok_or_else(|| TraceParseError::UnknownKind(kind_name.to_string()))?;
    let op = field_u64(object, "op")?;
    let op = u8::try_from(op).map_err(|_| TraceParseError::BadField {
        field: "op",
        record: object.to_string(),
    })?;
    let stripe = field_u64(object, "stripe")?;
    let stripe = u32::try_from(stripe).map_err(|_| TraceParseError::BadField {
        field: "stripe",
        record: object.to_string(),
    })?;
    Ok(AccessRecord {
        entry: field_u64(object, "entry")?,
        op,
        stripe,
        kind,
        tick: field_u64(object, "tick")?,
    })
}

/// Parses an exported access trace — either a bare record array (from
/// [`export_access_records`]) or a full snapshot document (from
/// [`TelemetrySnapshot::to_json`](crate::TelemetrySnapshot::to_json), whose
/// `"accesses"` section is read) — back into the identical record stream.
pub fn parse_access_records(json: &str) -> Result<Vec<AccessRecord>, TraceParseError> {
    // Locate the record array: after the "accesses" key in a snapshot
    // document, or the document itself when it is a bare array.
    let array_from = match json.find("\"accesses\":") {
        Some(key) => key + "\"accesses\":".len(),
        None => 0,
    };
    let open = json[array_from..]
        .find('[')
        .ok_or(TraceParseError::MissingArray)?
        + array_from;
    // Within the array, records are flat objects whose only strings are
    // bare kind names — no nested brackets, no escapes — so bracket
    // counting suffices.
    let mut records = Vec::new();
    let mut rest = &json[open + 1..];
    loop {
        let next_obj = rest.find('{');
        let close = rest.find(']').ok_or(TraceParseError::UnterminatedArray)?;
        match next_obj {
            Some(obj) if obj < close => {
                let end = rest[obj..]
                    .find('}')
                    .ok_or(TraceParseError::UnterminatedArray)?
                    + obj;
                records.push(parse_record(&rest[obj..=end])?);
                rest = &rest[end + 1..];
            }
            _ => break,
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<AccessRecord> {
        let kinds = [
            AccessKind::Insert,
            AccessKind::Hit,
            AccessKind::Miss,
            AccessKind::Evict,
            AccessKind::Expired,
            AccessKind::Lost,
        ];
        (0..25u64)
            .map(|i| AccessRecord {
                entry: i * 3,
                op: (i % 4) as u8,
                stripe: (i % 7) as u32,
                kind: kinds[(i % 5) as usize],
                tick: 100 + i,
            })
            .collect()
    }

    #[test]
    fn bare_array_round_trips() {
        let records = sample();
        let json = export_access_records(&records);
        assert_eq!(parse_access_records(&json).unwrap(), records);
    }

    #[test]
    fn empty_array_parses() {
        assert_eq!(parse_access_records("[]").unwrap(), Vec::new());
        assert_eq!(
            parse_access_records(&export_access_records(&[])).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert_eq!(
            parse_access_records("no array here"),
            Err(TraceParseError::MissingArray)
        );
        assert_eq!(
            parse_access_records("[ {\"entry\":1"),
            Err(TraceParseError::UnterminatedArray)
        );
        assert!(matches!(
            parse_access_records("[{\"entry\":1,\"op\":0,\"stripe\":0,\"kind\":\"hit\"}]"),
            Err(TraceParseError::BadField { field: "tick", .. })
        ));
        assert!(matches!(
            parse_access_records(
                "[{\"entry\":1,\"op\":0,\"stripe\":0,\"kind\":\"warp\",\"tick\":1}]"
            ),
            Err(TraceParseError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_access_records(
                "[{\"entry\":1,\"op\":999,\"stripe\":0,\"kind\":\"hit\",\"tick\":1}]"
            ),
            Err(TraceParseError::BadField { field: "op", .. })
        ));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            AccessKind::Hit,
            AccessKind::Miss,
            AccessKind::Insert,
            AccessKind::Evict,
            AccessKind::Expired,
            AccessKind::Lost,
        ] {
            assert_eq!(AccessKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AccessKind::from_name("nope"), None);
    }
}
