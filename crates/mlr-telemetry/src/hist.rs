//! Fixed-bucket log₂ histograms.
//!
//! The whole observability stack standardises on one histogram shape: 64
//! power-of-two buckets over `u64` magnitudes, plus an exact `count` and
//! `sum`. The type is `Copy` (520 bytes) so per-thread scratch lives on the
//! stack of the chunk hot path and folds into the shared registry without a
//! single allocation — the same discipline as `OpStatsTable` in `mlr-memo`.
//!
//! Bucket `0` holds the value `0`; bucket `b > 0` covers `[2^(b-1), 2^b)`.
//! Percentiles are nearest-rank over bucket *lower bounds*, so a reported
//! percentile never exceeds any sample that landed in its bucket — late
//! (negative-slack) jobs can never round up to a positive slack, and a
//! single sample below a threshold stays below it.

/// Number of log₂ buckets. 64 covers the full `u64` range: bucket 63 is
/// `[2^62, u64::MAX]`.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, saturating
/// at the top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Lower bound of a bucket — the representative value percentiles report.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A fixed-bucket log₂ histogram over `u64` magnitudes. `Copy`, fixed-size,
/// allocation-free; merging is element-wise addition.
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    /// Exact number of recorded samples.
    pub count: u64,
    /// Exact sum of recorded samples (saturating).
    pub sum: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Exact arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile over bucket lower bounds; `p` in `[0, 1]`.
    /// Matches the rank convention the runtime's old sorted-vector
    /// percentile used: rank `round(p * (count - 1))`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }
}

/// A signed histogram over seconds, at microsecond resolution: one log₂
/// histogram for negative magnitudes, one for non-negative. The runtime's
/// deadline-slack ledger uses this — it is bounded (fixed 2×520 bytes) no
/// matter how many jobs are decided, unlike the old 4096-sample ring.
#[derive(Clone, Copy, Debug, Default)]
pub struct SignedHistogram {
    /// Magnitudes of strictly negative samples, in microseconds.
    pub negative: Histogram,
    /// Non-negative samples, in microseconds.
    pub positive: Histogram,
}

impl SignedHistogram {
    /// An empty signed histogram.
    pub const fn new() -> Self {
        Self {
            negative: Histogram::new(),
            positive: Histogram::new(),
        }
    }

    /// Records a signed sample in seconds.
    #[inline]
    pub fn record_seconds(&mut self, seconds: f64) {
        let micros = (seconds.abs() * 1e6) as u64;
        if seconds < 0.0 {
            self.negative.record(micros);
        } else {
            self.positive.record(micros);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.negative.count + self.positive.count
    }

    /// Element-wise merge.
    pub fn merge(&mut self, other: &SignedHistogram) {
        self.negative.merge(&other.negative);
        self.positive.merge(&other.positive);
    }

    /// Nearest-rank percentile in seconds, walking negatives (most negative
    /// first) then positives. Negative representatives use the bucket floor
    /// of the magnitude negated, so a late sample never reports as early.
    pub fn percentile_seconds(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        // Negative samples in ascending order = descending magnitude.
        for index in (0..HIST_BUCKETS).rev() {
            seen += self.negative.buckets[index];
            if seen > rank {
                return -(bucket_floor(index) as f64) * 1e-6;
            }
        }
        for (index, &n) in self.positive.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return bucket_floor(index) as f64 * 1e-6;
            }
        }
        bucket_floor(HIST_BUCKETS - 1) as f64 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_floor(b)), b);
            assert_eq!(bucket_index(bucket_floor(b + 1) - 1), b);
        }
    }

    #[test]
    fn percentile_is_a_lower_bound_and_monotone() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 17, 120, 5000, 5000, 5000, 70_000] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        let p0 = h.percentile(0.0);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p0 <= p50 && p50 <= p99);
        // Lower-bound representatives never exceed the true max.
        assert!(p99 <= 70_000);
        // p0 shares the smallest sample's bucket.
        assert_eq!(p0, bucket_floor(bucket_index(3)));
    }

    #[test]
    fn signed_percentiles_order_negatives_first() {
        let mut s = SignedHistogram::new();
        s.record_seconds(-4.0);
        s.record_seconds(-0.5);
        s.record_seconds(2.0);
        s.record_seconds(8.0);
        assert_eq!(s.count(), 4);
        assert!(s.percentile_seconds(0.0) <= -2.0, "most negative first");
        assert!(s.percentile_seconds(1.0) > 0.0);
        // All-negative input can never report positive slack.
        let mut late = SignedHistogram::new();
        late.record_seconds(-0.001);
        assert!(late.percentile_seconds(0.5) <= 0.0);
        assert!(late.percentile_seconds(0.99) <= 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 37);
            all.record(v * 37);
        }
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert_eq!(a.sum, all.sum);
        assert_eq!(a.buckets, all.buckets);
        assert_eq!(a.percentile(0.9), all.percentile(0.9));
    }
}
