//! # mlr-telemetry — unified tracing, metrics, and hot-path profiling
//!
//! One observability surface for the whole serving stack, replacing the
//! five ad-hoc stat structs (`RuntimeStats`, `DeadlineStats`,
//! `ParallelStats`, `OpStatsTable`, `OffloadTrace`) that could not be
//! correlated per job or exported together:
//!
//! ```text
//!                        Telemetry (Clone, Option<Arc<_>>)
//!                ┌──────────────┼──────────────────┐
//!                ▼              ▼                  ▼
//!        MetricsRegistry   SpanJournal       AccessTrace (opt-in)
//!        sharded atomic    bounded ring,     bounded ring of store
//!        counters + log₂   logical ticks +   accesses stamped with
//!        stage histograms  optional wall ns  StoreClock ticks
//!                ▲              ▲
//!     fold at ordered      admit/run/iter/   TelemetrySnapshot
//!     commit from Copy     operator/done       .to_json()
//!     scratch tables       spans per job       .to_chrome_trace()
//! ```
//!
//! Design rules, all load-bearing:
//!
//! * **Allocation-free hot path.** Workers accumulate into stack-resident
//!   `Copy` scratch ([`CounterTable`], [`StageTable`]) and fold at the
//!   ordered-commit boundary — the `OpStatsTable` pattern — so the fig22
//!   ≤4-allocs-per-hit gate holds with telemetry enabled.
//! * **Zero-cost when disabled.** [`Telemetry::disabled`] is an
//!   `Option::None`; every recording method inlines to one branch, and hot
//!   loops capture [`Telemetry::is_enabled`] once per batch so disabled
//!   mode takes zero clock reads per chunk (gated ≤5 % by `fig23`).
//! * **Deterministic logical time.** Span ordering uses a monotone logical
//!   tick and the access trace uses the store's `StoreClock`; wall-clock
//!   timestamps are optional and never influence ordering, so the
//!   bit-identity contracts are untouched.

#![warn(missing_docs)]

mod export;
mod hist;
mod metrics;
mod recorder;
mod replay;
mod span;
mod trace;

pub use export::TelemetrySnapshot;
pub use hist::{bucket_floor, bucket_index, Histogram, SignedHistogram, HIST_BUCKETS};
pub use metrics::{
    CounterId, CounterTable, MetricsRegistry, MetricsSnapshot, StageId, StageTable, COUNTER_COUNT,
    COUNTER_NAMES, STAGE_COUNT, STAGE_NAMES,
};
pub use recorder::{Telemetry, TelemetryConfig};
pub use replay::{export_access_records, parse_access_records, TraceParseError};
pub use span::{SpanJournal, SpanKind, SpanRecord};
pub use trace::{AccessKind, AccessRecord, AccessTrace};
