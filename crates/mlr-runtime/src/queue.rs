//! The bounded priority job queue with admission control and removable,
//! deadline-tagged entries.
//!
//! Capacity is the backpressure mechanism: [`JobQueue::try_push`] rejects
//! when the queue is full (admission control — the caller is told to back
//! off), while [`JobQueue::push_blocking`] parks the producer until a worker
//! drains a slot. Jobs pop highest-priority-first; *within* a priority class
//! the order is earliest-deadline-first (deadline-tagged entries ahead of
//! untagged ones), FIFO among equals — so under load the serving front-end
//! spends its worker time on the requests that can still meet their
//! deadlines instead of expiring them behind older, slacker work.
//!
//! Two serving-front-end properties are layered on top:
//!
//! * **Ids are allocated inside admission.** A `JobId` is taken from the
//!   runtime's counter only once the entry is definitely admitted, so a
//!   rejected submission never consumes an id and the id sequence of
//!   admitted jobs stays dense (stats and eviction epochs key off it).
//! * **Entries are removable.** A cancelled queued job is taken out of the
//!   heap on the spot by [`JobQueue::remove`] — its slot frees immediately
//!   for blocked producers and no worker ever picks it up. Entries also
//!   carry their absolute deadline so the pop side can skip expired jobs
//!   without running them.

use crate::handle::Ticket;
use crate::job::{Priority, ReconJob};
use mlr_memo::JobId;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The queue is at capacity; retry later or use the blocking submit.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The shared memo store is too close to its capacity budget: admitting
    /// another job would only churn the store (every tenant's inserts evict
    /// every other tenant's reusable entries). Configured through
    /// [`RuntimeConfig::admission_max_pressure`](crate::RuntimeConfig).
    StorePressure {
        /// Observed store pressure (tightest-cap utilisation in `[0, 1]`).
        pressure: f64,
        /// The configured admission limit that was exceeded.
        limit: f64,
    },
    /// The runtime is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue is at capacity ({capacity}); backpressure applied"
                )
            }
            AdmissionError::StorePressure { pressure, limit } => {
                write!(
                    f,
                    "shared memo store is under capacity pressure \
                     ({pressure:.2} > limit {limit:.2}); retry later"
                )
            }
            AdmissionError::ShuttingDown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A job admitted to the queue, with everything a worker needs to run it and
/// deliver its terminal status.
pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) job: ReconJob,
    pub(crate) enqueued: Instant,
    /// The single source of truth for cancellation *and* the absolute
    /// deadline is the ticket's token (`ticket.token.deadline()`): the pop
    /// side and the solver's mid-run expiry check read the same value.
    pub(crate) ticket: Arc<Ticket>,
    /// Deadline snapshot taken at admission (heap ordering must be stable,
    /// so the rank never re-reads the token).
    deadline: Option<Instant>,
    /// Tie-breaker: submission sequence number (FIFO within a priority and
    /// deadline).
    seq: u64,
}

/// Max-heap rank key of a queued entry: priority class, then earliest
/// deadline (deadline-tagged ahead of untagged), then FIFO sequence.
type Rank = (Priority, Reverse<(bool, Option<Instant>)>, Reverse<u64>);

impl QueuedJob {
    /// Max-heap rank: priority first; within a priority, earliest deadline
    /// first with deadline-tagged entries ahead of untagged ones (the
    /// `(is_none, deadline)` pair ascends from tagged-early to untagged, and
    /// `Reverse` flips it for the max-heap); FIFO among equals.
    fn rank(&self) -> Rank {
        (
            self.job.priority,
            Reverse((self.deadline.is_none(), self.deadline)),
            Reverse(self.seq),
        )
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

struct Inner {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    closed: bool,
}

/// The bounded priority queue.
pub(crate) struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// Admits under the lock: the id is allocated *here*, after every
    /// admission check has passed, so rejected submissions never consume one.
    fn admit(inner: &mut Inner, next_job: &AtomicU64, job: ReconJob, ticket: Arc<Ticket>) -> JobId {
        let id = next_job.fetch_add(1, Ordering::Relaxed);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let deadline = ticket.token.deadline();
        inner.heap.push(QueuedJob {
            id,
            job,
            enqueued: Instant::now(), // mlr-check: allow(wall-clock) — decoration only: queue-latency timestamp feeds counters
            ticket,
            deadline,
            seq,
        });
        id
    }

    /// Non-blocking admission: rejects when full or closed. Returns the
    /// allocated job id on success.
    pub(crate) fn try_push(
        &self,
        next_job: &AtomicU64,
        job: ReconJob,
        ticket: Arc<Ticket>,
    ) -> Result<JobId, AdmissionError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(AdmissionError::ShuttingDown);
        }
        if inner.heap.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = Self::admit(&mut inner, next_job, job, ticket);
        drop(inner);
        self.not_empty.notify_one();
        Ok(id)
    }

    /// Blocking admission: waits for a slot (backpressure on the producer).
    /// Returns the allocated job id on success.
    pub(crate) fn push_blocking(
        &self,
        next_job: &AtomicU64,
        job: ReconJob,
        ticket: Arc<Ticket>,
    ) -> Result<JobId, AdmissionError> {
        let mut inner = self.inner.lock();
        loop {
            if inner.closed {
                return Err(AdmissionError::ShuttingDown);
            }
            if inner.heap.len() < self.capacity {
                let id = Self::admit(&mut inner, next_job, job, ticket);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(id);
            }
            self.not_full.wait(&mut inner);
        }
    }

    /// Blocks until a job is available (returning it) or the queue is closed
    /// and drained (returning `None`). Workers loop on this; the worker
    /// checks the popped entry's cancel token and deadline *before* running
    /// it, so cancelled/expired entries are reported, never executed.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(q) = inner.heap.pop() {
                drop(inner);
                self.not_full.notify_one();
                return Some(q);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Removes a still-queued entry by id (cancellation of a queued job).
    /// Returns the entry when it was found — the caller resolves its ticket
    /// — or `None` when a worker already popped it (or it never existed).
    /// The freed slot immediately re-admits a blocked producer.
    pub(crate) fn remove(&self, id: JobId) -> Option<QueuedJob> {
        let mut inner = self.inner.lock();
        // BinaryHeap has no targeted removal: rebuild without the entry.
        // Queues are bounded and small, so the O(n) rebuild is irrelevant
        // next to the seconds-long jobs the entries describe.
        let mut entries = std::mem::take(&mut inner.heap).into_vec();
        let found = entries
            .iter()
            .position(|q| q.id == id)
            .map(|at| entries.swap_remove(at));
        inner.heap = BinaryHeap::from(entries);
        let removed = found.is_some();
        drop(inner);
        if removed {
            self.not_full.notify_one();
        }
        found
    }

    /// Removes every still-queued entry whose deadline has already passed at
    /// `now` (the proactive expiry sweep). The caller resolves the returned
    /// entries' tickets; each freed slot immediately re-admits a blocked
    /// producer. Entries without a deadline are never swept.
    pub(crate) fn sweep_expired(&self, now: Instant) -> Vec<QueuedJob> {
        let mut inner = self.inner.lock();
        if inner.heap.is_empty() {
            return Vec::new();
        }
        // Same rebuild idiom as `remove`: BinaryHeap has no retain-with-take,
        // and bounded queues keep the O(n) pass irrelevant next to the
        // seconds-long jobs the entries describe.
        let entries = std::mem::take(&mut inner.heap).into_vec();
        let (expired, live): (Vec<_>, Vec<_>) = entries
            .into_iter()
            .partition(|q| q.deadline.is_some_and(|at| at <= now));
        inner.heap = BinaryHeap::from(live);
        drop(inner);
        if !expired.is_empty() {
            self.not_full.notify_all();
        }
        expired
    }

    /// Whether the queue has been closed (drain mode or shutdown).
    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Closes the queue: no further admissions; workers drain what remains
    /// and then see `None`.
    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_core::{CancelToken, MlrConfig};

    fn job(name: &str, priority: Priority) -> ReconJob {
        ReconJob::new(name, MlrConfig::quick(12, 8)).with_priority(priority)
    }

    fn ticket() -> Arc<Ticket> {
        Arc::new(Ticket::new(CancelToken::new()))
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        let ids = AtomicU64::new(1);
        q.try_push(&ids, job("batch-1", Priority::Batch), ticket())
            .unwrap();
        q.try_push(&ids, job("normal-1", Priority::Normal), ticket())
            .unwrap();
        q.try_push(&ids, job("interactive", Priority::Interactive), ticket())
            .unwrap();
        q.try_push(&ids, job("normal-2", Priority::Normal), ticket())
            .unwrap();
        let order: Vec<String> = (0..4).map(|_| q.pop().unwrap().job.name).collect();
        assert_eq!(order, ["interactive", "normal-1", "normal-2", "batch-1"]);
    }

    #[test]
    fn admission_control_rejects_when_full_without_consuming_ids() {
        let q = JobQueue::new(2);
        let ids = AtomicU64::new(1);
        assert_eq!(
            q.try_push(&ids, job("a", Priority::Normal), ticket()),
            Ok(1)
        );
        assert_eq!(
            q.try_push(&ids, job("b", Priority::Normal), ticket()),
            Ok(2)
        );
        match q.try_push(&ids, job("c", Priority::Normal), ticket()) {
            Err(AdmissionError::QueueFull { capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // The rejection consumed no id; the next admitted job stays dense.
        let _ = q.pop().unwrap();
        assert_eq!(
            q.try_push(&ids, job("c", Priority::Normal), ticket()),
            Ok(3)
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_takes_a_queued_entry_out() {
        let q = JobQueue::new(4);
        let ids = AtomicU64::new(1);
        let a = q
            .try_push(&ids, job("a", Priority::Normal), ticket())
            .unwrap();
        let b = q
            .try_push(&ids, job("b", Priority::Interactive), ticket())
            .unwrap();
        let removed = q.remove(b).expect("b is still queued");
        assert_eq!(removed.id, b);
        assert_eq!(removed.job.name, "b");
        // Removing again (or a never-admitted id) is a no-op.
        assert!(q.remove(b).is_none());
        assert!(q.remove(999).is_none());
        // The untouched entry still pops, in its original order.
        assert_eq!(q.pop().unwrap().id, a);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn remove_preserves_priority_order_of_the_rest() {
        let q = JobQueue::new(8);
        let ids = AtomicU64::new(1);
        q.try_push(&ids, job("batch", Priority::Batch), ticket())
            .unwrap();
        let victim = q
            .try_push(&ids, job("normal-1", Priority::Normal), ticket())
            .unwrap();
        q.try_push(&ids, job("normal-2", Priority::Normal), ticket())
            .unwrap();
        q.try_push(&ids, job("interactive", Priority::Interactive), ticket())
            .unwrap();
        q.remove(victim).expect("victim queued");
        let order: Vec<String> = (0..3).map(|_| q.pop().unwrap().job.name).collect();
        assert_eq!(order, ["interactive", "normal-2", "batch"]);
    }

    #[test]
    fn earliest_deadline_pops_first_within_a_priority() {
        let q = JobQueue::new(8);
        let ids = AtomicU64::new(1);
        let now = Instant::now();
        let with_deadline = |secs: u64| {
            Arc::new(Ticket::new(CancelToken::with_deadline(
                now + std::time::Duration::from_secs(secs),
            )))
        };
        // Submission order deliberately scrambles the deadline order.
        q.try_push(&ids, job("late", Priority::Normal), with_deadline(60))
            .unwrap();
        q.try_push(&ids, job("no-deadline-1", Priority::Normal), ticket())
            .unwrap();
        q.try_push(&ids, job("early", Priority::Normal), with_deadline(10))
            .unwrap();
        q.try_push(&ids, job("no-deadline-2", Priority::Normal), ticket())
            .unwrap();
        q.try_push(&ids, job("mid", Priority::Normal), with_deadline(30))
            .unwrap();
        let order: Vec<String> = (0..5).map(|_| q.pop().unwrap().job.name).collect();
        // EDF within the class; untagged entries follow, FIFO among
        // themselves.
        assert_eq!(
            order,
            ["early", "mid", "late", "no-deadline-1", "no-deadline-2"]
        );
    }

    #[test]
    fn priority_still_dominates_deadlines() {
        let q = JobQueue::new(4);
        let ids = AtomicU64::new(1);
        let soon = Instant::now() + std::time::Duration::from_secs(1);
        q.try_push(
            &ids,
            job("urgent-batch", Priority::Batch),
            Arc::new(Ticket::new(CancelToken::with_deadline(soon))),
        )
        .unwrap();
        q.try_push(
            &ids,
            job("relaxed-interactive", Priority::Interactive),
            ticket(),
        )
        .unwrap();
        // A tight deadline never promotes a job across priority classes.
        assert_eq!(q.pop().unwrap().job.name, "relaxed-interactive");
        assert_eq!(q.pop().unwrap().job.name, "urgent-batch");
    }

    #[test]
    fn deadlines_ride_along_with_entries() {
        let q = JobQueue::new(4);
        let ids = AtomicU64::new(1);
        let soon = Instant::now() + std::time::Duration::from_secs(30);
        let dl_ticket = Arc::new(Ticket::new(CancelToken::with_deadline(soon)));
        q.try_push(&ids, job("dl", Priority::Normal), dl_ticket)
            .unwrap();
        q.try_push(&ids, job("no-dl", Priority::Batch), ticket())
            .unwrap();
        assert_eq!(q.pop().unwrap().ticket.token.deadline(), Some(soon));
        assert_eq!(q.pop().unwrap().ticket.token.deadline(), None);
    }

    #[test]
    fn sweep_removes_only_expired_deadline_entries() {
        let q = JobQueue::new(8);
        let ids = AtomicU64::new(1);
        let now = Instant::now();
        let expired_id = q
            .try_push(
                &ids,
                job("expired", Priority::Normal),
                Arc::new(Ticket::new(CancelToken::with_deadline(now))),
            )
            .unwrap();
        q.try_push(
            &ids,
            job("live", Priority::Normal),
            Arc::new(Ticket::new(CancelToken::with_deadline(
                now + std::time::Duration::from_secs(3600),
            ))),
        )
        .unwrap();
        q.try_push(&ids, job("untagged", Priority::Normal), ticket())
            .unwrap();
        let swept = q.sweep_expired(Instant::now());
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].id, expired_id);
        assert_eq!(swept[0].job.name, "expired");
        // The survivors keep their order; untagged entries are never swept.
        assert_eq!(q.pop().unwrap().job.name, "live");
        assert_eq!(q.pop().unwrap().job.name, "untagged");
        assert!(q.sweep_expired(Instant::now()).is_empty());
    }

    #[test]
    fn close_rejects_and_unblocks() {
        let q = Arc::new(JobQueue::new(2));
        let ids = AtomicU64::new(1);
        q.try_push(&ids, job("a", Priority::Normal), ticket())
            .unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            // Drains "a", then blocks until close.
            let first = q2.pop();
            let second = q2.pop();
            (first.is_some(), second.is_none())
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(
            q.try_push(&ids, job("late", Priority::Normal), ticket()),
            Err(AdmissionError::ShuttingDown)
        );
        let (first_ok, second_none) = waiter.join().unwrap();
        assert!(first_ok && second_none);
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(JobQueue::new(1));
        let ids = Arc::new(AtomicU64::new(1));
        q.try_push(&ids, job("a", Priority::Normal), ticket())
            .unwrap();
        let q2 = Arc::clone(&q);
        let ids2 = Arc::clone(&ids);
        let producer = std::thread::spawn(move || {
            q2.push_blocking(&ids2, job("b", Priority::Normal), ticket())
                .unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Producer is parked on backpressure; free a slot.
        assert_eq!(q.pop().unwrap().job.name, "a");
        producer.join().unwrap();
        assert_eq!(q.pop().unwrap().job.name, "b");
    }

    #[test]
    fn remove_readmits_a_blocked_producer() {
        let q = Arc::new(JobQueue::new(1));
        let ids = Arc::new(AtomicU64::new(1));
        let victim = q
            .try_push(&ids, job("victim", Priority::Normal), ticket())
            .unwrap();
        let q2 = Arc::clone(&q);
        let ids2 = Arc::clone(&ids);
        let producer = std::thread::spawn(move || {
            q2.push_blocking(&ids2, job("waiter", Priority::Normal), ticket())
                .unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Cancelling the queued victim frees the slot for the producer.
        q.remove(victim).expect("victim queued");
        let waiter_id = producer.join().unwrap();
        assert_eq!(waiter_id, 2);
        assert_eq!(q.pop().unwrap().job.name, "waiter");
    }
}
