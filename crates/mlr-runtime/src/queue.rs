//! The bounded priority job queue with admission control.
//!
//! Capacity is the backpressure mechanism: [`JobQueue::try_push`] rejects
//! when the queue is full (admission control — the caller is told to back
//! off), while [`JobQueue::push_blocking`] parks the producer until a worker
//! drains a slot. Jobs pop highest-priority-first, FIFO within a priority.

use crate::job::{Priority, ReconJob};
use crate::JobReport;
use mlr_memo::JobId;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The queue is at capacity; retry later or use the blocking submit.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The shared memo store is too close to its capacity budget: admitting
    /// another job would only churn the store (every tenant's inserts evict
    /// every other tenant's reusable entries). Configured through
    /// [`RuntimeConfig::admission_max_pressure`](crate::RuntimeConfig).
    StorePressure {
        /// Observed store pressure (tightest-cap utilisation in `[0, 1]`).
        pressure: f64,
        /// The configured admission limit that was exceeded.
        limit: f64,
    },
    /// The runtime is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue is at capacity ({capacity}); backpressure applied"
                )
            }
            AdmissionError::StorePressure { pressure, limit } => {
                write!(
                    f,
                    "shared memo store is under capacity pressure \
                     ({pressure:.2} > limit {limit:.2}); retry later"
                )
            }
            AdmissionError::ShuttingDown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A job admitted to the queue, with everything a worker needs to run it and
/// deliver its result.
pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) job: ReconJob,
    pub(crate) enqueued: Instant,
    pub(crate) responder: Sender<JobReport>,
    /// Tie-breaker: submission sequence number (FIFO within a priority).
    seq: u64,
}

impl QueuedJob {
    fn rank(&self) -> (Priority, std::cmp::Reverse<u64>) {
        (self.job.priority, std::cmp::Reverse(self.seq))
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

struct Inner {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    closed: bool,
}

/// The bounded priority queue.
pub(crate) struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    fn admit(inner: &mut Inner, id: JobId, job: ReconJob, responder: Sender<JobReport>) {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(QueuedJob {
            id,
            job,
            enqueued: Instant::now(),
            responder,
            seq,
        });
    }

    /// Non-blocking admission: rejects when full or closed.
    pub(crate) fn try_push(
        &self,
        id: JobId,
        job: ReconJob,
        responder: Sender<JobReport>,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(AdmissionError::ShuttingDown);
        }
        if inner.heap.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        Self::admit(&mut inner, id, job, responder);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for a slot (backpressure on the producer).
    pub(crate) fn push_blocking(
        &self,
        id: JobId,
        job: ReconJob,
        responder: Sender<JobReport>,
    ) -> Result<(), AdmissionError> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(AdmissionError::ShuttingDown);
            }
            if inner.heap.len() < self.capacity {
                Self::admit(&mut inner, id, job, responder);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    /// Blocks until a job is available (returning it) or the queue is closed
    /// and drained (returning `None`). Workers loop on this.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(q) = inner.heap.pop() {
                drop(inner);
                self.not_full.notify_one();
                return Some(q);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: no further admissions; workers drain what remains
    /// and then see `None`.
    pub(crate) fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlr_core::MlrConfig;
    use std::sync::mpsc::channel;

    fn job(name: &str, priority: Priority) -> ReconJob {
        ReconJob::new(name, MlrConfig::quick(12, 8)).with_priority(priority)
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        let (tx, _rx) = channel();
        q.try_push(1, job("batch-1", Priority::Batch), tx.clone())
            .unwrap();
        q.try_push(2, job("normal-1", Priority::Normal), tx.clone())
            .unwrap();
        q.try_push(3, job("interactive", Priority::Interactive), tx.clone())
            .unwrap();
        q.try_push(4, job("normal-2", Priority::Normal), tx.clone())
            .unwrap();
        let order: Vec<String> = (0..4).map(|_| q.pop().unwrap().job.name).collect();
        assert_eq!(order, ["interactive", "normal-1", "normal-2", "batch-1"]);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        let q = JobQueue::new(2);
        let (tx, _rx) = channel();
        q.try_push(1, job("a", Priority::Normal), tx.clone())
            .unwrap();
        q.try_push(2, job("b", Priority::Normal), tx.clone())
            .unwrap();
        match q.try_push(3, job("c", Priority::Normal), tx.clone()) {
            Err(AdmissionError::QueueFull { capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Draining one slot re-admits.
        let _ = q.pop().unwrap();
        q.try_push(3, job("c", Priority::Normal), tx).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_and_unblocks() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        let (tx, _rx) = channel();
        q.try_push(1, job("a", Priority::Normal), tx.clone())
            .unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            // Drains "a", then blocks until close.
            let first = q2.pop();
            let second = q2.pop();
            (first.is_some(), second.is_none())
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(
            q.try_push(5, job("late", Priority::Normal), tx),
            Err(AdmissionError::ShuttingDown)
        );
        let (first_ok, second_none) = waiter.join().unwrap();
        assert!(first_ok && second_none);
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let (tx, _rx) = channel();
        q.try_push(1, job("a", Priority::Normal), tx.clone())
            .unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.push_blocking(2, job("b", Priority::Normal), tx).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Producer is parked on backpressure; free a slot.
        assert_eq!(q.pop().unwrap().job.name, "a");
        producer.join().unwrap();
        assert_eq!(q.pop().unwrap().job.name, "b");
    }
}
