//! # mlr-runtime
//!
//! A multi-tenant reconstruction runtime for the mLR reproduction, with a
//! deadline-aware serving front-end.
//!
//! The paper's distributed memoization (Figure 6) separates compute nodes
//! from a memory node holding the memoization database — a design that only
//! pays off when *many* reconstructions share that database. Synchrotron
//! laminography runs many large samples back-to-back (and concurrently),
//! and those requests arrive with acquisition-driven deadlines; this crate
//! is the serving layer for that regime:
//!
//! ```text
//!   ServeRequest ──► bounded priority queue ──► worker pool ──► JobStatus
//!   (deadline,        (admission control,         │ │ │          Completed
//!    priority)         backpressure,              ▼ ▼ ▼          Failed
//!        │             removable entries)   ShardedMemoDb        Cancelled
//!        ▼                                  (N lock stripes,     Expired
//!    JobHandle ── cancel() ─► queued: removed on the spot        ▲
//!    try_wait / wait_timeout  running: stops at the next ADMM    │
//!    / wait ──────────────────iteration boundary ────────────────┘
//! ```
//!
//! * [`ServeFront`] — the request/response front-end: [`ServeRequest`]s
//!   carry a [`Priority`] and an optional [`Deadline`]; every admitted
//!   request yields a ticket-style [`JobHandle`] (`try_wait`,
//!   `wait_timeout`, `wait`, `cancel`) resolving to a typed [`JobStatus`]
//!   instead of the old bare channel on which a crashed job surfaced as a
//!   `RecvError`.
//! * Deadlines are enforced twice: an entry still queued past its deadline
//!   is skipped at pop (reported [`JobStatus::Expired`], never run), and an
//!   in-flight job past its deadline stops cooperatively at the next ADMM
//!   iteration boundary via the solver's `CancelToken`.
//! * Cancellation has the same two stages — a queued job is removed from
//!   the queue on the spot (its slot frees immediately); a running job
//!   stops at the next iteration boundary, flushes its coalescer through
//!   the executor's `finish` hook, and the memo entries it already
//!   published keep serving every other tenant.
//! * [`Runtime`] — fixed worker pool; [`Runtime::submit`] rejects when the
//!   queue is full (admission control), [`Runtime::submit_blocking`] parks
//!   the producer (backpressure). With
//!   [`RuntimeConfig::admission_max_pressure`] set, admission additionally
//!   consults the shared store's capacity pressure and turns jobs away
//!   while the memoization budget is saturated. Every rejection path is
//!   counted in [`RuntimeStats::rejected`], and job ids are allocated only
//!   after admission succeeds (rejected submissions never consume one).
//! * The shared [`ShardedMemoDb`](mlr_memo::ShardedMemoDb): every worker's
//!   executor queries and feeds the same store, so job B reuses USFFT
//!   results job A computed. Entries carry a
//!   [`Provenance`](mlr_memo::Provenance) so intra-job freshness gating
//!   still holds per job while cross-job reuse is unrestricted; the store
//!   counts those cross-job hits, surfaced via
//!   [`RuntimeStats::cross_job_hit_rate`]. Capacity budgets and eviction
//!   ride in the configuration as before.
//! * [`RuntimeStats`] — throughput, queue latency, utilisation, store
//!   counters, plus cancelled/expired counts and [`DeadlineStats`]
//!   (met/missed and slack percentiles across decided jobs).
//! * **Robustness layer** — a panicking worker is respawned (counted in
//!   [`RuntimeStats::worker_restarts`]) and its job resolves
//!   [`JobStatus::Failed`] with a `retryable` flag instead of wedging the
//!   pool; retryable admission rejections can be resubmitted through
//!   [`ServeFront::submit_with_retry`] under a seeded, bounded
//!   [`RetryPolicy`]; and [`RuntimeConfig::fault_plan`] arms the
//!   distributed store's deterministic fault injection
//!   ([`FaultPlan`](mlr_sim::faults::FaultPlan) windows on logical store
//!   ticks: node crash/restart, link degradation, stripe stalls), whose
//!   footprint surfaces as [`mlr_memo::FaultStats`] via
//!   [`RuntimeStats::fault_stats`]. Faults degrade hits into exact
//!   recomputes — never into different values (`tests/faults.rs`,
//!   `fig25_faults`).
//!
//! Determinism contract: a job that *runs to completion* through the
//! serving front-end (over a store built by [`RuntimeConfig::matching`])
//! produces the *same reconstruction* as `MlrPipeline::run_memoized` —
//! sharding, ticketing and deadline bookkeeping are implementation details,
//! pinned by tests in `tests/runtime.rs` and `tests/serving.rs`. A
//! cancelled-while-queued or expired-while-queued job never executes at
//! all.

#![warn(missing_docs)]

pub mod handle;
pub mod job;
mod queue;
pub mod retry;
pub mod runtime;
pub mod serve;
pub mod stats;

pub use handle::{JobHandle, JobPhase, JobStatus};
pub use job::{JobReport, JobSummary, Priority, ReconJob};
pub use queue::AdmissionError;
pub use retry::RetryPolicy;
pub use runtime::{Runtime, RuntimeConfig};
pub use serve::{Deadline, ServeFront, ServeRequest};
pub use stats::{DeadlineStats, RuntimeStats};
