//! # mlr-runtime
//!
//! A multi-tenant reconstruction runtime for the mLR reproduction.
//!
//! The paper's distributed memoization (Figure 6) separates compute nodes
//! from a memory node holding the memoization database — a design that only
//! pays off when *many* reconstructions share that database. Synchrotron
//! laminography runs many large samples back-to-back (and concurrently);
//! this crate is the serving layer for that regime:
//!
//! ```text
//!   ReconJob ──► bounded priority queue ──► worker pool ──► JobReport
//!                 (admission control,        │ │ │
//!                  backpressure)             ▼ ▼ ▼
//!                                      ShardedMemoDb (N lock stripes)
//!                                      shared by every in-flight job
//! ```
//!
//! * [`ReconJob`] — a named pipeline configuration plus a [`Priority`];
//!   popped highest-priority-first, FIFO within a priority.
//! * [`Runtime`] — fixed worker pool; [`Runtime::submit`] rejects when the
//!   queue is full (admission control), [`Runtime::submit_blocking`] parks
//!   the producer (backpressure). With
//!   [`RuntimeConfig::admission_max_pressure`] set, admission additionally
//!   consults the shared store's capacity pressure and turns jobs away
//!   while the memoization budget is saturated.
//! * The shared [`ShardedMemoDb`](mlr_memo::ShardedMemoDb): every worker's
//!   executor queries and feeds the same store, so job B reuses USFFT
//!   results job A computed. Entries carry a
//!   [`Provenance`](mlr_memo::Provenance) so intra-job freshness gating
//!   still holds per job while cross-job reuse is unrestricted; the store
//!   counts those cross-job hits, surfaced via
//!   [`RuntimeStats::cross_job_hit_rate`]. When the job configuration
//!   carries a capacity budget (`MlrConfig::with_memo_budget`), the shared
//!   store enforces it with the configured eviction policy;
//!   [`RuntimeStats`] then also reports eviction counts, resident bytes
//!   and the hit rate under capacity pressure.
//! * Within a job, the chunk-level USFFT kernels fan out through the rayon
//!   scope-backed data-parallel layer, so parallelism composes: jobs across
//!   workers, chunk kernels within a job.
//!
//! Determinism contract: a single job run through the runtime (over a store
//! built by [`RuntimeConfig::matching`]) produces the *same reconstruction*
//! as `MlrPipeline::run_memoized` — sharding is an implementation detail,
//! pinned by tests in `tests/runtime.rs`.

pub mod job;
mod queue;
pub mod runtime;
pub mod stats;

pub use job::{JobReport, JobSummary, Priority, ReconJob};
pub use queue::AdmissionError;
pub use runtime::{JobHandle, Runtime, RuntimeConfig};
pub use stats::RuntimeStats;
