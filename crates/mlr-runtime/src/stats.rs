//! Runtime-wide statistics.

use mlr_memo::{ParallelStats, StoreStats};
use serde::{Deserialize, Serialize};

/// A snapshot of the runtime's aggregate behaviour: job throughput, queue
/// latency, worker utilisation, and the shared store's counters (including
/// the cross-job hit rate that quantifies what sharing one memoization
/// database across jobs buys).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that panicked while running (bad configurations); the worker
    /// survives and the job's handle observes the failure.
    pub failed: u64,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Wall-clock seconds since the runtime started.
    pub wall_seconds: f64,
    /// Total worker-busy seconds across all workers.
    pub busy_seconds: f64,
    /// Mean queue latency over completed jobs.
    pub queue_seconds_mean: f64,
    /// Maximum queue latency over completed jobs.
    pub queue_seconds_max: f64,
    /// Utilisation of the store's tightest capacity cap in `[0, 1]` at
    /// snapshot time (0 for unbounded stores).
    pub store_pressure: f64,
    /// Counters of the shared memo store (including eviction counts and
    /// resident bytes under the capacity budget).
    pub store: StoreStats,
    /// Aggregate chunk-scheduler statistics over all finished jobs: thread
    /// requests vs governor grants and the measured/modeled speedups of the
    /// intra-job parallel phases.
    pub parallel: ParallelStats,
}

impl RuntimeStats {
    /// Completed jobs per wall-clock second.
    pub fn throughput_jobs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.wall_seconds
        }
    }

    /// Fraction of worker capacity that was busy.
    pub fn utilisation(&self) -> f64 {
        let capacity = self.wall_seconds * self.workers as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / capacity).min(1.0)
        }
    }

    /// Store hit rate (all jobs).
    pub fn hit_rate(&self) -> f64 {
        self.store.hit_rate()
    }

    /// Fraction of store queries served by an entry another job inserted —
    /// the headline number of the shared-store design.
    pub fn cross_job_hit_rate(&self) -> f64 {
        self.store.cross_job_hit_rate()
    }

    /// Entries evicted from the shared store to satisfy its budget.
    pub fn evictions(&self) -> u64 {
        self.store.evictions
    }

    /// Resident bytes of the shared store (values + raw inputs + keys).
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes
    }

    /// Store hit rate over only the queries issued while the store was
    /// under capacity pressure — how well the eviction policy preserves
    /// reuse once the budget binds.
    pub fn hit_rate_under_pressure(&self) -> f64 {
        self.store.hit_rate_under_pressure()
    }

    /// Per-job parallel efficiency: the fraction of requested chunk-level
    /// threads the global governor actually granted across all finished
    /// jobs (1.0 when jobs run sequentially or uncontended).
    pub fn parallel_efficiency(&self) -> f64 {
        self.parallel.grant_ratio()
    }

    /// Measured speedup of the jobs' intra-job parallel phases (serialized
    /// chunk work over parallel wall time).
    pub fn intra_job_speedup(&self) -> f64 {
        self.parallel.achieved_speedup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = RuntimeStats {
            workers: 4,
            submitted: 10,
            rejected: 2,
            completed: 8,
            failed: 0,
            queued: 0,
            wall_seconds: 2.0,
            busy_seconds: 4.0,
            queue_seconds_mean: 0.1,
            queue_seconds_max: 0.5,
            store_pressure: 0.75,
            store: StoreStats {
                entries: 100,
                queries: 50,
                hits: 20,
                cross_job_hits: 10,
                inserts: 30,
                value_bytes: 1 << 20,
                evictions: 12,
                expirations: 3,
                resident_bytes: 3 << 20,
                peak_resident_bytes: 3 << 20,
                pressure_queries: 10,
                pressure_hits: 4,
            },
            parallel: ParallelStats {
                batches: 4,
                chunks: 16,
                threads_requested: 16,
                threads_granted: 12,
                chunk_seconds: 2.0,
                phase_seconds: 1.0,
                modeled_serial_cost: 8.0,
                modeled_critical_cost: 2.0,
            },
        };
        assert!((s.parallel_efficiency() - 0.75).abs() < 1e-12);
        assert!((s.intra_job_speedup() - 2.0).abs() < 1e-12);
        assert!((s.throughput_jobs_per_second() - 4.0).abs() < 1e-12);
        assert!((s.utilisation() - 0.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.cross_job_hit_rate() - 0.2).abs() < 1e-12);
        assert_eq!(s.evictions(), 12);
        assert_eq!(s.resident_bytes(), 3 << 20);
        assert!((s.hit_rate_under_pressure() - 0.4).abs() < 1e-12);
    }
}
